//! Bounded serving core: the fixed worker pool and admission queue behind
//! the controller's listener (and behind `pddl-loadgen`'s in-process
//! benchmark transport).
//!
//! Admission control in one sentence: requests are *shed, not buffered*.
//! [`ServePool::try_submit`] either admits a job into a bounded FIFO queue
//! (a [`pddl_par::TaskQueue`]) consumed by a fixed pool of workers, or
//! hands it back as [`SubmitError::Full`] so the caller can answer the
//! peer with the typed `{"error":"overloaded","retry_after_ms":...}`
//! reply. Three overload modes, three observable outcomes:
//!
//! * **Queue full** → shed at admission (`controller.requests_shed`); the
//!   submitter replies immediately, nothing ever queues.
//! * **Deadline exceeded while queued** → expired at dispatch
//!   (`controller.requests_expired`); the job still runs, but with
//!   [`JobOutcome::Expired`], so it answers the peer with an overload
//!   reply instead of doing work that is no longer wanted.
//! * **Pool closed** → [`SubmitError::Closed`]; jobs admitted before the
//!   close are drained to completion first — a graceful drain, not an
//!   abort.
//!
//! Queue pressure is exported live: `controller.queue_depth` (gauge),
//! `controller.queue_depth_peak` (high-water gauge via
//! [`pddl_telemetry::Gauge::set_max`]), and `controller.queue_wait`
//! (histogram of time spent queued).

use pddl_par::{PushError, TaskQueue};
use pddl_telemetry::trace::{flight_recorder, stage_handle, stages, StageHandle};
use pddl_telemetry::{tlog, Counter, Gauge, Histogram, Level, SpanStatus, TraceContext};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the bounded serving core. The defaults suit a test or
/// benchmark controller; production deployments size `workers` to cores
/// and `queue_depth` to the latency budget (a deep queue converts overload
/// into latency, a shallow one into sheds).
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads executing requests (clamped to ≥ 1).
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it are shed with a
    /// typed overload reply (clamped to ≥ 1).
    pub queue_depth: usize,
    /// Maximum simultaneously connected peers; connections beyond it get
    /// an overload reply and are closed without a reader thread.
    pub max_connections: usize,
    /// Longest a request may wait in the queue before it is expired (it
    /// then answers with an overload reply instead of executing).
    /// `Duration::ZERO` expires everything — useful for tests.
    pub request_deadline: Duration,
    /// Advisory pacing hint carried in every overload reply, in
    /// milliseconds.
    pub retry_after_ms: u64,
    /// Trace one in `trace_sample` requests that arrive without an
    /// explicit [`TraceContext`] (0 disables sampling; envelopes carrying
    /// a context are always traced). Sampling keeps the flight-recorder
    /// writes off most of the hot path at high request rates.
    pub trace_sample: u64,
    /// Promote a traced request to the retained set as `slow` when its
    /// end-to-end time exceeds this many milliseconds (0 disables the
    /// latency trigger; shed/error promotion is always on).
    pub trace_slow_ms: u64,
    /// This controller's stable shard id when it serves as one shard of a
    /// router-fronted fleet. A sharded controller echoes the id in
    /// enveloped responses, `{"op":"stats"}` replies, and its identity
    /// route table; `None` (the default) leaves the wire shapes exactly
    /// as they were before sharding existed.
    pub shard_id: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: pddl_par::num_threads().max(2),
            queue_depth: 256,
            max_connections: 1024,
            request_deadline: Duration::from_secs(5),
            retry_after_ms: 25,
            trace_sample: 1,
            trace_slow_ms: 0,
            shard_id: None,
        }
    }
}

/// How the pool dispatched a job: normally, or past its queue deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job was dispatched within its deadline — do the work.
    Run,
    /// The job sat in the queue past the deadline — answer the peer with
    /// an overload reply, skip the work.
    Expired,
}

/// Why [`ServePool::try_submit`] rejected a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity — shed the request.
    Full,
    /// The pool is draining; no new work is admitted.
    Closed,
}

struct Job {
    enqueued: Instant,
    /// Root context of the request this job serves, when it is traced;
    /// the dispatching worker records the `queue_wait` span against it.
    trace: Option<TraceContext>,
    run: Box<dyn FnOnce(JobOutcome) + Send>,
}

/// Pool-side metric handles, resolved once.
struct PoolMetrics {
    queue_depth: &'static Gauge,
    queue_depth_peak: &'static Gauge,
    requests_shed: &'static Counter,
    requests_expired: &'static Counter,
    queue_wait: &'static Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        queue_depth: pddl_telemetry::gauge("controller.queue_depth"),
        queue_depth_peak: pddl_telemetry::gauge("controller.queue_depth_peak"),
        requests_shed: pddl_telemetry::counter("controller.requests_shed"),
        requests_expired: pddl_telemetry::counter("controller.requests_expired"),
        queue_wait: pddl_telemetry::histogram("controller.queue_wait"),
    })
}

/// The queue-wait stage handle, resolved once so the per-job trace record
/// on the worker hot path takes no lock.
fn queue_wait_stage() -> StageHandle {
    static STAGE: OnceLock<StageHandle> = OnceLock::new();
    *STAGE.get_or_init(|| stage_handle(stages::QUEUE_WAIT))
}

/// A fixed pool of workers consuming a bounded admission queue. See the
/// module docs for the overload semantics.
pub struct ServePool {
    queue: Arc<TaskQueue<Job>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    deadline: Duration,
}

impl ServePool {
    /// Starts `config.workers` worker threads over a queue of
    /// `config.queue_depth` slots.
    pub fn start(config: ServeConfig) -> Self {
        let worker_count = config.workers.max(1);
        let queue = Arc::new(TaskQueue::bounded(config.queue_depth));
        let handles = (0..worker_count)
            .map(|i| {
                let q = Arc::clone(&queue);
                let deadline = config.request_deadline;
                std::thread::Builder::new()
                    .name(format!("pddl-serve-{i}"))
                    .spawn(move || worker_loop(&q, deadline))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            queue,
            workers: Mutex::new(handles),
            worker_count,
            deadline: config.request_deadline,
        }
    }

    /// Admits `f` if there is queue room; never blocks. On admission the
    /// job is guaranteed to run exactly once — with [`JobOutcome::Run`] if
    /// dispatched within the deadline, [`JobOutcome::Expired`] otherwise —
    /// even if the pool is shut down right after (drain semantics).
    pub fn try_submit<F>(&self, f: F) -> Result<(), SubmitError>
    where
        F: FnOnce(JobOutcome) + Send + 'static,
    {
        self.try_submit_traced(None, f)
    }

    /// [`ServePool::try_submit`] for a traced request: the dispatching
    /// worker records a `queue_wait` child span of `trace`, and a shed at
    /// admission promotes the trace into the flight recorder's retained
    /// set (the tail-sampling contract: every shed trace is kept, up to
    /// the retained bound).
    pub fn try_submit_traced<F>(
        &self,
        trace: Option<TraceContext>,
        f: F,
    ) -> Result<(), SubmitError>
    where
        F: FnOnce(JobOutcome) + Send + 'static,
    {
        let m = pool_metrics();
        let job = Job { enqueued: Instant::now(), trace, run: Box::new(f) };
        match self.queue.try_push(job) {
            Ok(()) => {
                m.queue_depth.inc();
                m.queue_depth_peak.set_max(self.queue.peak() as i64);
                Ok(())
            }
            Err(PushError::Full(job)) => {
                m.requests_shed.inc();
                if let Some(ctx) = job.trace {
                    let rec = flight_recorder();
                    rec.record_stage_resolved(
                        ctx,
                        queue_wait_stage(),
                        rec.now_us(),
                        Duration::ZERO,
                        SpanStatus::Shed,
                    );
                    rec.promote(ctx.trace_id, "shed");
                }
                Err(SubmitError::Full)
            }
            Err(PushError::Closed(job)) => {
                if let Some(ctx) = job.trace {
                    flight_recorder().promote(ctx.trace_id, "shed");
                }
                Err(SubmitError::Closed)
            }
        }
    }

    /// Jobs currently queued (racy; telemetry only).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of this pool's queue depth.
    pub fn queue_peak(&self) -> usize {
        self.queue.peak()
    }

    /// The admission bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// The queue-wait deadline jobs are expired against.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Closes admission, drains every already-admitted job, and joins the
    /// workers. Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles = std::mem::take(
            &mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(queue: &TaskQueue<Job>, deadline: Duration) {
    let m = pool_metrics();
    while let Some(job) = queue.pop() {
        m.queue_depth.dec();
        let waited = job.enqueued.elapsed();
        m.queue_wait.record_duration(waited);
        let outcome = if deadline.is_zero() || waited > deadline {
            m.requests_expired.inc();
            JobOutcome::Expired
        } else {
            JobOutcome::Run
        };
        if let Some(ctx) = job.trace {
            let rec = flight_recorder();
            let start = rec.now_us().saturating_sub(waited.as_micros() as u64);
            let status = match outcome {
                JobOutcome::Run => SpanStatus::Ok,
                JobOutcome::Expired => SpanStatus::Expired,
            };
            rec.record_stage_resolved(ctx, queue_wait_stage(), start, waited, status);
            if outcome == JobOutcome::Expired {
                // Deadline expiry answers the peer with an overload
                // reply, so retain the trace like any other shed.
                rec.promote(ctx.trace_id, "shed");
            }
        }
        let run = job.run;
        // A panicking handler must not take the worker (and its queue
        // slot) down with it — the reader waiting on this job's latch is
        // released by the latch's drop guard, and the worker lives on.
        if std::panic::catch_unwind(AssertUnwindSafe(move || run(outcome))).is_err() {
            tlog!(Level::Error, "controller.pool", "request handler panicked");
        }
    }
}

/// Counts live threads and lets one waiter block until all are done —
/// how the controller waits out its per-connection reader threads during
/// drain without holding `JoinHandle`s (the accounting is load-
/// independent: each reader checks itself out as it exits).
#[derive(Default)]
pub struct WaitGroup {
    count: Mutex<usize>,
    zero: Condvar,
}

impl WaitGroup {
    /// An empty group.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.count.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Checks one member in.
    pub fn add(&self) {
        *self.lock() += 1;
    }

    /// Checks one member out, waking waiters at zero.
    pub fn done(&self) {
        let mut count = self.lock();
        *count = count.saturating_sub(1);
        if *count == 0 {
            self.zero.notify_all();
        }
    }

    /// Current membership (racy; for admission checks and telemetry).
    pub fn count(&self) -> usize {
        *self.lock()
    }

    /// Blocks until the count reaches zero.
    pub fn wait(&self) {
        let mut count = self.lock();
        while *count > 0 {
            count = self.zero.wait(count).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A one-shot completion latch: the reader thread submits a job with a
/// clone, then [`Latch::wait`]s; the job [`Latch::open`]s it when the
/// response has been written. That hand-off is what serializes responses
/// per connection while the pool runs many connections' jobs in parallel.
#[derive(Default)]
pub struct Latch {
    opened: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    /// A closed latch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the latch, releasing every waiter. Idempotent.
    pub fn open(&self) {
        *self.opened.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    /// Blocks until the latch is opened.
    pub fn wait(&self) {
        let mut opened = self.opened.lock().unwrap_or_else(|e| e.into_inner());
        while !*opened {
            opened = self.cv.wait(opened).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Opens a latch when dropped — the job-side guard that releases the
/// waiting reader even if the handler panics mid-response.
pub struct OpenOnDrop(pub Arc<Latch>);

impl Drop for OpenOnDrop {
    fn drop(&mut self) {
        self.0.open();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn test_config(workers: usize, depth: usize) -> ServeConfig {
        ServeConfig { workers, queue_depth: depth, ..ServeConfig::default() }
    }

    #[test]
    fn admitted_jobs_all_run() {
        let pool = ServePool::start(test_config(3, 64));
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let ran = Arc::clone(&ran);
            pool.try_submit(move |o| {
                assert_eq!(o, JobOutcome::Run);
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn full_queue_sheds_with_conservation() {
        // One worker pinned on a gate, depth 2: the 4th submission must
        // shed. admitted + shed == submitted throughout.
        let pool = ServePool::start(test_config(1, 2));
        let gate = Arc::new(Latch::new());
        let done = Arc::new(AtomicUsize::new(0));
        {
            let gate = Arc::clone(&gate);
            let done = Arc::clone(&done);
            pool.try_submit(move |_| {
                gate.wait();
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        // Wait until the worker holds the gated job so the queue is empty.
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }
        let mut admitted = 1;
        let mut shed = 0;
        for _ in 0..8 {
            let done = Arc::clone(&done);
            match pool.try_submit(move |_| {
                done.fetch_add(1, Ordering::Relaxed);
            }) {
                Ok(()) => admitted += 1,
                Err(SubmitError::Full) => shed += 1,
                Err(SubmitError::Closed) => panic!("pool closed early"),
            }
        }
        assert!(shed >= 6, "depth 2 must shed most of 8: shed={shed}");
        assert_eq!(admitted + shed, 9, "conservation");
        gate.open();
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), admitted, "drain runs every admitted job");
        assert!(pool.queue_peak() <= pool.queue_capacity());
    }

    #[test]
    fn zero_deadline_expires_every_job() {
        let pool = ServePool::start(ServeConfig {
            request_deadline: Duration::ZERO,
            ..test_config(2, 16)
        });
        let expired = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let expired = Arc::clone(&expired);
            pool.try_submit(move |o| {
                assert_eq!(o, JobOutcome::Expired);
                expired.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(expired.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn closed_pool_rejects_but_drains() {
        let pool = ServePool::start(test_config(1, 8));
        let gate = Arc::new(Latch::new());
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let gate = Arc::clone(&gate);
            pool.try_submit(move |_| gate.wait()).unwrap();
        }
        for _ in 0..3 {
            let ran = Arc::clone(&ran);
            pool.try_submit(move |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        // Close admission from another thread while the worker is gated,
        // then release; shutdown must still run the 3 queued jobs.
        let closer = std::thread::spawn({
            let gate = Arc::clone(&gate);
            move || {
                std::thread::sleep(Duration::from_millis(20));
                gate.open();
            }
        });
        pool.shutdown();
        closer.join().unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 3);
        assert_eq!(pool.try_submit(|_| {}), Err(SubmitError::Closed));
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = ServePool::start(test_config(1, 8));
        let latch = Arc::new(Latch::new());
        {
            let guard = OpenOnDrop(Arc::clone(&latch));
            pool.try_submit(move |_| {
                let _guard = guard;
                panic!("handler bug");
            })
            .unwrap();
        }
        latch.wait(); // released by the drop guard despite the panic
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let ran = Arc::clone(&ran);
            pool.try_submit(move |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 1, "the lone worker survived");
    }

    #[test]
    fn waitgroup_blocks_until_all_done() {
        let wg = Arc::new(WaitGroup::new());
        for _ in 0..4 {
            wg.add();
        }
        assert_eq!(wg.count(), 4);
        let waiter = {
            let wg = Arc::clone(&wg);
            std::thread::spawn(move || wg.wait())
        };
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(5));
            wg.done();
        }
        waiter.join().unwrap();
        assert_eq!(wg.count(), 0);
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 2);
        assert!(c.queue_depth >= 1);
        assert!(c.max_connections >= 1);
        assert!(!c.request_deadline.is_zero());
        assert!(c.retry_after_ms > 0);
        assert_eq!(c.trace_sample, 1, "tracing on by default");
        assert_eq!(c.trace_slow_ms, 0, "latency trigger off by default");
    }

    #[test]
    fn traced_dispatch_records_queue_wait_span() {
        let pool = ServePool::start(test_config(1, 8));
        let ctx = TraceContext::root(0x5EAF_0001);
        let latch = Arc::new(Latch::new());
        {
            let guard = OpenOnDrop(Arc::clone(&latch));
            pool.try_submit_traced(Some(ctx), move |o| {
                assert_eq!(o, JobOutcome::Run);
                drop(guard);
            })
            .unwrap();
        }
        latch.wait();
        pool.shutdown();
        let spans = flight_recorder().spans_for(ctx.trace_id);
        assert!(
            spans.iter().any(|s| s.stage == stages::QUEUE_WAIT
                && s.parent_id == ctx.span_id
                && s.status == SpanStatus::Ok),
            "queue_wait child span recorded: {spans:?}"
        );
    }

    #[test]
    fn traced_shed_promotes_the_trace() {
        // One worker pinned, depth 1: the third submission sheds and its
        // trace must land in the retained set with a shed verdict.
        let pool = ServePool::start(test_config(1, 1));
        let gate = Arc::new(Latch::new());
        {
            let gate = Arc::clone(&gate);
            pool.try_submit(move |_| gate.wait()).unwrap();
        }
        while pool.queue_len() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(|_| {}).unwrap();
        let ctx = TraceContext::root(0x5EAF_0002);
        assert_eq!(
            pool.try_submit_traced(Some(ctx), |_| {}),
            Err(SubmitError::Full)
        );
        gate.open();
        pool.shutdown();
        let retained = flight_recorder().retained();
        let t = retained
            .iter()
            .find(|t| t.trace_id == ctx.trace_id)
            .expect("shed trace retained");
        assert_eq!(t.verdict, "shed");
        assert!(
            t.spans.iter().any(|s| s.stage == stages::QUEUE_WAIT
                && s.status == SpanStatus::Shed),
            "shed marker span present: {:?}",
            t.spans
        );
    }
}
