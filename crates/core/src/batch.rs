//! Batch prediction jobs and the PredictDDL-vs-Ernest cost comparison
//! (§IV-B5, Fig. 13).
//!
//! "We define the submission of two or more test workloads as one batch job
//! ... PredictDDL trains its prediction model only once and can complete all
//! the inference workloads ... In contrast, Ernest needs to retrain its
//! prediction model with new data every time the workload changes."
//!
//! Cost accounting:
//! * **PredictDDL** — the one-time offline training wall-clock
//!   ([`crate::offline::TrainCost`]) plus measured per-workload embedding +
//!   inference wall-clock.
//! * **Ernest** — per workload: the *simulated* runtime of the training runs
//!   its experiment design chooses (this is data collection on the real
//!   testbed — hours, not milliseconds) plus measured NNLS fit and predict
//!   wall-clock.

use crate::offline::PredictDdl;
use crate::request::RequestError;
use pddl_cluster::ClusterState;
use pddl_ddlsim::{Simulator, Workload};
use pddl_ernest::design::{default_candidates, greedy_a_optimal};
use pddl_ernest::model::{ErnestModel, ErnestSample};
use std::time::Instant;

/// A batch prediction job: several workloads targeting one cluster.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// The workloads submitted together.
    pub workloads: Vec<Workload>,
    /// The shared target cluster.
    pub cluster: ClusterState,
}

/// Result of running a batch both ways.
#[derive(Clone, Debug)]
pub struct BatchComparison {
    /// Number of workloads in the batch.
    pub batch_size: usize,
    /// PredictDDL one-time training cost (wall-clock seconds), including
    /// GHN meta-training.
    pub pddl_train_secs: f64,
    /// The GHN meta-training share of `pddl_train_secs`. The paper treats
    /// the per-dataset GHN as a preexisting offline asset ("trained only
    /// once for a particular dataset"), so Fig. 13 can be read either with
    /// or without it.
    pub pddl_ghn_secs: f64,
    /// PredictDDL total inference wall-clock for the batch.
    pub pddl_infer_secs: f64,
    /// Ernest simulated data-collection seconds over the batch.
    pub ernest_collect_secs: f64,
    /// Ernest fit + predict wall-clock over the batch.
    pub ernest_fit_secs: f64,
    /// Per-workload predictions (PredictDDL, Ernest), seconds.
    pub predictions: Vec<(f64, f64)>,
}

impl BatchComparison {
    /// PredictDDL total cost: one-time training plus batch inference.
    pub fn pddl_total(&self) -> f64 {
        self.pddl_train_secs + self.pddl_infer_secs
    }

    /// Ernest total cost: per-workload data collection plus fitting.
    pub fn ernest_total(&self) -> f64 {
        self.ernest_collect_secs + self.ernest_fit_secs
    }

    /// Ernest-to-PredictDDL total-time ratio (the paper's 2.6–10.3×),
    /// counting GHN meta-training against PredictDDL.
    pub fn speedup(&self) -> f64 {
        self.ernest_total() / self.pddl_total().max(1e-9)
    }

    /// Speedup with the per-dataset GHN treated as a preexisting asset
    /// (the paper's reusability framing).
    pub fn speedup_amortized(&self) -> f64 {
        self.ernest_total() / (self.pddl_total() - self.pddl_ghn_secs).max(1e-9)
    }
}

/// Number of training runs Ernest's experiment design selects per workload.
const ERNEST_DESIGN_RUNS: usize = 7;

/// Per-workload cost breakdown — the unit of work both the serial and the
/// pooled batch paths compute, then reduce in workload order so the two
/// paths produce identical [`BatchComparison`]s.
struct WorkloadCosts {
    /// (PredictDDL, Ernest) predicted seconds.
    predictions: (f64, f64),
    /// Measured PredictDDL embed+regress wall-clock.
    pddl_infer_secs: f64,
    /// Ernest simulated data-collection seconds.
    ernest_collect_secs: f64,
    /// Ernest measured fit+predict wall-clock.
    ernest_fit_secs: f64,
}

/// Runs one workload of a batch job through both predictors.
fn compare_one(
    system: &PredictDdl,
    sim: &Simulator,
    cluster: &ClusterState,
    w: &Workload,
) -> Result<WorkloadCosts, RequestError> {
    // --- PredictDDL: embed + regress (measured wall-clock). ---
    let t0 = Instant::now();
    let pred = system.predict_workload(w, cluster)?;
    let pddl_infer_secs = t0.elapsed().as_secs_f64();

    // --- Ernest: design runs → collect (simulated) → fit → predict. ---
    let mut ernest_collect = 0.0f64;
    let candidates = default_candidates(8);
    let picks = greedy_a_optimal(&candidates, ERNEST_DESIGN_RUNS);
    let mut samples = Vec::with_capacity(picks.len());
    for &i in &picks {
        let c = candidates[i];
        let probe_cluster = homogeneous_like(cluster, c.machines);
        // One-epoch run on a `scale` fraction of the data.
        let mut probe = w.clone();
        probe.epochs = 1;
        let full = sim
            .expected_time(&probe, &probe_cluster)
            .map_err(|e| RequestError::InvalidParams(e.to_string()))?;
        let run_secs = full * c.scale;
        ernest_collect += run_secs;
        samples.push(ErnestSample {
            scale: c.scale,
            machines: c.machines,
            time_secs: run_secs,
        });
    }
    let t1 = Instant::now();
    let model = ErnestModel::fit(&samples);
    // Extrapolate to the full job: full scale × epochs on the target
    // cluster size (Ernest's per-iteration model scales linearly in
    // epochs).
    let ernest_pred = model.predict(1.0, cluster.num_servers()) * w.epochs as f64;
    let ernest_fit_secs = t1.elapsed().as_secs_f64();

    Ok(WorkloadCosts {
        predictions: (pred.seconds, ernest_pred),
        pddl_infer_secs,
        ernest_collect_secs: ernest_collect,
        ernest_fit_secs,
    })
}

/// Reduces per-workload costs in workload order (fixed floating-point
/// grouping, so serial and pooled paths agree bit-for-bit on the
/// deterministic fields).
fn reduce(
    system: &PredictDdl,
    job: &BatchJob,
    per_workload: Vec<Result<WorkloadCosts, RequestError>>,
) -> Result<BatchComparison, RequestError> {
    let mut pddl_infer = 0.0f64;
    let mut ernest_collect = 0.0f64;
    let mut ernest_fit = 0.0f64;
    let mut predictions = Vec::with_capacity(per_workload.len());
    for costs in per_workload {
        let c = costs?;
        pddl_infer += c.pddl_infer_secs;
        ernest_collect += c.ernest_collect_secs;
        ernest_fit += c.ernest_fit_secs;
        predictions.push(c.predictions);
    }
    Ok(BatchComparison {
        batch_size: job.workloads.len(),
        pddl_train_secs: system.train_cost.total(),
        pddl_ghn_secs: system.train_cost.ghn_secs,
        pddl_infer_secs: pddl_infer,
        ernest_collect_secs: ernest_collect,
        ernest_fit_secs: ernest_fit,
        predictions,
    })
}

/// Runs one batch job through a trained PredictDDL system and through
/// per-workload Ernest (collection simulated, fitting measured), fanning
/// the per-workload work out across the global work pool.
///
/// The `predictions` and `ernest_collect_secs` fields are deterministic
/// and bit-identical to [`compare_batch_serial`]; the measured wall-clock
/// fields (`pddl_infer_secs`, `ernest_fit_secs`) are timings and vary run
/// to run on either path.
pub fn compare_batch(
    system: &PredictDdl,
    sim: &Simulator,
    job: &BatchJob,
) -> Result<BatchComparison, RequestError> {
    let per_workload = pddl_par::par_map(&job.workloads, |w| {
        compare_one(system, sim, &job.cluster, w)
    });
    reduce(system, job, per_workload)
}

/// Single-threaded reference implementation of [`compare_batch`] — the
/// baseline the pooled path is benchmarked (and determinism-tested)
/// against.
pub fn compare_batch_serial(
    system: &PredictDdl,
    sim: &Simulator,
    job: &BatchJob,
) -> Result<BatchComparison, RequestError> {
    let per_workload = job
        .workloads
        .iter()
        .map(|w| compare_one(system, sim, &job.cluster, w))
        .collect();
    reduce(system, job, per_workload)
}

/// A cluster of the same server class as `like`, resized to `n`.
fn homogeneous_like(like: &ClusterState, n: usize) -> ClusterState {
    let class = like.servers[0].spec.class;
    ClusterState::homogeneous(class, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineTrainer;
    use pddl_cluster::ServerClass;
    use pddl_ddlsim::SimConfig;

    fn batch(models: &[&str]) -> BatchJob {
        BatchJob {
            workloads: models
                .iter()
                .map(|m| Workload::new(m, "cifar10", 128, 2))
                .collect(),
            cluster: ClusterState::homogeneous(ServerClass::GpuP100, 4),
        }
    }

    #[test]
    fn batch_comparison_produces_costs() {
        let system = OfflineTrainer::tiny().train_full();
        let sim = Simulator::new(SimConfig::default());
        let cmp = compare_batch(&system, &sim, &batch(&["resnet18", "vgg16"])).unwrap();
        assert_eq!(cmp.batch_size, 2);
        assert_eq!(cmp.predictions.len(), 2);
        assert!(cmp.pddl_infer_secs > 0.0);
        assert!(cmp.ernest_collect_secs > 0.0, "collection must cost simulated time");
        assert!(cmp.pddl_total() > 0.0 && cmp.ernest_total() > 0.0);
    }

    #[test]
    fn speedup_grows_with_batch_size() {
        // The paper's scalability claim: amortizing PredictDDL's one-time
        // training makes the advantage grow from B=2 to B=8.
        let system = OfflineTrainer::tiny().train_full();
        let sim = Simulator::new(SimConfig::default());
        let small = compare_batch(&system, &sim, &batch(&["resnet18", "vgg16"])).unwrap();
        let large = compare_batch(
            &system,
            &sim,
            &batch(&[
                "resnet18",
                "vgg16",
                "squeezenet1_1",
                "alexnet",
                "mobilenet_v3_small",
                "efficientnet_b0",
                "densenet121",
                "resnext50_32x4d",
            ]),
        )
        .unwrap();
        assert!(
            large.speedup() > small.speedup(),
            "B=8 speedup {:.2} should exceed B=2 speedup {:.2}",
            large.speedup(),
            small.speedup()
        );
    }

    #[test]
    fn pooled_batch_matches_serial_bit_for_bit() {
        // Determinism contract: the pooled path must produce byte-identical
        // predictions and simulated collection time to the serial reference
        // — only the measured wall-clock fields may differ.
        let system = OfflineTrainer::tiny().train_full();
        let sim = Simulator::new(SimConfig::default());
        let job = batch(&[
            "resnet18",
            "vgg16",
            "squeezenet1_1",
            "alexnet",
            "resnet18", // repeated architecture exercises the embedding cache
            "vgg16",
        ]);
        let pooled = compare_batch(&system, &sim, &job).unwrap();
        let serial = compare_batch_serial(&system, &sim, &job).unwrap();
        assert_eq!(pooled.batch_size, serial.batch_size);
        assert_eq!(
            pooled.ernest_collect_secs.to_bits(),
            serial.ernest_collect_secs.to_bits(),
            "simulated collection seconds must be deterministic"
        );
        assert_eq!(pooled.predictions.len(), serial.predictions.len());
        for (i, (p, s)) in pooled.predictions.iter().zip(&serial.predictions).enumerate() {
            assert_eq!(
                (p.0.to_bits(), p.1.to_bits()),
                (s.0.to_bits(), s.1.to_bits()),
                "workload {i}: pooled and serial predictions diverged"
            );
        }
    }

    #[test]
    fn ernest_predictions_are_positive() {
        let system = OfflineTrainer::tiny().train_full();
        let sim = Simulator::new(SimConfig::default());
        let cmp = compare_batch(&system, &sim, &batch(&["squeezenet1_1"])).unwrap();
        for &(p, e) in &cmp.predictions {
            assert!(p > 0.0 && e > 0.0);
        }
    }
}
