//! Batch prediction jobs and the PredictDDL-vs-Ernest cost comparison
//! (§IV-B5, Fig. 13).
//!
//! "We define the submission of two or more test workloads as one batch job
//! ... PredictDDL trains its prediction model only once and can complete all
//! the inference workloads ... In contrast, Ernest needs to retrain its
//! prediction model with new data every time the workload changes."
//!
//! Cost accounting:
//! * **PredictDDL** — the one-time offline training wall-clock
//!   ([`crate::offline::TrainCost`]) plus measured per-workload embedding +
//!   inference wall-clock.
//! * **Ernest** — per workload: the *simulated* runtime of the training runs
//!   its experiment design chooses (this is data collection on the real
//!   testbed — hours, not milliseconds) plus measured NNLS fit and predict
//!   wall-clock.

use crate::offline::PredictDdl;
use crate::request::RequestError;
use pddl_cluster::ClusterState;
use pddl_ddlsim::{Simulator, Workload};
use pddl_ernest::design::{default_candidates, greedy_a_optimal};
use pddl_ernest::model::{ErnestModel, ErnestSample};
use std::time::Instant;

/// A batch prediction job: several workloads targeting one cluster.
#[derive(Clone, Debug)]
pub struct BatchJob {
    pub workloads: Vec<Workload>,
    pub cluster: ClusterState,
}

/// Result of running a batch both ways.
#[derive(Clone, Debug)]
pub struct BatchComparison {
    pub batch_size: usize,
    /// PredictDDL one-time training cost (wall-clock seconds), including
    /// GHN meta-training.
    pub pddl_train_secs: f64,
    /// The GHN meta-training share of `pddl_train_secs`. The paper treats
    /// the per-dataset GHN as a preexisting offline asset ("trained only
    /// once for a particular dataset"), so Fig. 13 can be read either with
    /// or without it.
    pub pddl_ghn_secs: f64,
    /// PredictDDL total inference wall-clock for the batch.
    pub pddl_infer_secs: f64,
    /// Ernest simulated data-collection seconds over the batch.
    pub ernest_collect_secs: f64,
    /// Ernest fit + predict wall-clock over the batch.
    pub ernest_fit_secs: f64,
    /// Per-workload predictions (PredictDDL, Ernest), seconds.
    pub predictions: Vec<(f64, f64)>,
}

impl BatchComparison {
    pub fn pddl_total(&self) -> f64 {
        self.pddl_train_secs + self.pddl_infer_secs
    }

    pub fn ernest_total(&self) -> f64 {
        self.ernest_collect_secs + self.ernest_fit_secs
    }

    /// Ernest-to-PredictDDL total-time ratio (the paper's 2.6–10.3×),
    /// counting GHN meta-training against PredictDDL.
    pub fn speedup(&self) -> f64 {
        self.ernest_total() / self.pddl_total().max(1e-9)
    }

    /// Speedup with the per-dataset GHN treated as a preexisting asset
    /// (the paper's reusability framing).
    pub fn speedup_amortized(&self) -> f64 {
        self.ernest_total() / (self.pddl_total() - self.pddl_ghn_secs).max(1e-9)
    }
}

/// Number of training runs Ernest's experiment design selects per workload.
const ERNEST_DESIGN_RUNS: usize = 7;

/// Runs one batch job through a trained PredictDDL system and through
/// per-workload Ernest (collection simulated, fitting measured).
pub fn compare_batch(
    system: &PredictDdl,
    sim: &Simulator,
    job: &BatchJob,
) -> Result<BatchComparison, RequestError> {
    let mut pddl_infer = 0.0f64;
    let mut ernest_collect = 0.0f64;
    let mut ernest_fit = 0.0f64;
    let mut predictions = Vec::with_capacity(job.workloads.len());

    for w in &job.workloads {
        // --- PredictDDL: embed + regress (measured wall-clock). ---
        let t0 = Instant::now();
        let pred = system.predict_workload(w, &job.cluster)?;
        pddl_infer += t0.elapsed().as_secs_f64();

        // --- Ernest: design runs → collect (simulated) → fit → predict. ---
        let candidates = default_candidates(8);
        let picks = greedy_a_optimal(&candidates, ERNEST_DESIGN_RUNS);
        let mut samples = Vec::with_capacity(picks.len());
        for &i in &picks {
            let c = candidates[i];
            let cluster = homogeneous_like(&job.cluster, c.machines);
            // One-epoch run on a `scale` fraction of the data.
            let mut probe = w.clone();
            probe.epochs = 1;
            let full = sim
                .expected_time(&probe, &cluster)
                .map_err(|e| RequestError::InvalidParams(e.to_string()))?;
            let run_secs = full * c.scale;
            ernest_collect += run_secs;
            samples.push(ErnestSample {
                scale: c.scale,
                machines: c.machines,
                time_secs: run_secs,
            });
        }
        let t1 = Instant::now();
        let model = ErnestModel::fit(&samples);
        // Extrapolate to the full job: full scale × epochs on the target
        // cluster size (Ernest's per-iteration model scales linearly in
        // epochs).
        let ernest_pred =
            model.predict(1.0, job.cluster.num_servers()) * w.epochs as f64;
        ernest_fit += t1.elapsed().as_secs_f64();
        predictions.push((pred.seconds, ernest_pred));
    }

    Ok(BatchComparison {
        batch_size: job.workloads.len(),
        pddl_train_secs: system.train_cost.total(),
        pddl_ghn_secs: system.train_cost.ghn_secs,
        pddl_infer_secs: pddl_infer,
        ernest_collect_secs: ernest_collect,
        ernest_fit_secs: ernest_fit,
        predictions,
    })
}

/// A cluster of the same server class as `like`, resized to `n`.
fn homogeneous_like(like: &ClusterState, n: usize) -> ClusterState {
    let class = like.servers[0].spec.class;
    ClusterState::homogeneous(class, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineTrainer;
    use pddl_cluster::ServerClass;
    use pddl_ddlsim::SimConfig;

    fn batch(models: &[&str]) -> BatchJob {
        BatchJob {
            workloads: models
                .iter()
                .map(|m| Workload::new(m, "cifar10", 128, 2))
                .collect(),
            cluster: ClusterState::homogeneous(ServerClass::GpuP100, 4),
        }
    }

    #[test]
    fn batch_comparison_produces_costs() {
        let system = OfflineTrainer::tiny().train_full();
        let sim = Simulator::new(SimConfig::default());
        let cmp = compare_batch(&system, &sim, &batch(&["resnet18", "vgg16"])).unwrap();
        assert_eq!(cmp.batch_size, 2);
        assert_eq!(cmp.predictions.len(), 2);
        assert!(cmp.pddl_infer_secs > 0.0);
        assert!(cmp.ernest_collect_secs > 0.0, "collection must cost simulated time");
        assert!(cmp.pddl_total() > 0.0 && cmp.ernest_total() > 0.0);
    }

    #[test]
    fn speedup_grows_with_batch_size() {
        // The paper's scalability claim: amortizing PredictDDL's one-time
        // training makes the advantage grow from B=2 to B=8.
        let system = OfflineTrainer::tiny().train_full();
        let sim = Simulator::new(SimConfig::default());
        let small = compare_batch(&system, &sim, &batch(&["resnet18", "vgg16"])).unwrap();
        let large = compare_batch(
            &system,
            &sim,
            &batch(&[
                "resnet18",
                "vgg16",
                "squeezenet1_1",
                "alexnet",
                "mobilenet_v3_small",
                "efficientnet_b0",
                "densenet121",
                "resnext50_32x4d",
            ]),
        )
        .unwrap();
        assert!(
            large.speedup() > small.speedup(),
            "B=8 speedup {:.2} should exceed B=2 speedup {:.2}",
            large.speedup(),
            small.speedup()
        );
    }

    #[test]
    fn ernest_predictions_are_positive() {
        let system = OfflineTrainer::tiny().train_full();
        let sim = Simulator::new(SimConfig::default());
        let cmp = compare_batch(&system, &sim, &batch(&["squeezenet1_1"])).unwrap();
        for &(p, e) in &cmp.predictions {
            assert!(p > 0.0 && e > 0.0);
        }
    }
}
