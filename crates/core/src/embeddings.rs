//! GHN-based Workload Embeddings Generator (§III-E, step ⑤ of Fig. 7).
//!
//! Selects the GHN matching the request's dataset, feeds it the workload's
//! computational graph, and returns the fixed-size complexity vector. Also
//! maintains the per-dataset embedding atlas used for cosine closest-match
//! queries (Fig. 5), and the sharded [`EmbeddingCache`] that amortizes the
//! GHN forward pass across repeated workloads ("train once, reuse
//! everywhere" applied to the embedding itself).
//!
//! Every GHN forward here records into the `ghn.embed` latency histogram
//! (and the underlying GEMMs into `tensor.gemm_calls`/`tensor.gemm_flops`),
//! so cache hit rates can be read against actual embedding cost on the
//! serving stats endpoint.

use crate::registry::GhnRegistry;
use pddl_ghn::EmbeddingSet;
use pddl_graph::CompGraph;
use pddl_telemetry::{Counter, Gauge};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The embeddings generator: GHN registry + per-dataset embedding atlas.
#[derive(Serialize, Deserialize)]
pub struct EmbeddingsGenerator {
    atlas: HashMap<String, EmbeddingSet>,
}

impl Default for EmbeddingsGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbeddingsGenerator {
    /// Creates an empty generator with no recorded embeddings.
    pub fn new() -> Self {
        Self { atlas: HashMap::new() }
    }

    /// Embeds a graph with the dataset's GHN. `None` if no GHN is trained
    /// for the dataset (the Task Checker should have routed to offline
    /// training first).
    pub fn embed(
        &self,
        registry: &GhnRegistry,
        dataset: &str,
        graph: &CompGraph,
    ) -> Option<Vec<f32>> {
        registry.get(dataset).map(|ghn| ghn.embed_graph(graph))
    }

    /// Embeds and records the vector in the dataset's atlas under the
    /// graph's name (used when building the training set, so later queries
    /// can report the nearest known architecture).
    pub fn embed_and_record(
        &mut self,
        registry: &GhnRegistry,
        dataset: &str,
        graph: &CompGraph,
    ) -> Option<Vec<f32>> {
        let v = self.embed(registry, dataset, graph)?;
        self.record(dataset, &graph.name, v.clone());
        Some(v)
    }

    /// Records an externally computed embedding in the dataset's atlas —
    /// the insertion half of [`Self::embed_and_record`], used when the
    /// embeddings themselves were computed on the work pool.
    pub fn record(&mut self, dataset: &str, name: &str, v: Vec<f32>) {
        self.atlas
            .entry(dataset.to_ascii_lowercase())
            .or_default()
            .insert(name.to_string(), v);
    }

    /// Nearest known architecture to a query embedding, per dataset.
    pub fn nearest(&self, dataset: &str, query: &[f32]) -> Option<(String, f32)> {
        self.atlas
            .get(&dataset.to_ascii_lowercase())?
            .nearest(query)
            .map(|(n, s)| (n.to_string(), s))
    }

    /// Number of recorded architectures for a dataset.
    pub fn atlas_size(&self, dataset: &str) -> usize {
        self.atlas
            .get(&dataset.to_ascii_lowercase())
            .map_or(0, |s| s.len())
    }
}

/// Default total capacity of the service-level embedding cache. Embeddings
/// are ≤ 64 floats, so even the full zoo × both datasets fits in a few
/// hundred KB; the default leaves ample headroom for custom graphs.
pub const DEFAULT_EMBED_CACHE_CAPACITY: usize = 1024;

/// Global telemetry handles for the embedding cache (shared by every cache
/// instance in the process; per-instance numbers live in [`CacheStats`]).
struct CacheMetrics {
    hits: &'static Counter,
    misses: &'static Counter,
    evictions: &'static Counter,
    ghn_embeds: &'static Counter,
    entries: &'static Gauge,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: pddl_telemetry::counter("embed_cache.hits"),
        misses: pddl_telemetry::counter("embed_cache.misses"),
        evictions: pddl_telemetry::counter("embed_cache.evictions"),
        ghn_embeds: pddl_telemetry::counter("embed_cache.ghn_embeds"),
        entries: pddl_telemetry::gauge("embed_cache.entries"),
    })
}

/// Cache key: normalized dataset name + structural graph fingerprint
/// ([`CompGraph::fingerprint`]). The dataset is part of the key because the
/// same architecture embeds differently under different per-dataset GHNs.
type CacheKey = (String, u64);

/// One cached (or in-flight) embedding. The [`OnceLock`] doubles as the
/// single-flight mechanism: concurrent requests for the same key block in
/// `get_or_init` while the first computes, so a key's GHN forward pass runs
/// at most once per residency.
struct CacheEntry {
    cell: Arc<OnceLock<Vec<f32>>>,
    last_used: u64,
}

struct CacheShard {
    map: HashMap<CacheKey, CacheEntry>,
    /// Monotonic access clock for LRU recency (per shard).
    tick: u64,
}

/// Point-in-time counters of one cache instance (test- and
/// diagnostics-friendly; the process-wide `embed_cache.*` telemetry
/// counters aggregate across instances).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the key present (including in-flight entries,
    /// which never re-invoke the GHN).
    pub hits: u64,
    /// Lookups that inserted a fresh entry.
    pub misses: u64,
    /// Entries dropped by LRU pressure.
    pub evictions: u64,
    /// GHN forward passes actually executed on behalf of this cache.
    pub computes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// A sharded, mutex-striped, LRU-bounded cache of GHN embeddings keyed by
/// `(dataset, graph fingerprint)`.
///
/// * **Sharded** — keys stripe over up to 16 independent `Mutex`es, so
///   concurrent predictions rarely contend; the critical section is a
///   `HashMap` probe, never a GHN forward pass.
/// * **Single-flight** — a miss publishes an in-flight entry before
///   computing, so N threads racing on one new key run the GHN exactly
///   once; the others block on the entry and reuse the result.
/// * **LRU-bounded** — each shard evicts its least-recently-used entry
///   beyond its share of [`EmbeddingCache::capacity`].
///
/// Hit/miss/eviction counts are exported both process-wide (telemetry
/// counters `embed_cache.*`, visible in the controller's `{"op":"stats"}`
/// snapshot) and per instance ([`EmbeddingCache::stats`]).
pub struct EmbeddingCache {
    shards: Vec<Mutex<CacheShard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    computes: AtomicU64,
}

impl Default for EmbeddingCache {
    fn default() -> Self {
        Self::new(DEFAULT_EMBED_CACHE_CAPACITY)
    }
}

impl EmbeddingCache {
    /// A cache bounded to roughly `capacity` entries (rounded up to a
    /// multiple of the shard count; the exact bound is
    /// [`EmbeddingCache::capacity`]). `capacity` must be ≥ 1.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = capacity.min(16);
        let shard_capacity = capacity.div_ceil(shards);
        // Touch the global handles now so `embed_cache.*` metrics appear in
        // stats snapshots as soon as a cache exists, not on first traffic.
        let _ = cache_metrics();
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(CacheShard { map: HashMap::new(), tick: 0 }))
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            computes: AtomicU64::new(0),
        }
    }

    /// The enforced entry bound (shard count × per-shard capacity).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shard_capacity
    }

    /// Point-in-time per-instance counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            computes: self.computes.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().unwrap().map.len() as u64).sum(),
        }
    }

    /// Exports every *completed* entry as `(dataset, fingerprint,
    /// embedding)` triples, sorted by key for deterministic output —
    /// the payload `PredictDdl::save_checkpoint` persists so a warm
    /// restart starts with a hot cache. In-flight entries (a racer is
    /// still computing) are skipped rather than waited on.
    pub fn snapshot_entries(&self) -> Vec<(String, u64, Vec<f32>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(|e| e.into_inner());
            for ((dataset, fp), entry) in &s.map {
                if let Some(v) = entry.cell.get() {
                    out.push((dataset.clone(), *fp, v.clone()));
                }
            }
        }
        out.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        out
    }

    /// Inserts a precomputed embedding (from a checkpoint's cache
    /// snapshot) as a completed entry. A key already resident keeps its
    /// current entry; LRU bounds apply as usual, so preloading more than
    /// [`EmbeddingCache::capacity`] entries simply keeps the tail.
    pub fn preload(&self, dataset: &str, fingerprint: u64, embedding: Vec<f32>) {
        let key: CacheKey = (dataset.to_ascii_lowercase(), fingerprint);
        let m = cache_metrics();
        let shard = &self.shards[self.shard_index(&key)];
        let mut s = shard.lock().unwrap_or_else(|e| e.into_inner());
        s.tick += 1;
        let tick = s.tick;
        if s.map.contains_key(&key) {
            return;
        }
        let cell = Arc::new(OnceLock::new());
        let _ = cell.set(embedding);
        s.map.insert(key, CacheEntry { cell, last_used: tick });
        m.entries.inc();
        if s.map.len() > self.shard_capacity {
            if let Some(victim) =
                s.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                s.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                m.evictions.inc();
                m.entries.dec();
            }
        }
    }

    /// Shard index for `key` — the dataset is mixed into the fingerprint
    /// so one dataset's keys do not pile onto the fingerprint's shard
    /// distribution alone.
    fn shard_index(&self, key: &CacheKey) -> usize {
        let mut mix = key.1 ^ 0x9e3779b97f4a7c15;
        for b in key.0.bytes() {
            mix = (mix ^ b as u64).wrapping_mul(0x100000001b3);
        }
        (mix % self.shards.len() as u64) as usize
    }

    /// Returns the dataset's embedding of `graph`, computing it with the
    /// dataset's GHN on a miss and reusing the cached vector on a hit.
    /// `None` if no GHN is trained for the dataset (never cached, so the
    /// Task-Checker → offline-training path stays visible).
    pub fn get_or_embed(
        &self,
        registry: &GhnRegistry,
        dataset: &str,
        graph: &CompGraph,
    ) -> Option<Vec<f32>> {
        self.get_or_embed_detailed(registry, dataset, graph).map(|(v, _)| v)
    }

    /// [`EmbeddingCache::get_or_embed`] plus whether the probe *hit* (the
    /// key was already resident or in flight). The traced prediction path
    /// uses the flag to distinguish `embed_cache` hit spans — microseconds
    /// — from miss spans that paid for a GHN forward pass.
    pub fn get_or_embed_detailed(
        &self,
        registry: &GhnRegistry,
        dataset: &str,
        graph: &CompGraph,
    ) -> Option<(Vec<f32>, bool)> {
        let ghn = registry.get(dataset)?;
        let key: CacheKey = (dataset.to_ascii_lowercase(), graph.fingerprint());
        let m = cache_metrics();

        let shard = &self.shards[self.shard_index(&key)];

        let (cell, hit) = {
            let mut s = shard.lock().unwrap();
            s.tick += 1;
            let tick = s.tick;
            if let Some(entry) = s.map.get_mut(&key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                m.hits.inc();
                (Arc::clone(&entry.cell), true)
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                m.misses.inc();
                let cell = Arc::new(OnceLock::new());
                s.map.insert(key, CacheEntry { cell: Arc::clone(&cell), last_used: tick });
                m.entries.inc();
                if s.map.len() > self.shard_capacity {
                    // Evict the least-recently-used entry. O(shard size),
                    // which is small by construction; an in-flight victim
                    // still completes for its waiters — it just loses
                    // residency.
                    if let Some(victim) = s
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone())
                    {
                        s.map.remove(&victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        m.evictions.inc();
                        m.entries.dec();
                    }
                }
                (cell, false)
            }
        };

        // Outside the shard lock: compute (first caller) or wait (racers).
        let v = cell.get_or_init(|| {
            self.computes.fetch_add(1, Ordering::Relaxed);
            m.ghn_embeds.inc();
            ghn.embed_graph(graph)
        });
        Some((v.clone(), hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_ghn::GhnConfig;
    use pddl_ghn::train::TrainConfig;
    use pddl_zoo::{build_model, CIFAR10};

    fn registry() -> GhnRegistry {
        let mut r = GhnRegistry::new(GhnConfig::tiny(), TrainConfig::tiny(), 5);
        r.train_for_dataset("cifar10").unwrap();
        r
    }

    #[test]
    fn embeds_with_matching_ghn() {
        let reg = registry();
        let gen = EmbeddingsGenerator::new();
        let g = build_model("resnet18", &CIFAR10).unwrap();
        let e = gen.embed(&reg, "cifar10", &g).unwrap();
        assert_eq!(e.len(), GhnConfig::tiny().hidden_dim);
    }

    #[test]
    fn missing_ghn_returns_none() {
        let reg = registry();
        let gen = EmbeddingsGenerator::new();
        let g = build_model("resnet18", &CIFAR10).unwrap();
        assert!(gen.embed(&reg, "tiny-imagenet", &g).is_none());
    }

    #[test]
    fn atlas_nearest_finds_self() {
        let reg = registry();
        let mut gen = EmbeddingsGenerator::new();
        for name in ["resnet18", "vgg16", "squeezenet1_1"] {
            let g = build_model(name, &CIFAR10).unwrap();
            gen.embed_and_record(&reg, "cifar10", &g).unwrap();
        }
        assert_eq!(gen.atlas_size("cifar10"), 3);
        let g = build_model("vgg16", &CIFAR10).unwrap();
        let e = gen.embed(&reg, "cifar10", &g).unwrap();
        let (name, sim) = gen.nearest("cifar10", &e).unwrap();
        assert_eq!(name, "vgg16");
        assert!(sim > 0.999);
    }

    /// A tiny but valid graph: input → conv(c_out) → output. Distinct
    /// `c_out` values produce structurally distinct graphs (distinct
    /// fingerprints) without the cost of full zoo models.
    fn synth_graph(c_out: usize) -> CompGraph {
        use pddl_graph::{NodeAttrs, OpKind};
        let mut g = CompGraph::new(format!("synth{c_out}"));
        let input = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 8), "in");
        let conv = g.chain(input, OpKind::Conv, NodeAttrs::conv(3, c_out, 3, 1, 8), "c");
        let _out = g.chain(conv, OpKind::Output, NodeAttrs::elementwise(c_out, 8), "out");
        g
    }

    #[test]
    fn cache_hit_returns_the_same_vector_as_direct_embedding() {
        let reg = registry();
        let gen = EmbeddingsGenerator::new();
        let cache = EmbeddingCache::new(64);
        let g = build_model("resnet18", &CIFAR10).unwrap();
        let direct = gen.embed(&reg, "cifar10", &g).unwrap();
        let (first, was_hit) = cache.get_or_embed_detailed(&reg, "cifar10", &g).unwrap();
        assert!(!was_hit, "first probe is a miss");
        let (second, was_hit) = cache.get_or_embed_detailed(&reg, "cifar10", &g).unwrap();
        assert!(was_hit, "second probe is a hit");
        assert_eq!(direct, first);
        assert_eq!(direct, second);
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.computes, s.entries), (1, 1, 1, 1));
        // The global counters must be registered so the controller's
        // `{"op":"stats"}` snapshot carries them.
        let snap = pddl_telemetry::snapshot();
        for name in [
            "embed_cache.hits",
            "embed_cache.misses",
            "embed_cache.evictions",
            "embed_cache.ghn_embeds",
        ] {
            assert!(snap.counter(name).is_some(), "{name} missing from snapshot");
        }
        assert!(snap.counter("embed_cache.hits").unwrap() >= 1);
    }

    #[test]
    fn cache_misses_on_unknown_dataset_are_not_cached() {
        let reg = registry(); // cifar10 only
        let cache = EmbeddingCache::new(64);
        let g = build_model("resnet18", &CIFAR10).unwrap();
        assert!(cache.get_or_embed(&reg, "tiny-imagenet", &g).is_none());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn cache_distinguishes_datasets_for_the_same_graph() {
        let mut reg = registry();
        reg.train_for_dataset("tiny-imagenet").unwrap();
        let cache = EmbeddingCache::new(64);
        let g = synth_graph(16);
        let a = cache.get_or_embed(&reg, "cifar10", &g).unwrap();
        let b = cache.get_or_embed(&reg, "tiny-imagenet", &g).unwrap();
        assert_ne!(a, b, "per-dataset GHNs must yield distinct cached entries");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_bound_is_respected_under_pressure() {
        let reg = registry();
        let cache = EmbeddingCache::new(4);
        assert_eq!(cache.capacity(), 4);
        for c_out in 1..=12 {
            cache.get_or_embed(&reg, "cifar10", &synth_graph(c_out)).unwrap();
        }
        let s = cache.stats();
        assert!(s.entries <= 4, "entries {} exceed capacity", s.entries);
        assert_eq!(s.misses, 12);
        assert!(s.evictions >= 8, "expected ≥8 evictions, got {}", s.evictions);
    }

    #[test]
    fn concurrent_embedding_deduplicates_ghn_invocations() {
        // N threads embed a mix of shared (repeated) and thread-unique
        // graphs through one cache: every distinct key must run the GHN
        // exactly once, hit counters must account for every other lookup,
        // and the LRU bound must hold throughout.
        const THREADS: usize = 8;
        const ROUNDS: usize = 20;
        let reg = registry();
        let gen = EmbeddingsGenerator::new();
        let cache = EmbeddingCache::default();
        let shared: Vec<CompGraph> = (1..=4).map(|c| synth_graph(100 + c)).collect();

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                let reg = &reg;
                let gen = &gen;
                let shared = &shared;
                scope.spawn(move || {
                    let unique = synth_graph(200 + t);
                    let direct = gen.embed(reg, "cifar10", &unique).unwrap();
                    let got = cache.get_or_embed(reg, "cifar10", &unique).unwrap();
                    assert_eq!(direct, got, "cached value must equal direct embedding");
                    for round in 0..ROUNDS {
                        let g = &shared[(t + round) % shared.len()];
                        let v = cache.get_or_embed(reg, "cifar10", g).unwrap();
                        assert_eq!(v, gen.embed(reg, "cifar10", g).unwrap());
                    }
                });
            }
        });

        let distinct = (shared.len() + THREADS) as u64;
        let lookups = (THREADS * (ROUNDS + 1)) as u64;
        let s = cache.stats();
        assert_eq!(s.computes, distinct, "a cached key must never re-invoke the GHN");
        assert_eq!(s.misses, distinct);
        assert_eq!(s.hits, lookups - distinct);
        assert_eq!(s.entries, distinct);
        assert_eq!(s.evictions, 0);
        assert!(s.entries <= cache.capacity() as u64);
    }

    #[test]
    fn family_members_closer_than_strangers() {
        // resnet34's nearest neighbor among {resnet18, squeezenet} should be
        // resnet18 — the Fig. 5 similarity story.
        let reg = registry();
        let mut gen = EmbeddingsGenerator::new();
        for name in ["resnet18", "squeezenet1_1"] {
            let g = build_model(name, &CIFAR10).unwrap();
            gen.embed_and_record(&reg, "cifar10", &g).unwrap();
        }
        let g34 = build_model("resnet34", &CIFAR10).unwrap();
        let e = gen.embed(&reg, "cifar10", &g34).unwrap();
        let (name, _) = gen.nearest("cifar10", &e).unwrap();
        assert_eq!(name, "resnet18");
    }
}
