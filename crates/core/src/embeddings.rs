//! GHN-based Workload Embeddings Generator (§III-E, step ⑤ of Fig. 7).
//!
//! Selects the GHN matching the request's dataset, feeds it the workload's
//! computational graph, and returns the fixed-size complexity vector. Also
//! maintains the per-dataset embedding atlas used for cosine closest-match
//! queries (Fig. 5).

use crate::registry::GhnRegistry;
use pddl_ghn::EmbeddingSet;
use pddl_graph::CompGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The embeddings generator: GHN registry + per-dataset embedding atlas.
#[derive(Serialize, Deserialize)]
pub struct EmbeddingsGenerator {
    atlas: HashMap<String, EmbeddingSet>,
}

impl Default for EmbeddingsGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbeddingsGenerator {
    pub fn new() -> Self {
        Self { atlas: HashMap::new() }
    }

    /// Embeds a graph with the dataset's GHN. `None` if no GHN is trained
    /// for the dataset (the Task Checker should have routed to offline
    /// training first).
    pub fn embed(
        &self,
        registry: &GhnRegistry,
        dataset: &str,
        graph: &CompGraph,
    ) -> Option<Vec<f32>> {
        registry.get(dataset).map(|ghn| ghn.embed_graph(graph))
    }

    /// Embeds and records the vector in the dataset's atlas under the
    /// graph's name (used when building the training set, so later queries
    /// can report the nearest known architecture).
    pub fn embed_and_record(
        &mut self,
        registry: &GhnRegistry,
        dataset: &str,
        graph: &CompGraph,
    ) -> Option<Vec<f32>> {
        let v = self.embed(registry, dataset, graph)?;
        self.atlas
            .entry(dataset.to_ascii_lowercase())
            .or_default()
            .insert(graph.name.clone(), v.clone());
        Some(v)
    }

    /// Nearest known architecture to a query embedding, per dataset.
    pub fn nearest(&self, dataset: &str, query: &[f32]) -> Option<(String, f32)> {
        self.atlas
            .get(&dataset.to_ascii_lowercase())?
            .nearest(query)
            .map(|(n, s)| (n.to_string(), s))
    }

    /// Number of recorded architectures for a dataset.
    pub fn atlas_size(&self, dataset: &str) -> usize {
        self.atlas
            .get(&dataset.to_ascii_lowercase())
            .map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_ghn::GhnConfig;
    use pddl_ghn::train::TrainConfig;
    use pddl_zoo::{build_model, CIFAR10};

    fn registry() -> GhnRegistry {
        let mut r = GhnRegistry::new(GhnConfig::tiny(), TrainConfig::tiny(), 5);
        r.train_for_dataset("cifar10").unwrap();
        r
    }

    #[test]
    fn embeds_with_matching_ghn() {
        let reg = registry();
        let gen = EmbeddingsGenerator::new();
        let g = build_model("resnet18", &CIFAR10).unwrap();
        let e = gen.embed(&reg, "cifar10", &g).unwrap();
        assert_eq!(e.len(), GhnConfig::tiny().hidden_dim);
    }

    #[test]
    fn missing_ghn_returns_none() {
        let reg = registry();
        let gen = EmbeddingsGenerator::new();
        let g = build_model("resnet18", &CIFAR10).unwrap();
        assert!(gen.embed(&reg, "tiny-imagenet", &g).is_none());
    }

    #[test]
    fn atlas_nearest_finds_self() {
        let reg = registry();
        let mut gen = EmbeddingsGenerator::new();
        for name in ["resnet18", "vgg16", "squeezenet1_1"] {
            let g = build_model(name, &CIFAR10).unwrap();
            gen.embed_and_record(&reg, "cifar10", &g).unwrap();
        }
        assert_eq!(gen.atlas_size("cifar10"), 3);
        let g = build_model("vgg16", &CIFAR10).unwrap();
        let e = gen.embed(&reg, "cifar10", &g).unwrap();
        let (name, sim) = gen.nearest("cifar10", &e).unwrap();
        assert_eq!(name, "vgg16");
        assert!(sim > 0.999);
    }

    #[test]
    fn family_members_closer_than_strangers() {
        // resnet34's nearest neighbor among {resnet18, squeezenet} should be
        // resnet18 — the Fig. 5 similarity story.
        let reg = registry();
        let mut gen = EmbeddingsGenerator::new();
        for name in ["resnet18", "squeezenet1_1"] {
            let g = build_model(name, &CIFAR10).unwrap();
            gen.embed_and_record(&reg, "cifar10", &g).unwrap();
        }
        let g34 = build_model("resnet34", &CIFAR10).unwrap();
        let e = gen.embed(&reg, "cifar10", &g34).unwrap();
        let (name, _) = gen.nearest("cifar10", &e).unwrap();
        assert_eq!(name, "resnet18");
    }
}
