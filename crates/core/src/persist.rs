//! Persistence of trained systems.
//!
//! PredictDDL's value is amortization: the GHN and the regression model are
//! trained once and reused across sessions. This module saves/loads the
//! entire trained system (GHN weights per dataset, the embedding atlas, the
//! fitted regression and its scaler) as a single JSON document.

use crate::offline::PredictDdl;
use std::io::{Read, Write};
use std::path::Path;

/// Persistence failures.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem read/write failure.
    Io(std::io::Error),
    /// (De)serialization failure.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

impl PredictDdl {
    /// Serializes the trained system to a writer as JSON.
    pub fn save_to(&self, w: &mut impl Write) -> Result<(), PersistError> {
        serde_json::to_writer(w, self)?;
        Ok(())
    }

    /// Saves to a file path atomically: the document is staged in a
    /// sibling tempfile, fsynced, and renamed over `path`, so a crash
    /// mid-save can never leave a torn system file behind — a reader sees
    /// the old document or the new one, nothing in between.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let mut buf = Vec::new();
        self.save_to(&mut buf)?;
        pddl_registry::atomic_write(path.as_ref(), &buf)?;
        Ok(())
    }

    /// Deserializes a trained system from a reader.
    pub fn load_from(r: &mut impl Read) -> Result<Self, PersistError> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        Ok(serde_json::from_str(&buf)?)
    }

    /// Loads from a file path.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::load_from(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use crate::offline::OfflineTrainer;
    use crate::request::PredictionRequest;
    use pddl_cluster::{ClusterState, ServerClass};
    use pddl_ddlsim::Workload;

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let system = OfflineTrainer::tiny().train_full();
        let req = PredictionRequest::zoo(
            Workload::new("resnet18", "cifar10", 128, 2),
            ClusterState::homogeneous(ServerClass::GpuP100, 4),
        );
        let before = system.predict(&req).unwrap().seconds;

        let mut buf = Vec::new();
        system.save_to(&mut buf).unwrap();
        let loaded = crate::offline::PredictDdl::load_from(&mut buf.as_slice()).unwrap();
        let after = loaded.predict(&req).unwrap().seconds;
        assert!(
            (before - after).abs() < 1e-9,
            "prediction drifted through persistence: {before} vs {after}"
        );
    }

    #[test]
    fn loaded_system_keeps_atlas() {
        let system = OfflineTrainer::tiny().train_full();
        let n = system.embeddings.atlas_size("cifar10");
        assert!(n > 0);
        let mut buf = Vec::new();
        system.save_to(&mut buf).unwrap();
        let loaded = crate::offline::PredictDdl::load_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.embeddings.atlas_size("cifar10"), n);
    }

    #[test]
    fn corrupt_payload_is_an_error() {
        let garbage = b"not a system";
        let r = crate::offline::PredictDdl::load_from(&mut garbage.as_slice());
        assert!(r.is_err());
    }

    /// Per-test scratch directory: unique per process *and* per call, so
    /// parallel tests (and parallel `cargo test` invocations) never race
    /// on a shared path.
    fn unique_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pddl-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_round_trip() {
        let system = OfflineTrainer::tiny().train_full();
        let dir = unique_dir("round-trip");
        let path = dir.join("system.json");
        system.save(&path).unwrap();
        let loaded = crate::offline::PredictDdl::load(&path).unwrap();
        assert_eq!(
            loaded.registry.datasets().count(),
            system.registry.datasets().count()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_replaces_existing_file_atomically() {
        let system = OfflineTrainer::tiny().train_full();
        let dir = unique_dir("atomic");
        let path = dir.join("system.json");
        std::fs::write(&path, b"stale garbage from a previous run").unwrap();
        system.save(&path).unwrap();
        let loaded = crate::offline::PredictDdl::load(&path).unwrap();
        assert_eq!(
            loaded.registry.datasets().count(),
            system.registry.datasets().count()
        );
        assert!(
            !dir.join("system.json.tmp").exists(),
            "staging tempfile renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
