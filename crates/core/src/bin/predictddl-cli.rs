//! `predictddl` command-line interface.
//!
//! ```text
//! predictddl-cli train --out system.json [--datasets cifar10,tiny-imagenet]
//! predictddl-cli train --registry ./registry [--label nightly]
//! predictddl-cli predict --system system.json --model resnet50
//!                        --dataset cifar10 --servers 8 [--gpu|--cpu]
//!                        [--batch 128] [--epochs 10]
//! predictddl-cli serve --system system.json --addr 127.0.0.1:7077
//! predictddl-cli serve --registry ./registry [--watch-registry 2000]
//! predictddl-cli reload --addr 127.0.0.1:7077 [--version N]
//! predictddl-cli observe --addr 127.0.0.1:7077 --model resnet50
//!                        --dataset cifar10 --servers 8 --actual-secs 812.5
//! predictddl-cli stats --addr 127.0.0.1:7077
//! predictddl-cli trace --addr 127.0.0.1:7077 [--json]
//! predictddl-cli metrics --addr 127.0.0.1:7077
//! predictddl-cli models
//! ```
//!
//! Every command accepts `--metrics-dump` to print the local telemetry
//! snapshot (JSON) to stderr on exit; `serve` always prints its final
//! snapshot when shut down (Ctrl-C / SIGTERM). Set `PDDL_LOG` (e.g.
//! `PDDL_LOG=info,controller=debug`) for structured JSON logs on stderr.

use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{TraceConfig, Workload};
use pddl_registry::Registry;
use pddl_tensor::Precision;
use predictddl::{
    load_checkpoint, save_checkpoint, spawn_watcher, Controller, ControllerClient, LiveSystem,
    OfflineTrainer, PredictDdl, PredictionRequest, ReloadManager, ServeConfig,
};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(rest);
    let result = match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        "train" => cmd_train(&flags),
        "predict" => cmd_predict(&flags),
        "serve" => cmd_serve(&flags),
        "reload" => cmd_reload(&flags),
        "observe" => cmd_observe(&flags),
        "stats" => cmd_stats(&flags),
        "trace" => cmd_trace(&flags),
        "metrics" => cmd_metrics(&flags),
        "models" => cmd_models(),
        _ => {
            eprintln!("unknown command '{cmd}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if flags.contains_key("metrics-dump") {
        eprintln!("{}", pddl_telemetry::snapshot_json());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  predictddl-cli train   --out <file> | --registry <dir> [--label <text>]
                         [--datasets cifar10,tiny-imagenet] [--retain N]
  predictddl-cli predict --system <file> --model <name> --dataset <name>
                         --servers <n> [--gpu|--cpu] [--batch 128] [--epochs 10]
  predictddl-cli serve   --system <file> | --registry <dir>
                         [--addr 127.0.0.1:7077] [--watch-registry <ms>]
                         [--precision f32|bf16] [--retain N] [--workers N]
                         [--queue-depth N] [--max-conns N] [--deadline-ms N]
                         [--trace-sample N] [--trace-slow-ms N] [--shard-id N]
                         [--fault-plan 'seed=42,delay=0.05:5,reset=0.02']
  predictddl-cli reload  [--addr 127.0.0.1:7077] [--version N] [--timeout-ms 5000]
  predictddl-cli observe [--addr 127.0.0.1:7077] --model <name> --dataset <name>
                         --servers <n> --actual-secs <secs> [--gpu|--cpu]
                         [--batch 128] [--epochs 10] [--timeout-ms 5000]
  predictddl-cli stats   [--addr 127.0.0.1:7077] [--timeout-ms 5000]
  predictddl-cli trace   [--addr 127.0.0.1:7077] [--timeout-ms 5000] [--json]
  predictddl-cli metrics [--addr 127.0.0.1:7077] [--timeout-ms 5000]
  predictddl-cli models
  predictddl-cli help | --help | -h
options:
  --metrics-dump   print the local telemetry snapshot (JSON) to stderr on exit
  --registry       train: publish the trained system as a new checkpoint
                   version; serve: serve the newest verifiable version and
                   answer {\"op\":\"reload\"} with validated hot swaps
  --label          train: operator label stamped into the version manifest
  --retain         registry retention width: keep the newest N versions plus
                   pinned/live ones (default 4; 0 keeps everything)
  --watch-registry serve: poll the registry every <ms> and hot-swap to new
                   versions automatically (requires --registry)
  --precision      serve: inference weight storage — f32 (default) or bf16
                   (frozen bf16 panels on the GHN embed path; training and
                   checkpoints always keep f32 masters). Applied to the
                   initial system and to every hot-reloaded candidate
  --version        reload: target version (default: the registry's latest)
  --actual-secs    observe: the measured wall-clock training time being fed
                   back into the controller's drift detector
  --workers        serve: worker threads in the request pool (default: cores)
  --queue-depth    serve: admission queue slots before load shedding (256)
  --max-conns      serve: simultaneous connection cap (1024)
  --deadline-ms    serve: queue-wait deadline before a request is expired (5000)
  --trace-sample   serve: trace 1-in-N headerless requests (0 disables, 1 all)
  --trace-slow-ms  serve: retain any trace slower than N ms (0 = off)
  --shard-id       serve: echo this shard id in stats/envelope replies
                   (set when the controller is one shard behind pddl-router)
  --json           trace: print the raw dump document instead of a waterfall
  --fault-plan     inject deterministic wire faults (sets PDDL_FAULT_PLAN;
                   see the pddl-faults crate and TESTING.md for the spec)
  PDDL_LOG=<spec>  structured JSON logs, e.g. PDDL_LOG=info,controller=debug
  PDDL_FAULT_PLAN  same as --fault-plan, honored by serve and the collector";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn required<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required flag --{key}"))
}

/// Parses the `--retain` retention width (default 4).
fn retain_from_flags(flags: &Flags) -> Result<usize, String> {
    flags
        .get("retain")
        .map_or(Ok(4), |s| s.parse())
        .map_err(|_| "--retain must be an integer".to_string())
}

/// Opens (creating if needed) the checkpoint registry at `root`, printing
/// the recovery report when open() had to repair anything.
fn open_registry(root: &str, retain: usize) -> Result<Registry, String> {
    let (registry, report) = Registry::open(root, retain)
        .map_err(|e| format!("open registry {root}: {e}"))?;
    for (version, reason) in &report.quarantined {
        eprintln!("registry: quarantined unverifiable v{version} ({reason})");
    }
    if report.swept_tmp > 0 {
        eprintln!("registry: swept {} stray tempfile(s)", report.swept_tmp);
    }
    Ok(registry)
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let out = flags.get("out");
    let registry_root = flags.get("registry");
    if out.is_none() && registry_root.is_none() {
        return Err("train needs --out <file> and/or --registry <dir>".to_string());
    }
    let mut trainer = OfflineTrainer::default();
    if let Some(datasets) = flags.get("datasets") {
        let mut cfg = TraceConfig::default();
        cfg.dataset_clusters
            .retain(|(d, _)| datasets.split(',').any(|x| x.eq_ignore_ascii_case(d)));
        if cfg.dataset_clusters.is_empty() {
            return Err(format!("no known dataset in '{datasets}'"));
        }
        trainer.trace = cfg;
    }
    eprintln!("collecting trace and training (GHN + regressor); this takes minutes ...");
    let system = trainer.train_full();
    eprintln!(
        "trained: GHN {:.1}s, embeddings {:.1}s, fit {:.2}s",
        system.train_cost.ghn_secs, system.train_cost.embed_secs, system.train_cost.fit_secs
    );
    if let Some(out) = out {
        system.save(out).map_err(|e| e.to_string())?;
        eprintln!("saved system to {out}");
    }
    if let Some(root) = registry_root {
        let registry = open_registry(root, retain_from_flags(flags)?)?;
        let label = flags.get("label").map_or("train", |s| s.as_str());
        let version = save_checkpoint(&registry, &system, label).map_err(|e| e.to_string())?;
        eprintln!("published checkpoint v{version} to {root}");
        eprintln!("hot-swap a running controller with: predictddl-cli reload --version {version}");
    }
    Ok(())
}

fn cluster_from_flags(flags: &Flags) -> Result<ClusterState, String> {
    let servers: usize = required(flags, "servers")?
        .parse()
        .map_err(|_| "--servers must be an integer".to_string())?;
    let class = if flags.contains_key("cpu") {
        ServerClass::CpuE5_2630
    } else {
        ServerClass::GpuP100
    };
    Ok(ClusterState::homogeneous(class, servers))
}

fn cmd_predict(flags: &Flags) -> Result<(), String> {
    let system = PredictDdl::load(required(flags, "system")?).map_err(|e| e.to_string())?;
    let model = required(flags, "model")?;
    let dataset = required(flags, "dataset")?;
    let batch: usize = flags.get("batch").map_or(Ok(128), |s| s.parse()).map_err(|_| "--batch must be an integer")?;
    let epochs: usize = flags.get("epochs").map_or(Ok(10), |s| s.parse()).map_err(|_| "--epochs must be an integer")?;
    let cluster = cluster_from_flags(flags)?;
    let req = PredictionRequest::zoo(Workload::new(model, dataset, batch, epochs), cluster);
    let pred = system.predict(&req).map_err(|e| e.to_string())?;
    println!("predicted training time: {:.1} s", pred.seconds);
    if let Some((name, sim)) = pred.nearest_architecture {
        println!("closest known architecture: {name} (cosine {sim:.3})");
    }
    println!("inference latency: {:.3} ms", pred.inference_secs * 1e3);
    Ok(())
}

/// Set by the SIGINT/SIGTERM handler; polled by the serve loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_shutdown_handler() {
    // std already links libc; declaring `signal` directly avoids a libc
    // crate dependency. The handler only does an atomic store, which is
    // async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    if let Some(spec) = flags.get("fault-plan") {
        // Validate before serving so a typo fails fast with the parser's
        // message instead of a generic bind error.
        pddl_faults::FaultPlan::parse(spec)?;
        std::env::set_var(pddl_faults::FAULT_PLAN_ENV, spec);
    }
    let addr = flags.get("addr").map_or("127.0.0.1:7077", |s| s.as_str());
    let mut config = ServeConfig::default();
    if let Some(v) = flags.get("workers") {
        config.workers = v.parse().map_err(|_| "--workers must be an integer")?;
    }
    if let Some(v) = flags.get("queue-depth") {
        config.queue_depth = v.parse().map_err(|_| "--queue-depth must be an integer")?;
    }
    if let Some(v) = flags.get("max-conns") {
        config.max_connections = v.parse().map_err(|_| "--max-conns must be an integer")?;
    }
    if let Some(v) = flags.get("deadline-ms") {
        let ms: u64 = v.parse().map_err(|_| "--deadline-ms must be an integer")?;
        config.request_deadline = Duration::from_millis(ms);
    }
    if let Some(v) = flags.get("trace-sample") {
        config.trace_sample = v.parse().map_err(|_| "--trace-sample must be an integer")?;
    }
    if let Some(v) = flags.get("trace-slow-ms") {
        config.trace_slow_ms = v.parse().map_err(|_| "--trace-slow-ms must be an integer")?;
    }
    if let Some(v) = flags.get("shard-id") {
        config.shard_id = Some(v.parse().map_err(|_| "--shard-id must be an integer")?);
    }
    let precision = match flags.get("precision") {
        None => Precision::F32,
        Some(s) => Precision::parse(s)
            .ok_or_else(|| format!("--precision must be f32 or bf16, got '{s}'"))?,
    };
    // Resolve the initial system: from the checkpoint registry (newest
    // verifiable version; a --system file is published as the first
    // version when the registry is empty), or from a plain --system file.
    let mut watcher = None;
    let watcher_stop = Arc::new(AtomicBool::new(false));
    let controller = if let Some(root) = flags.get("registry") {
        let registry = open_registry(root, retain_from_flags(flags)?)?;
        let (mut system, version) = match registry.latest() {
            Some(v) => {
                let sys = load_checkpoint(&registry, v).map_err(|e| e.to_string())?;
                eprintln!("loaded checkpoint v{v} from {root}");
                (sys, v)
            }
            None => {
                let path = flags.get("system").ok_or_else(|| {
                    format!("registry {root} is empty; seed it with --system <file> or `train --registry`")
                })?;
                let sys = PredictDdl::load(path).map_err(|e| e.to_string())?;
                let v = save_checkpoint(&registry, &sys, "serve-seed")
                    .map_err(|e| e.to_string())?;
                eprintln!("seeded registry with {path} as v{v}");
                (sys, v)
            }
        };
        system.set_precision(precision);
        let live = Arc::new(LiveSystem::new(system, version));
        let manager = ReloadManager::with_precision(
            registry,
            Arc::clone(&live),
            predictddl::reload::DEFAULT_PROBE_TOLERANCE,
            precision,
        );
        if let Some(ms) = flags.get("watch-registry") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| "--watch-registry must be an interval in ms")?;
            watcher = Some(spawn_watcher(
                Arc::clone(&manager),
                Duration::from_millis(ms.max(1)),
                Arc::clone(&watcher_stop),
            ));
            eprintln!("watching registry for new versions every {ms} ms");
        }
        Controller::serve_live(addr, live, config, Some(manager)).map_err(|e| e.to_string())?
    } else {
        if flags.contains_key("watch-registry") {
            return Err("--watch-registry requires --registry".to_string());
        }
        let mut system = PredictDdl::load(required(flags, "system")?).map_err(|e| e.to_string())?;
        system.set_precision(precision);
        Controller::serve_with(addr, system, config).map_err(|e| e.to_string())?
    };
    println!(
        "PredictDDL controller listening on {} ({} workers, queue depth {}, \
         kernels {}, precision {})",
        controller.addr(),
        config.workers.max(1),
        config.queue_depth.max(1),
        pddl_tensor::backend().name(),
        precision.as_str(),
    );
    println!(
        "protocol: one JSON PredictionRequest per line (a JSON array is a \
         pooled batch); {{\"op\":\"stats\"}}, {{\"op\":\"trace\"}}, \
         {{\"op\":\"metrics\"}} for observability; {{\"op\":\"reload\"}} \
         for validated hot swaps; {{\"op\":\"observe\"}} to feed measured \
         runtimes back into drift detection; Ctrl-C to stop"
    );
    install_shutdown_handler();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(200));
    }
    watcher_stop.store(true, Ordering::SeqCst);
    if let Some(handle) = watcher.take() {
        let _ = handle.join();
    }
    eprintln!(
        "shutting down after {} requests; final metrics snapshot:",
        controller.requests_served()
    );
    eprintln!("{}", pddl_telemetry::snapshot_json());
    // Graceful-drain trace dump: whatever the flight recorder retained
    // (shed / errored / slow traces) is the last chance to see it.
    let rec = pddl_telemetry::trace::flight_recorder();
    if !rec.retained().is_empty() || rec.suppressed() > 0 {
        eprintln!("retained traces at drain:");
        eprintln!("{}", rec.retained_json());
    }
    Ok(())
}

/// Shared connect logic for the read-only control commands (`stats`,
/// `trace`, `metrics`).
fn control_client(flags: &Flags) -> Result<ControllerClient, String> {
    let addr = flags.get("addr").map_or("127.0.0.1:7077", |s| s.as_str());
    let timeout_ms: u64 = flags
        .get("timeout-ms")
        .map_or(Ok(5000), |s| s.parse())
        .map_err(|_| "--timeout-ms must be an integer")?;
    let sock: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("--addr '{addr}' is not a socket address"))?;
    ControllerClient::connect_with_timeout(sock, Duration::from_millis(timeout_ms))
        .map_err(|e| format!("connect to {addr}: {e}"))
}

fn cmd_reload(flags: &Flags) -> Result<(), String> {
    let version = flags
        .get("version")
        .map(|v| v.parse::<u64>())
        .transpose()
        .map_err(|_| "--version must be an integer")?;
    let mut client = control_client(flags)?;
    match client.reload(version).map_err(|e| e.to_string())? {
        Ok(reply) if reply.version == reply.previous => {
            println!(
                "version {} already live (epoch {})",
                reply.version, reply.epoch
            );
            Ok(())
        }
        Ok(reply) => {
            println!(
                "reloaded: v{} now live (was v{}, epoch {})",
                reply.version, reply.previous, reply.epoch
            );
            Ok(())
        }
        Err(reason) => Err(format!(
            "reload rejected: {reason} (the previous model keeps serving)"
        )),
    }
}

fn cmd_observe(flags: &Flags) -> Result<(), String> {
    let model = required(flags, "model")?;
    let dataset = required(flags, "dataset")?;
    let batch: usize = flags.get("batch").map_or(Ok(128), |s| s.parse()).map_err(|_| "--batch must be an integer")?;
    let epochs: usize = flags.get("epochs").map_or(Ok(10), |s| s.parse()).map_err(|_| "--epochs must be an integer")?;
    let actual_secs: f64 = required(flags, "actual-secs")?
        .parse()
        .map_err(|_| "--actual-secs must be a number")?;
    let cluster = cluster_from_flags(flags)?;
    let req = PredictionRequest::zoo(Workload::new(model, dataset, batch, epochs), cluster);
    let mut client = control_client(flags)?;
    match client.observe(&req, actual_secs).map_err(|e| e.to_string())? {
        Ok(reply) => {
            println!(
                "observed: {} observation(s) total, residual z = {:+.2}{}",
                reply.observations,
                reply.residual_z,
                if reply.drifted { " — DRIFT detected, model refit" } else { "" },
            );
            if reply.drift_events > 0 && !reply.drifted {
                println!("{} drift event(s) fired so far", reply.drift_events);
            }
            Ok(())
        }
        Err(reason) => Err(format!("observation rejected: {reason}")),
    }
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let snapshot = control_client(flags)?.stats().map_err(|e| e.to_string())?;
    println!("{}", snapshot.to_json());
    Ok(())
}

fn cmd_trace(flags: &Flags) -> Result<(), String> {
    let dump = control_client(flags)?.trace_dump().map_err(|e| e.to_string())?;
    if flags.contains_key("json") {
        println!("{}", dump.to_json());
        return Ok(());
    }
    let traces = pddl_telemetry::trace::parse_trace_dump(&dump)?;
    let suppressed = dump.get("suppressed").and_then(|v| v.as_u64()).unwrap_or(0);
    if traces.is_empty() {
        println!("no retained traces ({suppressed} suppressed)");
        return Ok(());
    }
    print!("{}", pddl_telemetry::trace::render_waterfall(&traces));
    println!(
        "{} retained trace(s), {} suppressed since last dump",
        traces.len(),
        suppressed
    );
    Ok(())
}

fn cmd_metrics(flags: &Flags) -> Result<(), String> {
    let text = control_client(flags)?.metrics_text().map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

fn cmd_models() -> Result<(), String> {
    println!("model zoo ({} architectures):", pddl_zoo::model_names().len());
    for name in pddl_zoo::model_names() {
        println!("  {name}");
    }
    println!("datasets: cifar10, tiny-imagenet");
    Ok(())
}
