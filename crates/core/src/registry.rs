//! Registry of pretrained GHN models, keyed by dataset.
//!
//! §III-D: "a new GHN model needs to be trained to generate quality
//! embeddings if the dataset changes ... In contrast, a change in dataset
//! size or adding new samples does not require retraining." The registry is
//! exactly that policy: one GHN per dataset name, trained offline.

use pddl_ghn::{Ghn, GhnConfig, GhnTrainer, SynthGenerator, TrainReport};
use pddl_ghn::train::TrainConfig;
use pddl_tensor::{Precision, Rng};
use pddl_zoo::dataset::dataset_by_name;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One GHN per dataset.
#[derive(Clone, Serialize, Deserialize)]
pub struct GhnRegistry {
    ghns: HashMap<String, Ghn>,
    /// GHN architecture used for every dataset's model.
    pub ghn_config: GhnConfig,
    /// Meta-training schedule used for every dataset's model.
    pub train_config: TrainConfig,
    seed: u64,
    /// Inference storage precision applied to every resident GHN. Never
    /// serialized: checkpoints carry f32 masters, and the manifest's
    /// `precision` field tells the loader whether to re-freeze.
    #[serde(skip, default)]
    precision: Precision,
}

impl GhnRegistry {
    /// Creates an empty registry; GHNs are added by [`Self::train_for_dataset`].
    pub fn new(ghn_config: GhnConfig, train_config: TrainConfig, seed: u64) -> Self {
        Self {
            ghns: HashMap::new(),
            ghn_config,
            train_config,
            seed,
            precision: Precision::F32,
        }
    }

    /// Selects the inference storage precision for every resident GHN
    /// (and any inserted later). `Bf16` freezes quantized weight panels
    /// for the serving path; `F32` thaws back to bit-exact full
    /// precision. Training always runs on the f32 masters regardless.
    pub fn set_precision(&mut self, p: Precision) {
        self.precision = p;
        for ghn in self.ghns.values_mut() {
            ghn.set_precision(p);
        }
    }

    /// The inference storage precision resident GHNs serve at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Does a pretrained GHN exist for this dataset?
    pub fn has(&self, dataset: &str) -> bool {
        self.ghns.contains_key(&normalize(dataset))
    }

    /// The pretrained GHN for `dataset`, if one exists (case-insensitive).
    pub fn get(&self, dataset: &str) -> Option<&Ghn> {
        self.ghns.get(&normalize(dataset))
    }

    /// Names of every dataset with a pretrained GHN.
    pub fn datasets(&self) -> impl Iterator<Item = &str> {
        self.ghns.keys().map(|s| s.as_str())
    }

    /// Offline-trains a GHN for the dataset (step ④ of Fig. 7 / Fig. 8) and
    /// stores it. Returns the training report. Errors if the dataset has no
    /// descriptor (nothing to condition the synthetic generator on).
    pub fn train_for_dataset(&mut self, dataset: &str) -> Result<TrainReport, String> {
        let (key, ghn, report) =
            Self::train_one(self.ghn_config, self.train_config, self.seed, dataset)?;
        self.ghns.insert(key, ghn);
        Ok(report)
    }

    /// Trains one dataset's GHN without touching any registry state — the
    /// building block the parallel offline trainer fans out over datasets
    /// (each worker trains independently, results are [`Self::insert`]ed in
    /// deterministic order afterwards). The RNG seed is derived from
    /// `seed` and the normalized dataset name, so a pooled run produces
    /// bit-identical GHNs to a serial one.
    pub fn train_one(
        ghn_config: GhnConfig,
        train_config: TrainConfig,
        seed: u64,
        dataset: &str,
    ) -> Result<(String, Ghn, TrainReport), String> {
        let key = normalize(dataset);
        let desc = dataset_by_name(&key)
            .ok_or_else(|| format!("no descriptor for dataset '{dataset}'"))?;
        let mut rng = Rng::new(seed ^ fnv(&key));
        let mut ghn = Ghn::new(ghn_config, &mut rng);
        let mut gen = SynthGenerator::new(desc.clone(), seed ^ fnv(&key) ^ 0x6e6e);
        let report = GhnTrainer::new(train_config).train(&mut ghn, &mut gen);
        Ok((key, ghn, report))
    }

    /// Inserts an externally trained GHN (tests, persistence), aligning it
    /// to the registry's serving precision.
    pub fn insert(&mut self, dataset: &str, mut ghn: Ghn) {
        ghn.set_precision(self.precision);
        self.ghns.insert(normalize(dataset), ghn);
    }
}

fn normalize(dataset: &str) -> String {
    dataset.to_ascii_lowercase()
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_registry() -> GhnRegistry {
        GhnRegistry::new(GhnConfig::tiny(), TrainConfig::tiny(), 1)
    }

    #[test]
    fn empty_registry_has_nothing() {
        let r = tiny_registry();
        assert!(!r.has("cifar10"));
        assert!(r.get("cifar10").is_none());
    }

    #[test]
    fn training_registers_dataset() {
        let mut r = tiny_registry();
        let report = r.train_for_dataset("cifar10").unwrap();
        assert!(report.final_loss <= report.initial_loss);
        assert!(r.has("cifar10"));
        assert!(r.has("CIFAR10") || r.has("cifar10")); // case-insensitive key
        assert!(!r.has("tiny-imagenet"));
    }

    #[test]
    fn unknown_dataset_errors() {
        let mut r = tiny_registry();
        assert!(r.train_for_dataset("mnist-3d").is_err());
    }

    #[test]
    fn case_insensitive_lookup() {
        let mut r = tiny_registry();
        r.train_for_dataset("CIFAR10").unwrap();
        assert!(r.has("cifar10"));
        assert!(r.get("Cifar10").is_some());
    }
}
