//! Offline training (Fig. 8) and the assembled PredictDDL system.
//!
//! The offline path: train a GHN per dataset → embed every workload's
//! computational graph → join embeddings with cluster descriptions and
//! measured training times → fit the Inference Engine's regression model.
//! Afterwards the system predicts *any* architecture on the trained
//! datasets without retraining (the paper's headline reusability property).

use crate::embeddings::EmbeddingsGenerator;
use crate::inference::{EngineSample, InferenceConfig, InferenceEngine};
use crate::registry::GhnRegistry;
use crate::request::{Prediction, PredictionRequest, RequestError};
use crate::task_checker::{TaskChecker, TaskDecision};
use pddl_cluster::ClusterState;
use pddl_ddlsim::{generate_trace, TraceConfig, TraceRecord, Workload};
use pddl_ghn::GhnConfig;
use pddl_ghn::train::TrainConfig;
use pddl_regress::{Kernel, Regression};
use pddl_telemetry::{tlog, Counter, Histogram, Level, Span};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

/// Inference-path metric handles, resolved once (the predict path stays
/// lock-free).
struct InferenceMetrics {
    predictions: &'static Counter,
    embed_latency: &'static Histogram,
    regress_latency: &'static Histogram,
}

fn inference_metrics() -> &'static InferenceMetrics {
    static METRICS: OnceLock<InferenceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| InferenceMetrics {
        predictions: pddl_telemetry::counter("inference.predictions"),
        embed_latency: pddl_telemetry::histogram("inference.embed_latency"),
        regress_latency: pddl_telemetry::histogram("inference.regress_latency"),
    })
}

/// Serializable choice of regression model (the `Regression` enum itself
/// holds fitted state and is not `Clone`).
#[derive(Clone, Copy, Debug)]
pub enum RegressionSpec {
    Linear,
    /// Second-order polynomial with full pairwise interactions.
    Polynomial { degree: usize, lambda: f32 },
    /// Second-order polynomial with squares only — the default over the
    /// wide embedding feature space (full interactions would exceed the
    /// trace's sample count).
    PolynomialSquares { degree: usize, lambda: f32 },
    Svr { rbf_gamma: Option<f32>, c: f32, epsilon: f32 },
    Mlp { hidden: usize, epochs: usize, lr: f32 },
}

impl RegressionSpec {
    pub fn build(&self, seed: u64) -> Regression {
        match *self {
            RegressionSpec::Linear => Regression::linear(),
            RegressionSpec::Polynomial { degree, lambda } => Regression::polynomial(degree, lambda),
            RegressionSpec::PolynomialSquares { degree, lambda } => {
                Regression::polynomial_squares(degree, lambda)
            }
            RegressionSpec::Svr { rbf_gamma, c, epsilon } => {
                let kernel = match rbf_gamma {
                    Some(gamma) => Kernel::Rbf { gamma },
                    None => Kernel::Linear,
                };
                Regression::svr(kernel, c, epsilon)
            }
            RegressionSpec::Mlp { hidden, epochs, lr } => Regression::mlp(hidden, epochs, lr, seed),
        }
    }
}

/// Offline-training configuration.
pub struct OfflineTrainer {
    pub ghn_config: GhnConfig,
    pub ghn_train: TrainConfig,
    pub trace: TraceConfig,
    pub regression: RegressionSpec,
    pub log_target: bool,
    pub seed: u64,
}

impl Default for OfflineTrainer {
    fn default() -> Self {
        Self {
            ghn_config: GhnConfig::default(),
            ghn_train: TrainConfig::default(),
            trace: TraceConfig::default(),
            regression: RegressionSpec::Polynomial { degree: 2, lambda: 1e-2 },
            log_target: true,
            seed: 0xACC0,
        }
    }
}

impl OfflineTrainer {
    /// Fast configuration for tests: tiny GHN, tiny trace.
    pub fn tiny() -> Self {
        Self {
            ghn_config: GhnConfig::tiny(),
            ghn_train: TrainConfig::tiny(),
            trace: TraceConfig::small(),
            regression: RegressionSpec::Polynomial { degree: 2, lambda: 1e-3 },
            log_target: true,
            seed: 7,
        }
    }

    /// Full pipeline: generate the trace with the simulator, then train.
    pub fn train_full(&self) -> PredictDdl {
        let records = generate_trace(&self.trace);
        self.train_from_records(&records)
    }

    /// Trains GHNs (per dataset present in the records) and the inference
    /// engine from an explicit trace — the entry point for the experiment
    /// harness, which controls train/test splits itself.
    pub fn train_from_records(&self, records: &[TraceRecord]) -> PredictDdl {
        let registry = GhnRegistry::new(self.ghn_config, self.ghn_train, self.seed);
        self.train_from_records_reusing(records, registry)
    }

    /// Like [`Self::train_from_records`], but keeps the GHNs already in
    /// `registry` — only datasets without a pretrained GHN are trained.
    /// This is the §III-G policy: GHNs are per-dataset assets and never
    /// retrained for cluster or architecture changes.
    pub fn train_from_records_reusing(
        &self,
        records: &[TraceRecord],
        mut registry: GhnRegistry,
    ) -> PredictDdl {
        assert!(!records.is_empty(), "empty training trace");
        let t0 = Instant::now();
        let ghn_span = Span::enter("offline.train_ghn");
        let mut datasets: Vec<String> = records
            .iter()
            .map(|r| r.workload.dataset.to_ascii_lowercase())
            .collect();
        datasets.sort();
        datasets.dedup();
        for ds in &datasets {
            if !registry.has(ds) {
                registry
                    .train_for_dataset(ds)
                    .unwrap_or_else(|e| panic!("GHN training failed for {ds}: {e}"));
            }
        }
        ghn_span.exit();
        let ghn_secs = t0.elapsed().as_secs_f64();

        // Embed each distinct (model, dataset) once.
        let t1 = Instant::now();
        let embed_span = Span::enter("offline.embed_trace");
        let mut embeddings = EmbeddingsGenerator::new();
        let mut cache: HashMap<(String, String), Vec<f32>> = HashMap::new();
        for r in records {
            let key = (r.workload.model.clone(), r.workload.dataset.to_ascii_lowercase());
            if let std::collections::hash_map::Entry::Vacant(slot) = cache.entry(key.clone()) {
                let graph = r
                    .workload
                    .build_graph()
                    .unwrap_or_else(|| panic!("trace references unknown model {}", r.workload.model));
                let emb = embeddings
                    .embed_and_record(&registry, &key.1, &graph)
                    .expect("GHN trained above");
                slot.insert(emb);
            }
        }
        embed_span.exit();
        let embed_secs = t1.elapsed().as_secs_f64();

        // Assemble engine samples and fit the regression.
        let t2 = Instant::now();
        let fit_span = Span::enter("offline.fit_regressor");
        let samples: Vec<EngineSample> = records
            .iter()
            .map(|r| {
                let key = (r.workload.model.clone(), r.workload.dataset.to_ascii_lowercase());
                EngineSample {
                    embedding: cache[&key].clone(),
                    cluster: r.cluster(),
                    batch_size: r.workload.batch_size,
                    epochs: r.workload.epochs,
                    dataset: r.workload.dataset.clone(),
                    time_secs: r.time_secs,
                }
            })
            .collect();
        let mut engine = InferenceEngine::new(InferenceConfig {
            regression: self.regression.build(self.seed),
            log_target: self.log_target,
        });
        engine.fit(&samples);
        fit_span.exit();
        let fit_secs = t2.elapsed().as_secs_f64();
        tlog!(
            Level::Info,
            "offline",
            "trained",
            datasets = datasets.len(),
            samples = samples.len(),
            ghn_secs = ghn_secs,
            embed_secs = embed_secs,
            fit_secs = fit_secs,
        );

        PredictDdl {
            registry,
            embeddings,
            engine,
            train_cost: TrainCost { ghn_secs, embed_secs, fit_secs },
            records: records.to_vec(),
        }
    }

    /// Folds a **new dataset** into an existing system (the Fig. 8 offline
    /// retraining loop, triggered by the Task Checker's
    /// `OfflineTrainingRequired` branch): collects a trace for the dataset
    /// with the simulator, trains its GHN, and refits the regression on the
    /// union of old and new measurements. Existing GHNs are untouched —
    /// "the GHN-2 model ... will not require retraining when the same
    /// workload is executed on a different cluster" (§III-G).
    pub fn extend_with_dataset(&self, system: &mut PredictDdl, dataset: &str) -> Result<(), String> {
        let key = dataset.to_ascii_lowercase();
        if system.registry.has(&key) {
            return Ok(()); // nothing to do
        }
        // Collect the new dataset's trace (keep every other knob from the
        // trainer's trace config). Prefer this trainer's dataset→cluster
        // mapping; fall back to the default mapping for datasets the
        // trainer has never seen.
        let mut cfg = self.trace.clone();
        cfg.dataset_clusters
            .retain(|(d, _)| d.eq_ignore_ascii_case(&key));
        if cfg.dataset_clusters.is_empty() {
            cfg.dataset_clusters = TraceConfig::default()
                .dataset_clusters
                .into_iter()
                .filter(|(d, _)| d.eq_ignore_ascii_case(&key))
                .collect();
        }
        if cfg.dataset_clusters.is_empty() {
            return Err(format!("no cluster mapping for dataset '{dataset}'"));
        }
        let new_records = generate_trace(&cfg);
        if new_records.is_empty() {
            return Err(format!("trace collection produced nothing for '{dataset}'"));
        }
        let mut all = system.records.clone();
        all.extend(new_records);
        // Refit on the union, carrying the existing GHNs over so only the
        // new dataset's GHN is trained.
        let registry = std::mem::replace(
            &mut system.registry,
            GhnRegistry::new(self.ghn_config, self.ghn_train, self.seed),
        );
        *system = self.train_from_records_reusing(&all, registry);
        Ok(())
    }
}

/// Wall-clock breakdown of offline training (reported in Fig. 13).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TrainCost {
    pub ghn_secs: f64,
    pub embed_secs: f64,
    pub fit_secs: f64,
}

impl TrainCost {
    pub fn total(&self) -> f64 {
        self.ghn_secs + self.embed_secs + self.fit_secs
    }
}

/// The assembled, trained PredictDDL system.
#[derive(Serialize, Deserialize)]
pub struct PredictDdl {
    pub registry: GhnRegistry,
    pub embeddings: EmbeddingsGenerator,
    pub engine: InferenceEngine,
    pub train_cost: TrainCost,
    /// The trace the engine was fitted on, kept so a new dataset can be
    /// folded in later (§III-G: offline retraining "when a new dataset is
    /// introduced") without re-collecting the old measurements.
    pub records: Vec<TraceRecord>,
}

impl PredictDdl {
    /// Handles one prediction request end-to-end: Task Checker → Embeddings
    /// Generator → Inference Engine (steps ③–⑥ of Fig. 7).
    pub fn predict(&self, req: &PredictionRequest) -> Result<Prediction, RequestError> {
        let graph = match TaskChecker::check(req, &self.registry)? {
            TaskDecision::Proceed(g) => g,
            TaskDecision::OfflineTrainingRequired { dataset, .. } => {
                return Err(RequestError::NeedsOfflineTraining { dataset })
            }
        };
        let m = inference_metrics();
        let t0 = Instant::now();
        let embed_timer = m.embed_latency.start_timer();
        let embedding = self
            .embeddings
            .embed(&self.registry, &req.dataset, &graph)
            .expect("registry checked by TaskChecker");
        embed_timer.observe();
        let regress_timer = m.regress_latency.start_timer();
        let seconds = self.engine.predict(
            &embedding,
            &req.cluster,
            req.batch_size,
            req.epochs,
            &req.dataset,
        );
        regress_timer.observe();
        m.predictions.inc();
        let nearest = self.embeddings.nearest(&req.dataset, &embedding);
        Ok(Prediction {
            seconds,
            nearest_architecture: nearest,
            inference_secs: t0.elapsed().as_secs_f64(),
        })
    }

    /// Convenience: predict a zoo workload on a cluster.
    pub fn predict_workload(
        &self,
        w: &Workload,
        cluster: &ClusterState,
    ) -> Result<Prediction, RequestError> {
        self.predict(&PredictionRequest::zoo(w.clone(), cluster.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_cluster::ServerClass;
    use pddl_ddlsim::{SimConfig, Simulator};

    #[test]
    fn tiny_pipeline_trains_and_predicts() {
        let system = OfflineTrainer::tiny().train_full();
        let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
        let w = Workload::new("resnet18", "cifar10", 128, 2);
        let pred = system.predict_workload(&w, &cluster).unwrap();
        assert!(pred.seconds > 0.0 && pred.seconds.is_finite());
        assert!(pred.nearest_architecture.is_some());
        assert!(pred.inference_secs < 5.0);
    }

    #[test]
    fn tiny_pipeline_accuracy_in_sample_family() {
        // Train on the small trace and check predictions for an in-trace
        // configuration are within a factor of 2 of the simulator.
        let trainer = OfflineTrainer::tiny();
        let system = trainer.train_full();
        let sim = Simulator::new(SimConfig::default());
        let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
        let w = Workload::new("vgg16", "cifar10", 128, 2);
        let actual = sim.expected_time(&w, &cluster).unwrap();
        let pred = system.predict_workload(&w, &cluster).unwrap().seconds;
        let ratio = pred / actual;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn unseen_dataset_requires_offline_training() {
        let system = OfflineTrainer::tiny().train_full(); // trace covers cifar10 only
        let cluster = ClusterState::homogeneous(ServerClass::CpuE5_2630, 2);
        let w = Workload::new("resnet18", "tiny-imagenet", 128, 2);
        assert!(matches!(
            system.predict_workload(&w, &cluster),
            Err(RequestError::NeedsOfflineTraining { .. })
        ));
    }

    #[test]
    fn train_cost_breakdown_recorded() {
        let system = OfflineTrainer::tiny().train_full();
        assert!(system.train_cost.ghn_secs > 0.0);
        assert!(system.train_cost.total() >= system.train_cost.ghn_secs);
    }
}
