//! Offline training (Fig. 8) and the assembled PredictDDL system.
//!
//! The offline path: train a GHN per dataset → embed every workload's
//! computational graph → join embeddings with cluster descriptions and
//! measured training times → fit the Inference Engine's regression model.
//! Afterwards the system predicts *any* architecture on the trained
//! datasets without retraining (the paper's headline reusability property).

use crate::embeddings::{EmbeddingCache, EmbeddingsGenerator};
use crate::inference::{EngineSample, InferenceConfig, InferenceEngine};
use crate::registry::GhnRegistry;
use crate::request::{Prediction, PredictionRequest, RequestError};
use crate::task_checker::{TaskChecker, TaskDecision};
use pddl_cluster::ClusterState;
use pddl_ddlsim::{generate_trace, TraceConfig, TraceRecord, Workload};
use pddl_ghn::GhnConfig;
use pddl_ghn::train::TrainConfig;
use pddl_regress::{Kernel, Regression};
use pddl_telemetry::trace::{flight_recorder, stage_handle, stages, StageHandle};
use pddl_telemetry::{tlog, Counter, Histogram, Level, Span, SpanStatus, TraceContext};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

/// Inference-path metric handles, resolved once (the predict path stays
/// lock-free).
struct InferenceMetrics {
    predictions: &'static Counter,
    embed_latency: &'static Histogram,
    regress_latency: &'static Histogram,
}

fn inference_metrics() -> &'static InferenceMetrics {
    static METRICS: OnceLock<InferenceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| InferenceMetrics {
        predictions: pddl_telemetry::counter("inference.predictions"),
        embed_latency: pddl_telemetry::histogram("inference.embed_latency"),
        regress_latency: pddl_telemetry::histogram("inference.regress_latency"),
    })
}

/// Predict-path stage handles, resolved once so traced inference records
/// spans without touching the stage-intern lock.
struct PredictStages {
    embed_cache: StageHandle,
    ghn_embed: StageHandle,
    regress: StageHandle,
}

fn predict_stages() -> &'static PredictStages {
    static STAGES: OnceLock<PredictStages> = OnceLock::new();
    STAGES.get_or_init(|| PredictStages {
        embed_cache: stage_handle(stages::EMBED_CACHE),
        ghn_embed: stage_handle(stages::GHN_EMBED),
        regress: stage_handle(stages::REGRESS),
    })
}

/// Serializable choice of regression model (the `Regression` enum itself
/// holds fitted state and is not `Clone`).
#[derive(Clone, Copy, Debug)]
pub enum RegressionSpec {
    /// Ordinary least squares on the raw features.
    Linear,
    /// Second-order polynomial with full pairwise interactions.
    Polynomial {
        /// Polynomial degree.
        degree: usize,
        /// Ridge regularization strength.
        lambda: f32,
    },
    /// Second-order polynomial with squares only — the default over the
    /// wide embedding feature space (full interactions would exceed the
    /// trace's sample count).
    PolynomialSquares {
        /// Polynomial degree.
        degree: usize,
        /// Ridge regularization strength.
        lambda: f32,
    },
    /// Support-vector regression; `rbf_gamma: None` selects the linear kernel.
    Svr {
        /// RBF kernel width; `None` selects the linear kernel.
        rbf_gamma: Option<f32>,
        /// Regularization strength.
        c: f32,
        /// Epsilon-insensitive tube width.
        epsilon: f32,
    },
    /// Single-hidden-layer perceptron regressor.
    Mlp {
        /// Hidden-layer width.
        hidden: usize,
        /// Training epochs.
        epochs: usize,
        /// Learning rate.
        lr: f32,
    },
}

impl RegressionSpec {
    /// Instantiates the (unfitted) regression model this spec describes.
    pub fn build(&self, seed: u64) -> Regression {
        match *self {
            RegressionSpec::Linear => Regression::linear(),
            RegressionSpec::Polynomial { degree, lambda } => Regression::polynomial(degree, lambda),
            RegressionSpec::PolynomialSquares { degree, lambda } => {
                Regression::polynomial_squares(degree, lambda)
            }
            RegressionSpec::Svr { rbf_gamma, c, epsilon } => {
                let kernel = match rbf_gamma {
                    Some(gamma) => Kernel::Rbf { gamma },
                    None => Kernel::Linear,
                };
                Regression::svr(kernel, c, epsilon)
            }
            RegressionSpec::Mlp { hidden, epochs, lr } => Regression::mlp(hidden, epochs, lr, seed),
        }
    }
}

/// Offline-training configuration.
pub struct OfflineTrainer {
    /// GHN architecture hyperparameters.
    pub ghn_config: GhnConfig,
    /// GHN meta-training schedule.
    pub ghn_train: TrainConfig,
    /// Execution-trace sweep to train the regressor on.
    pub trace: TraceConfig,
    /// Which regression model to fit on the trace.
    pub regression: RegressionSpec,
    /// Fit the regressor on `log(time)` instead of raw seconds.
    pub log_target: bool,
    /// Master RNG seed; every sub-seed derives deterministically from it.
    pub seed: u64,
}

impl Default for OfflineTrainer {
    fn default() -> Self {
        Self {
            ghn_config: GhnConfig::default(),
            ghn_train: TrainConfig::default(),
            trace: TraceConfig::default(),
            regression: RegressionSpec::Polynomial { degree: 2, lambda: 1e-2 },
            log_target: true,
            seed: 0xACC0,
        }
    }
}

impl OfflineTrainer {
    /// Fast configuration for tests: tiny GHN, tiny trace.
    pub fn tiny() -> Self {
        Self {
            ghn_config: GhnConfig::tiny(),
            ghn_train: TrainConfig::tiny(),
            trace: TraceConfig::small(),
            regression: RegressionSpec::Polynomial { degree: 2, lambda: 1e-3 },
            log_target: true,
            seed: 7,
        }
    }

    /// Full pipeline: generate the trace with the simulator, then train.
    pub fn train_full(&self) -> PredictDdl {
        let records = generate_trace(&self.trace);
        self.train_from_records(&records)
    }

    /// Trains GHNs (per dataset present in the records) and the inference
    /// engine from an explicit trace — the entry point for the experiment
    /// harness, which controls train/test splits itself.
    pub fn train_from_records(&self, records: &[TraceRecord]) -> PredictDdl {
        let registry = GhnRegistry::new(self.ghn_config, self.ghn_train, self.seed);
        self.train_from_records_reusing(records, registry)
    }

    /// Like [`Self::train_from_records`], but keeps the GHNs already in
    /// `registry` — only datasets without a pretrained GHN are trained.
    /// This is the §III-G policy: GHNs are per-dataset assets and never
    /// retrained for cluster or architecture changes.
    pub fn train_from_records_reusing(
        &self,
        records: &[TraceRecord],
        mut registry: GhnRegistry,
    ) -> PredictDdl {
        assert!(!records.is_empty(), "empty training trace");
        let t0 = Instant::now();
        let ghn_span = Span::enter("offline.train_ghn");
        let mut datasets: Vec<String> = records
            .iter()
            .map(|r| r.workload.dataset.to_ascii_lowercase())
            .collect();
        datasets.sort();
        datasets.dedup();
        // Per-dataset GHN trainings are independent (each derives its RNG
        // seed from the dataset name), so they fan out across the work
        // pool; results are inserted in sorted-dataset order, identical to
        // a serial run.
        let missing: Vec<String> =
            datasets.iter().filter(|ds| !registry.has(ds)).cloned().collect();
        let trained = pddl_par::par_map(&missing, |ds| {
            GhnRegistry::train_one(self.ghn_config, self.ghn_train, self.seed, ds)
                .unwrap_or_else(|e| panic!("GHN training failed for {ds}: {e}"))
        });
        for (key, ghn, _report) in trained {
            registry.insert(&key, ghn);
        }
        ghn_span.exit();
        let ghn_secs = t0.elapsed().as_secs_f64();

        // Embed each distinct (model, dataset) once. The GHN forward
        // passes are independent, so they run on the work pool; the atlas
        // and the sample cache are then filled in first-appearance order,
        // keeping the result identical to the serial loop.
        let t1 = Instant::now();
        let embed_span = Span::enter("offline.embed_trace");
        let mut embeddings = EmbeddingsGenerator::new();
        let mut distinct: Vec<((String, String), &Workload)> = Vec::new();
        for r in records {
            let key = (r.workload.model.clone(), r.workload.dataset.to_ascii_lowercase());
            if !distinct.iter().any(|(k, _)| *k == key) {
                distinct.push((key, &r.workload));
            }
        }
        let embedded = pddl_par::par_map(&distinct, |((model, ds), w)| {
            let graph = w
                .build_graph()
                .unwrap_or_else(|| panic!("trace references unknown model {model}"));
            let ghn = registry.get(ds).expect("GHN trained above");
            (graph.name.clone(), ghn.embed_graph(&graph))
        });
        let mut cache: HashMap<(String, String), Vec<f32>> = HashMap::new();
        for ((key, _), (graph_name, emb)) in distinct.into_iter().zip(embedded) {
            embeddings.record(&key.1, &graph_name, emb.clone());
            cache.insert(key, emb);
        }
        embed_span.exit();
        let embed_secs = t1.elapsed().as_secs_f64();

        // Assemble engine samples and fit the regression.
        let t2 = Instant::now();
        let fit_span = Span::enter("offline.fit_regressor");
        let samples: Vec<EngineSample> = records
            .iter()
            .map(|r| {
                let key = (r.workload.model.clone(), r.workload.dataset.to_ascii_lowercase());
                EngineSample {
                    embedding: cache[&key].clone(),
                    cluster: r.cluster(),
                    batch_size: r.workload.batch_size,
                    epochs: r.workload.epochs,
                    dataset: r.workload.dataset.clone(),
                    time_secs: r.time_secs,
                }
            })
            .collect();
        let mut engine = InferenceEngine::new(InferenceConfig {
            regression: self.regression.build(self.seed),
            log_target: self.log_target,
        });
        engine.fit(&samples);
        fit_span.exit();
        let fit_secs = t2.elapsed().as_secs_f64();
        tlog!(
            Level::Info,
            "offline",
            "trained",
            datasets = datasets.len(),
            samples = samples.len(),
            ghn_secs = ghn_secs,
            embed_secs = embed_secs,
            fit_secs = fit_secs,
        );

        PredictDdl {
            registry,
            embeddings,
            engine,
            train_cost: TrainCost { ghn_secs, embed_secs, fit_secs },
            records: records.to_vec(),
            cache: EmbeddingCache::default(),
        }
    }

    /// Folds a **new dataset** into an existing system (the Fig. 8 offline
    /// retraining loop, triggered by the Task Checker's
    /// `OfflineTrainingRequired` branch): collects a trace for the dataset
    /// with the simulator, trains its GHN, and refits the regression on the
    /// union of old and new measurements. Existing GHNs are untouched —
    /// "the GHN-2 model ... will not require retraining when the same
    /// workload is executed on a different cluster" (§III-G).
    pub fn extend_with_dataset(&self, system: &mut PredictDdl, dataset: &str) -> Result<(), String> {
        let key = dataset.to_ascii_lowercase();
        if system.registry.has(&key) {
            return Ok(()); // nothing to do
        }
        // Collect the new dataset's trace (keep every other knob from the
        // trainer's trace config). Prefer this trainer's dataset→cluster
        // mapping; fall back to the default mapping for datasets the
        // trainer has never seen.
        let mut cfg = self.trace.clone();
        cfg.dataset_clusters
            .retain(|(d, _)| d.eq_ignore_ascii_case(&key));
        if cfg.dataset_clusters.is_empty() {
            cfg.dataset_clusters = TraceConfig::default()
                .dataset_clusters
                .into_iter()
                .filter(|(d, _)| d.eq_ignore_ascii_case(&key))
                .collect();
        }
        if cfg.dataset_clusters.is_empty() {
            return Err(format!("no cluster mapping for dataset '{dataset}'"));
        }
        let new_records = generate_trace(&cfg);
        if new_records.is_empty() {
            return Err(format!("trace collection produced nothing for '{dataset}'"));
        }
        let mut all = system.records.clone();
        all.extend(new_records);
        // Refit on the union, carrying the existing GHNs over so only the
        // new dataset's GHN is trained.
        let registry = std::mem::replace(
            &mut system.registry,
            GhnRegistry::new(self.ghn_config, self.ghn_train, self.seed),
        );
        *system = self.train_from_records_reusing(&all, registry);
        Ok(())
    }
}

/// Wall-clock breakdown of offline training (reported in Fig. 13).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TrainCost {
    /// GHN meta-training wall-clock seconds (one GHN per dataset).
    pub ghn_secs: f64,
    /// Trace-embedding wall-clock seconds.
    pub embed_secs: f64,
    /// Regressor-fitting wall-clock seconds.
    pub fit_secs: f64,
}

impl TrainCost {
    /// Total offline-training wall-clock seconds.
    pub fn total(&self) -> f64 {
        self.ghn_secs + self.embed_secs + self.fit_secs
    }
}

/// The assembled, trained PredictDDL system.
#[derive(Serialize, Deserialize)]
pub struct PredictDdl {
    /// Per-dataset GHNs (the paper's reusable offline assets).
    pub registry: GhnRegistry,
    /// Embedding atlas for nearest-architecture queries.
    pub embeddings: EmbeddingsGenerator,
    /// The fitted regression over the unified feature space.
    pub engine: InferenceEngine,
    /// Wall-clock breakdown of offline training (Fig. 13 accounting).
    pub train_cost: TrainCost,
    /// The trace the engine was fitted on, kept so a new dataset can be
    /// folded in later (§III-G: offline retraining "when a new dataset is
    /// introduced") without re-collecting the old measurements.
    pub records: Vec<TraceRecord>,
    /// Service-level embedding cache keyed by `(dataset, graph hash)`.
    /// Runtime state, not part of the trained model: rebuilt empty on
    /// deserialization.
    #[serde(skip, default)]
    pub cache: EmbeddingCache,
}

impl PredictDdl {
    /// Selects the inference storage precision for every GHN in the system.
    /// `Bf16` freezes quantized serving weights (and drops the embedding
    /// cache, which holds f32-path results); `F32` thaws back bit-exactly.
    pub fn set_precision(&mut self, p: pddl_tensor::Precision) {
        if p != self.registry.precision() {
            self.cache = EmbeddingCache::default();
        }
        self.registry.set_precision(p);
        pddl_tensor::bf16::report_precision(p);
    }

    /// The inference storage precision the system serves at.
    pub fn precision(&self) -> pddl_tensor::Precision {
        self.registry.precision()
    }

    /// Handles one prediction request end-to-end: Task Checker → Embeddings
    /// Generator → Inference Engine (steps ③–⑥ of Fig. 7).
    pub fn predict(&self, req: &PredictionRequest) -> Result<Prediction, RequestError> {
        self.predict_traced(req, None)
    }

    /// [`Self::predict`] with optional trace recording: when `trace` names
    /// a parent span (the controller's dispatch span), each inference
    /// stage — embedding-cache lookup (hit/miss distinguished), the GHN
    /// forward pass on a miss, and the regression — lands as a child span
    /// in the global [`flight_recorder`]. With `None` this is exactly
    /// `predict`: no recorder interaction, no extra clock reads.
    pub fn predict_traced(
        &self,
        req: &PredictionRequest,
        trace: Option<TraceContext>,
    ) -> Result<Prediction, RequestError> {
        let graph = match TaskChecker::check(req, &self.registry)? {
            TaskDecision::Proceed(g) => g,
            TaskDecision::OfflineTrainingRequired { dataset, .. } => {
                return Err(RequestError::NeedsOfflineTraining { dataset })
            }
        };
        let m = inference_metrics();
        let t0 = Instant::now();
        let embed_timer = m.embed_latency.start_timer();
        // Cached GHN embedding: repeated workloads (same dataset + same
        // graph structure) skip the forward pass entirely.
        let (embedding, was_hit) = self
            .cache
            .get_or_embed_detailed(&self.registry, &req.dataset, &graph)
            .expect("registry checked by TaskChecker");
        let embed_elapsed = t0.elapsed();
        embed_timer.observe();
        if let Some(ctx) = trace {
            let rec = flight_recorder();
            let start = rec.now_us().saturating_sub(embed_elapsed.as_micros() as u64);
            let status = if was_hit { SpanStatus::CacheHit } else { SpanStatus::CacheMiss };
            let st = predict_stages();
            rec.record_stage_resolved(ctx, st.embed_cache, start, embed_elapsed, status);
            if !was_hit {
                // A miss is dominated by the GHN forward pass; attribute
                // the same window to it so waterfalls show where the time
                // went without a second clock read inside the cache.
                rec.record_stage_resolved(ctx, st.ghn_embed, start, embed_elapsed, SpanStatus::Ok);
            }
        }
        let regress_timer = m.regress_latency.start_timer();
        let t1 = Instant::now();
        let seconds = self.engine.predict(
            &embedding,
            &req.cluster,
            req.batch_size,
            req.epochs,
            &req.dataset,
        );
        let regress_elapsed = t1.elapsed();
        regress_timer.observe();
        if let Some(ctx) = trace {
            let rec = flight_recorder();
            let start = rec.now_us().saturating_sub(regress_elapsed.as_micros() as u64);
            rec.record_stage_resolved(ctx, predict_stages().regress, start, regress_elapsed, SpanStatus::Ok);
        }
        m.predictions.inc();
        let nearest = self.embeddings.nearest(&req.dataset, &embedding);
        Ok(Prediction {
            seconds,
            nearest_architecture: nearest,
            inference_secs: t0.elapsed().as_secs_f64(),
        })
    }

    /// Handles a batch of prediction requests, fanning the per-request
    /// embed + regression work out across the global work pool
    /// ([`pddl_par`]). Results are returned in request order and are
    /// identical to calling [`Self::predict`] serially — repeated
    /// architectures additionally coalesce in the embedding cache, so a
    /// 32-workload batch of, say, 8 distinct models runs 8 GHN forward
    /// passes, not 32.
    pub fn predict_many(
        &self,
        reqs: &[PredictionRequest],
    ) -> Vec<Result<Prediction, RequestError>> {
        pddl_par::par_map(reqs, |r| self.predict(r))
    }

    /// Convenience: predict a zoo workload on a cluster.
    pub fn predict_workload(
        &self,
        w: &Workload,
        cluster: &ClusterState,
    ) -> Result<Prediction, RequestError> {
        self.predict(&PredictionRequest::zoo(w.clone(), cluster.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_cluster::ServerClass;
    use pddl_ddlsim::{SimConfig, Simulator};

    #[test]
    fn tiny_pipeline_trains_and_predicts() {
        let system = OfflineTrainer::tiny().train_full();
        let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
        let w = Workload::new("resnet18", "cifar10", 128, 2);
        let pred = system.predict_workload(&w, &cluster).unwrap();
        assert!(pred.seconds > 0.0 && pred.seconds.is_finite());
        assert!(pred.nearest_architecture.is_some());
        assert!(pred.inference_secs < 5.0);
    }

    #[test]
    fn tiny_pipeline_accuracy_in_sample_family() {
        // Train on the small trace and check predictions for an in-trace
        // configuration are within a factor of 2 of the simulator.
        let trainer = OfflineTrainer::tiny();
        let system = trainer.train_full();
        let sim = Simulator::new(SimConfig::default());
        let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
        let w = Workload::new("vgg16", "cifar10", 128, 2);
        let actual = sim.expected_time(&w, &cluster).unwrap();
        let pred = system.predict_workload(&w, &cluster).unwrap().seconds;
        let ratio = pred / actual;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn unseen_dataset_requires_offline_training() {
        let system = OfflineTrainer::tiny().train_full(); // trace covers cifar10 only
        let cluster = ClusterState::homogeneous(ServerClass::CpuE5_2630, 2);
        let w = Workload::new("resnet18", "tiny-imagenet", 128, 2);
        assert!(matches!(
            system.predict_workload(&w, &cluster),
            Err(RequestError::NeedsOfflineTraining { .. })
        ));
    }

    #[test]
    fn traced_predict_distinguishes_cache_miss_from_hit() {
        let system = OfflineTrainer::tiny().train_full();
        let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
        let w = Workload::new("resnet18", "cifar10", 128, 2);
        let req = PredictionRequest::zoo(w, cluster);

        let cold = TraceContext::root(0x0FF1_0001);
        system.predict_traced(&req, Some(cold)).unwrap();
        let spans = flight_recorder().spans_for(cold.trace_id);
        let stage_status: Vec<(&str, SpanStatus)> =
            spans.iter().map(|s| (s.stage, s.status)).collect();
        assert!(
            stage_status.contains(&(stages::EMBED_CACHE, SpanStatus::CacheMiss)),
            "cold lookup must record a miss: {stage_status:?}"
        );
        assert!(
            stage_status.contains(&(stages::GHN_EMBED, SpanStatus::Ok)),
            "miss must attribute the GHN forward pass: {stage_status:?}"
        );
        assert!(
            stage_status.contains(&(stages::REGRESS, SpanStatus::Ok)),
            "regression stage missing: {stage_status:?}"
        );
        for s in &spans {
            assert_eq!(s.parent_id, cold.span_id, "stages parent to the dispatch span");
        }

        let warm = TraceContext::root(0x0FF1_0002);
        system.predict_traced(&req, Some(warm)).unwrap();
        let spans = flight_recorder().spans_for(warm.trace_id);
        let stage_status: Vec<(&str, SpanStatus)> =
            spans.iter().map(|s| (s.stage, s.status)).collect();
        assert!(
            stage_status.contains(&(stages::EMBED_CACHE, SpanStatus::CacheHit)),
            "warm lookup must record a hit: {stage_status:?}"
        );
        assert!(
            !stage_status.iter().any(|(st, _)| *st == stages::GHN_EMBED),
            "a hit runs no GHN forward pass: {stage_status:?}"
        );
    }

    #[test]
    fn train_cost_breakdown_recorded() {
        let system = OfflineTrainer::tiny().train_full();
        assert!(system.train_cost.ghn_secs > 0.0);
        assert!(system.train_cost.total() >= system.train_cost.ghn_secs);
    }
}
