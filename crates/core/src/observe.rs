//! The serving-side end of the continual-refit loop: `{"op":"observe"}`.
//!
//! A deployment that only ever *predicts* never learns that the cluster
//! changed. [`ObservationSink`] is the controller's feedback inlet: each
//! completed job is reported with the request it was predicted from and
//! the wall-clock seconds it actually took. The sink re-predicts against
//! the pinned live model, feeds the log-space residual through a
//! [`PageHinkley`] drift detector (standardized by a robust
//! [`ResidualScale`]), and maintains an [`OnlineRidge`] *calibration*
//! model — a rank-1-updated map from (model prediction, cluster size) to
//! observed runtime that [`ObservationSink::calibrate`] can apply on top
//! of raw predictions once enough observations have accumulated.
//!
//! The `refit.updates` / `refit.refits` / `refit.drift_events` telemetry
//! counters increment inside the regress primitives, so a serving
//! controller's `{"op":"metrics"}` exposition shows the loop working.

use crate::protocol::ObserveReply;
use pddl_regress::{DriftConfig, OnlineRidge, PageHinkley, ResidualScale};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Observations required before [`ObservationSink::calibrate`] starts
/// correcting predictions (below this it returns them unchanged).
const CALIBRATION_WARMUP: u64 = 16;

/// Recent residuals retained for shift-magnitude estimation on a drift
/// fire (at most [`pddl_regress::DriftEvent::run_length`] are read).
const RECENT_RESIDUALS: usize = 64;

struct SinkInner {
    /// Log-space calibration: features `[ln predicted, ln servers]`,
    /// target `ln actual`.
    calib: OnlineRidge,
    detector: PageHinkley,
    scale: ResidualScale,
    recent: VecDeque<f64>,
    observations: u64,
    drift_events: u64,
}

/// Thread-safe accumulator for served-prediction feedback.
pub struct ObservationSink {
    inner: Mutex<SinkInner>,
}

impl Default for ObservationSink {
    fn default() -> Self {
        Self::with_config(1e-3, 2048, DriftConfig::default())
    }
}

impl ObservationSink {
    /// Sink with default configuration (see [`ObservationSink::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sink with explicit ridge penalty, sliding-window capacity, and
    /// drift parameters.
    pub fn with_config(lambda: f64, window: usize, drift: DriftConfig) -> Self {
        Self {
            inner: Mutex::new(SinkInner {
                calib: OnlineRidge::new(2, lambda, window),
                detector: PageHinkley::new(drift),
                scale: ResidualScale::default(),
                recent: VecDeque::with_capacity(RECENT_RESIDUALS),
                observations: 0,
                drift_events: 0,
            }),
        }
    }

    /// Folds one completed job in. `predicted_secs` is the live model's
    /// prediction for the request, `actual_secs` the measured runtime,
    /// `servers` the cluster size it ran on. Both times must be positive
    /// and finite (the controller rejects before calling).
    pub fn record(&self, predicted_secs: f64, actual_secs: f64, servers: usize) -> ObserveReply {
        let mut s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let x = [predicted_secs.ln(), (servers.max(1) as f64).ln()];
        let y = actual_secs.ln();
        let r = y - predicted_secs.ln();
        let z = s.scale.standardize(r);
        let event = s.detector.observe(z);
        if s.recent.len() == RECENT_RESIDUALS {
            s.recent.pop_front();
        }
        s.recent.push_back(r);
        s.scale.absorb(r);
        s.calib.observe(&x, y);
        if let Some(e) = event {
            s.drift_events += 1;
            // An abrupt cost shift fires within a few observations — too
            // few to refit from post-shift data alone. Estimate its log
            // magnitude from the post-shift residual run (in excess of
            // the healthy residual mean) and translate the calibration's
            // history onto the new level before the canonical refit.
            let run = (e.run_length as usize).clamp(1, s.recent.len());
            let run_mean = s.recent.iter().rev().take(run).sum::<f64>() / run as f64;
            let dy = run_mean - s.scale.mean();
            s.calib.translate_targets_and_refit(dy, run);
            s.recent.clear();
            // Post-shift noise need not match pre-shift noise; standardizing
            // by the stale σ would slowly re-fire the detector on residual
            // spread the new regime considers healthy. Re-bootstrap.
            s.scale = ResidualScale::default();
        }
        s.observations += 1;
        ObserveReply {
            observations: s.observations,
            drift_events: s.drift_events,
            residual_z: z,
            drifted: event.is_some(),
        }
    }

    /// Applies the learned calibration to a raw model prediction: returns
    /// the runtime the sink expects given what the model said and the
    /// cluster size. Identity until `CALIBRATION_WARMUP` (16)
    /// observations have accumulated.
    pub fn calibrate(&self, predicted_secs: f64, servers: usize) -> f64 {
        let s = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // NaN and non-positive predictions pass through uncorrected.
        if s.observations < CALIBRATION_WARMUP || predicted_secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return predicted_secs;
        }
        let x = [predicted_secs.ln(), (servers.max(1) as f64).ln()];
        s.calib.predict(&x).exp()
    }

    /// Observations accepted (lifetime).
    pub fn observations(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).observations
    }

    /// Drift events fired (lifetime).
    pub fn drift_events(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).drift_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reply_reflects_state() {
        let sink = ObservationSink::new();
        let r1 = sink.record(100.0, 103.0, 4);
        assert_eq!(r1.observations, 1);
        assert!(!r1.drifted);
        let r2 = sink.record(100.0, 98.0, 4);
        assert_eq!(r2.observations, 2);
        assert_eq!(sink.observations(), 2);
        assert_eq!(sink.drift_events(), 0);
    }

    #[test]
    fn calibration_learns_a_systematic_bias() {
        let sink = ObservationSink::new();
        // The model consistently predicts half the real runtime.
        for i in 0..200 {
            let pred = 50.0 + (i % 17) as f64 * 10.0;
            sink.record(pred, 2.0 * pred, 4);
        }
        let corrected = sink.calibrate(100.0, 4);
        assert!(
            (corrected / 200.0 - 1.0).abs() < 0.05,
            "expected ≈200s after calibration, got {corrected}"
        );
    }

    #[test]
    fn calibration_is_identity_during_warmup() {
        let sink = ObservationSink::new();
        for _ in 0..(CALIBRATION_WARMUP - 1) {
            sink.record(10.0, 30.0, 2);
        }
        assert_eq!(sink.calibrate(10.0, 2), 10.0);
    }

    #[test]
    fn sustained_shift_fires_drift_once() {
        let sink = ObservationSink::new();
        for i in 0..300 {
            let pred = 80.0 + (i % 13) as f64;
            sink.record(pred, pred * (1.0 + 0.01 * ((i % 7) as f64 - 3.0)), 8);
        }
        assert_eq!(sink.drift_events(), 0, "healthy stream must not fire");
        let mut fired = 0;
        for i in 0..200 {
            let pred = 80.0 + (i % 13) as f64;
            if sink.record(pred, pred * 3.0, 8).drifted {
                fired += 1;
            }
        }
        // One sustained shift → exactly one fire (the post-fire refit
        // re-centres the calibration on the new regime).
        assert_eq!(fired, 1);
        assert_eq!(sink.drift_events(), 1);
    }
}
