//! Zero-downtime hot reload of the serving model.
//!
//! The trained system lives behind a [`LiveSystem`] slot: an epoch-counted
//! `Arc` that request handlers *pin* (clone) once per request. A swap
//! installs the new system for all subsequent pins while in-flight
//! requests finish on the `Arc` they already hold — there is no moment at
//! which a request can observe half of the old model and half of the new.
//!
//! [`ReloadManager`] drives the swap protocol against the checkpoint
//! registry: resolve the target version, load it, replay the manifest's
//! golden probes against the candidate, and only then swap. Any failure
//! *rejects* the reload and leaves the old version serving — rollback is
//! the default, not a recovery action.

use crate::checkpoint::{load_checkpoint, validate_probes_with, ProbeTolerance};
use crate::offline::PredictDdl;
use pddl_registry::Registry;
use pddl_telemetry::{tlog, Counter, Level, Span};
use pddl_tensor::Precision;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// Default probe tolerance in seconds: effectively "bit-identical or a
/// rounding hair away" — an unchanged model passes, a retrained one that
/// drifts on its own training workloads does not.
pub const DEFAULT_PROBE_TOLERANCE: f64 = 1e-9;

/// Relative probe tolerance applied when the serve-time precision differs
/// from the precision the checkpoint was published at. bf16 quantization
/// shifts each weight by up to 2⁻⁸ relative; end-to-end through the GHN
/// and the regressor the prediction drift stays well under 1% on the
/// golden probes, so 1e-2 admits precision conversion while still
/// rejecting genuinely wrong models.
pub const CROSS_PRECISION_PROBE_TOLERANCE: f64 = 1e-2;

struct ReloadMetrics {
    reloads: &'static Counter,
    rejected: &'static Counter,
}

fn reload_metrics() -> &'static ReloadMetrics {
    static METRICS: OnceLock<ReloadMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ReloadMetrics {
        reloads: pddl_telemetry::counter("registry.reloads"),
        rejected: pddl_telemetry::counter("registry.reload_rejected"),
    })
}

/// The hot-swappable serving slot.
///
/// Readers call [`LiveSystem::pin`] once per request and use the returned
/// `Arc` for the whole request; writers call [`LiveSystem::swap`]. The
/// epoch increments exactly once per swap, so a test (or an operator) can
/// assert "the swap happened while my requests were in flight" and that
/// every individual request saw exactly one model.
pub struct LiveSystem {
    slot: RwLock<Arc<PredictDdl>>,
    version: AtomicU64,
    epoch: AtomicU64,
}

impl LiveSystem {
    /// Wraps a trained system. `version` is the registry version it came
    /// from, or `0` for a system booted from a plain file or in-memory
    /// training (never a valid registry version — those start at 1).
    pub fn new(system: PredictDdl, version: u64) -> Self {
        Self {
            slot: RwLock::new(Arc::new(system)),
            version: AtomicU64::new(version),
            epoch: AtomicU64::new(0),
        }
    }

    /// Pins the current system for the duration of one request.
    pub fn pin(&self) -> Arc<PredictDdl> {
        Arc::clone(&self.slot.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Registry version currently live (`0` when not registry-backed).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Number of swaps performed on this slot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically installs `system` as `version`; returns the new epoch.
    pub fn swap(&self, system: Arc<PredictDdl>, version: u64) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        *slot = system;
        self.version.store(version, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// What a successful reload attempt did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReloadOutcome {
    /// A new version was validated and swapped live.
    Swapped {
        /// Version now live.
        version: u64,
        /// Version that was live before.
        previous: u64,
        /// Slot epoch after the swap.
        epoch: u64,
    },
    /// The target version was already live; nothing changed.
    AlreadyLive {
        /// The live (and requested) version.
        version: u64,
        /// Current slot epoch (unchanged).
        epoch: u64,
    },
}

/// A rejected reload: the old model keeps serving, `reason` says why the
/// candidate was refused (wire shape: `{"error":"reload_rejected",…}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReloadRejected {
    /// Machine-prefixed reason (`empty_registry`, `no_such_version: …`,
    /// `load_failed: …`, `probe_mismatch: …`).
    pub reason: String,
}

impl std::fmt::Display for ReloadRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reload rejected: {}", self.reason)
    }
}

impl std::error::Error for ReloadRejected {}

/// Drives validated hot reloads of a [`LiveSystem`] from a [`Registry`].
pub struct ReloadManager {
    registry: Registry,
    live: Arc<LiveSystem>,
    /// Serializes reload attempts: concurrent `{"op":"reload"}` frames
    /// validate and swap one at a time.
    gate: Mutex<()>,
    tolerance: f64,
    /// Serve-time storage precision applied to every candidate after load,
    /// overriding the precision the checkpoint was published at.
    precision: Precision,
}

impl ReloadManager {
    /// Creates a manager with [`DEFAULT_PROBE_TOLERANCE`].
    pub fn new(registry: Registry, live: Arc<LiveSystem>) -> Arc<Self> {
        Self::with_tolerance(registry, live, DEFAULT_PROBE_TOLERANCE)
    }

    /// Creates a manager with an explicit probe tolerance in seconds.
    pub fn with_tolerance(registry: Registry, live: Arc<LiveSystem>, tolerance: f64) -> Arc<Self> {
        Self::with_precision(registry, live, tolerance, Precision::F32)
    }

    /// Creates a manager that serves every reloaded candidate at
    /// `precision`. When a candidate's manifest was published at a
    /// *different* precision, probe validation automatically widens to
    /// [`CROSS_PRECISION_PROBE_TOLERANCE`] (relative) — bit-exactness is
    /// only demanded of same-precision reloads.
    pub fn with_precision(
        registry: Registry,
        live: Arc<LiveSystem>,
        tolerance: f64,
        precision: Precision,
    ) -> Arc<Self> {
        Arc::new(Self {
            registry,
            live,
            gate: Mutex::new(()),
            tolerance,
            precision,
        })
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The live slot this manager swaps.
    pub fn live(&self) -> &Arc<LiveSystem> {
        &self.live
    }

    /// The serve-time precision applied to reloaded candidates.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Attempts a reload to `target` (or the registry's latest version
    /// when `None`). On success the new version is pinned in the registry
    /// (so retention never collects the live model) and the previous
    /// version unpinned. On rejection nothing observable changes.
    pub fn reload(&self, target: Option<u64>) -> Result<ReloadOutcome, ReloadRejected> {
        let _span = Span::enter("registry.reload");
        let _gate = self.gate.lock().unwrap_or_else(|e| e.into_inner());

        let reject = |reason: String| {
            reload_metrics().rejected.inc();
            tlog!(
                Level::Warn,
                "registry",
                "reload rejected",
                reason = reason.as_str(),
            );
            Err(ReloadRejected { reason })
        };

        // Pick up versions an external retrainer published since open().
        if let Err(e) = self.registry.rescan() {
            return reject(format!("rescan_failed: {e}"));
        }
        let target = match target.or_else(|| self.registry.latest()) {
            Some(v) => v,
            None => return reject("empty_registry".to_string()),
        };
        if target == self.live.version() {
            return Ok(ReloadOutcome::AlreadyLive {
                version: target,
                epoch: self.live.epoch(),
            });
        }
        let manifest = match self.registry.manifest(target) {
            Some(m) => m,
            None => return reject(format!("no_such_version: {target}")),
        };
        let mut candidate = match load_checkpoint(&self.registry, target) {
            Ok(c) => c,
            Err(e) => return reject(format!("load_failed: {e}")),
        };
        // Serve-time precision wins over the published one; crossing
        // precisions trades the bit-exact gate for a relative one, since
        // requantized weights legitimately shift the predictions.
        let published = Precision::parse(&manifest.precision).unwrap_or(Precision::F32);
        candidate.set_precision(self.precision);
        let tolerance = if self.precision == published {
            ProbeTolerance::AbsoluteSecs(self.tolerance)
        } else {
            ProbeTolerance::Relative(CROSS_PRECISION_PROBE_TOLERANCE)
        };
        if let Err(e) = validate_probes_with(&candidate, &manifest, tolerance) {
            return reject(format!("probe_mismatch: {e}"));
        }
        if let Err(e) = self.registry.pin(target) {
            return reject(format!("pin_failed: {e}"));
        }
        let previous = self.live.version();
        let epoch = self.live.swap(Arc::new(candidate), target);
        if previous != 0 {
            self.registry.unpin(previous);
        }
        reload_metrics().reloads.inc();
        tlog!(
            Level::Info,
            "registry",
            "hot reload swapped",
            version = target,
            previous = previous,
            epoch = epoch,
        );
        Ok(ReloadOutcome::Swapped {
            version: target,
            previous,
            epoch,
        })
    }
}

/// Spawns the `--watch-registry` poller: every `interval` it rescans the
/// registry and reloads when a version newer than the live one appears.
/// Rejected candidates are logged and left alone (the registry quarantines
/// or retains them; the poller just keeps serving the old model). Returns
/// the thread handle; set `shutdown` to stop it.
pub fn spawn_watcher(
    manager: Arc<ReloadManager>,
    interval: Duration,
    shutdown: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("pddl-registry-watch".to_string())
        .spawn(move || {
            let tick = Duration::from_millis(25).min(interval);
            let mut elapsed = Duration::ZERO;
            while !shutdown.load(Ordering::Acquire) {
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed < interval {
                    continue;
                }
                elapsed = Duration::ZERO;
                let newest = match manager.registry().rescan() {
                    Ok(_) => manager.registry().latest(),
                    Err(e) => {
                        tlog!(
                            Level::Warn,
                            "registry",
                            "watcher rescan failed",
                            error = e.to_string().as_str(),
                        );
                        continue;
                    }
                };
                if let Some(v) = newest {
                    if v > manager.live().version() {
                        // reload() logs both outcomes; nothing to do here.
                        let _ = manager.reload(Some(v));
                    }
                }
            }
        })
        .expect("spawn registry watcher")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::save_checkpoint;
    use crate::offline::OfflineTrainer;
    use pddl_registry::ProbeRecord;
    use std::sync::atomic::{AtomicU64 as SeqU64, Ordering as SeqOrd};

    fn unique_root(tag: &str) -> std::path::PathBuf {
        static N: SeqU64 = SeqU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "pddl-core-reload-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, SeqOrd::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn reload_swaps_to_latest_and_pins_it() {
        let system = OfflineTrainer::tiny().train_full();
        let root = unique_root("swap");
        let (registry, _) = Registry::open(&root, 4).unwrap();
        let v = save_checkpoint(&registry, &system, "first").unwrap();

        let live = Arc::new(LiveSystem::new(system, 0));
        let mgr = ReloadManager::new(registry, Arc::clone(&live));
        let outcome = mgr.reload(None).unwrap();
        assert_eq!(
            outcome,
            ReloadOutcome::Swapped { version: v, previous: 0, epoch: 1 }
        );
        assert_eq!(live.version(), v);
        assert_eq!(mgr.registry().pinned(), vec![v], "live version pinned");

        // Reloading the same version again is a no-op.
        assert_eq!(
            mgr.reload(None).unwrap(),
            ReloadOutcome::AlreadyLive { version: v, epoch: 1 }
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn failing_probe_rejects_and_keeps_old_model_live() {
        let system = OfflineTrainer::tiny().train_full();
        let root = unique_root("reject");
        let (registry, _) = Registry::open(&root, 4).unwrap();
        let v1 = save_checkpoint(&registry, &system, "good").unwrap();

        // Publish a candidate whose manifest demands predictions the
        // stored system cannot produce: a poisoned probe.
        let system_json = registry.read_artifact(v1, crate::checkpoint::SYSTEM_ARTIFACT).unwrap();
        let poisoned = vec![ProbeRecord::from_seconds("poisoned|probe", 1234.5)];
        let arts = vec![(crate::checkpoint::SYSTEM_ARTIFACT.to_string(), system_json)];
        let v2 = registry.publish("poisoned", &arts, &poisoned).unwrap();

        let live = Arc::new(LiveSystem::new(system, 0));
        let mgr = ReloadManager::new(registry, Arc::clone(&live));
        let ok = mgr.reload(Some(v1)).unwrap();
        assert!(matches!(ok, ReloadOutcome::Swapped { version, .. } if version == v1));

        let err = mgr.reload(Some(v2)).unwrap_err();
        assert!(err.reason.starts_with("probe_mismatch:"), "got: {}", err.reason);
        assert_eq!(live.version(), v1, "rollback: old version still live");
        assert_eq!(live.epoch(), 1, "no swap happened");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cross_precision_reload_passes_relative_probe_gate() {
        let system = OfflineTrainer::tiny().train_full();
        let root = unique_root("precision");
        let (registry, _) = Registry::open(&root, 4).unwrap();
        // Published at f32; the manifest stamps "f32" and records probes
        // at full precision.
        let v = save_checkpoint(&registry, &system, "f32-publish").unwrap();

        // A bf16 serve plane re-freezes every candidate, so f32-recorded
        // probes can only match within the relative cross-precision gate
        // — the absolute bit-exact gate would reject the swap.
        let live = Arc::new(LiveSystem::new(OfflineTrainer::tiny().train_full(), 0));
        let mgr = ReloadManager::with_precision(
            registry,
            Arc::clone(&live),
            DEFAULT_PROBE_TOLERANCE,
            Precision::Bf16,
        );
        let outcome = mgr.reload(Some(v)).unwrap();
        assert!(matches!(outcome, ReloadOutcome::Swapped { version, .. } if version == v));
        assert_eq!(
            live.pin().precision(),
            Precision::Bf16,
            "candidate re-frozen at the serve plane's precision"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_registry_is_rejected_typed() {
        let root = unique_root("empty");
        let (registry, _) = Registry::open(&root, 4).unwrap();
        let live = Arc::new(LiveSystem::new(OfflineTrainer::tiny().train_full(), 0));
        let mgr = ReloadManager::new(registry, live);
        assert_eq!(mgr.reload(None).unwrap_err().reason, "empty_registry");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pin_never_observes_half_swapped_model() {
        // Hammer pin() from readers while a writer swaps repeatedly between
        // two systems with distinct record counts; every pinned Arc must be
        // exactly one of the two — internal consistency of each pin is
        // guaranteed by the Arc, and the record-count marker proves the
        // slot never hands out a torn view.
        let a = OfflineTrainer::tiny().train_full();
        let mut b = OfflineTrainer::tiny().train_full();
        let marker = b.records[0].clone();
        b.records.push(marker);
        let (len_a, len_b) = (a.records.len(), b.records.len());

        let a2 = Arc::new(OfflineTrainer::tiny().train_full());
        let live = Arc::new(LiveSystem::new(a, 1));
        let b = Arc::new(b);
        let stop = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let live = Arc::clone(&live);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut pins = 0usize;
                    while !stop.load(Ordering::Acquire) {
                        let sys = live.pin();
                        let n = sys.records.len();
                        assert!(n == len_a || n == len_b, "torn view: {n} records");
                        pins += 1;
                    }
                    pins
                })
            })
            .collect();

        for i in 0..200 {
            let (sys, ver) = if i % 2 == 0 {
                (Arc::clone(&b), 2)
            } else {
                (Arc::clone(&a2), 1)
            };
            live.swap(sys, ver);
        }
        stop.store(true, Ordering::Release);
        let total: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "readers actually pinned");
        assert_eq!(live.epoch(), 200);
    }
}
