//! The Task Checker (step ③ of Fig. 7): validates a request and decides
//! whether inference can proceed directly or offline GHN training is needed.

use crate::registry::GhnRegistry;
use crate::request::{ModelRef, PredictionRequest, RequestError};
use pddl_graph::CompGraph;
use pddl_zoo::{build_model, dataset::dataset_by_name};

/// Outcome of validation.
#[derive(Debug)]
pub enum TaskDecision {
    /// Proceed to embedding + inference with this resolved graph.
    Proceed(CompGraph),
    /// A GHN must be trained for the request's dataset first
    /// (step ④ of Fig. 7).
    OfflineTrainingRequired {
        /// The dataset needing a GHN.
        dataset: String,
        /// The validated graph, kept so the request can resume after training.
        graph: CompGraph,
    },
}

/// Stateless validator over a GHN registry.
pub struct TaskChecker;

impl TaskChecker {
    /// Validates the request; resolves the model to a graph; checks the GHN
    /// registry. "The Task Checker launches the inference procedure directly
    /// if a trained GHN model is available for a submitted workload" (§III-D).
    pub fn check(
        req: &PredictionRequest,
        registry: &GhnRegistry,
    ) -> Result<TaskDecision, RequestError> {
        if req.batch_size == 0 || req.epochs == 0 {
            return Err(RequestError::InvalidParams(
                "batch_size and epochs must be positive".into(),
            ));
        }
        if req.cluster.num_servers() == 0 {
            return Err(RequestError::InvalidCluster("no servers in cluster".into()));
        }

        let graph = match &req.model {
            ModelRef::Zoo(name) => {
                // Resolve against the request's dataset when known, falling
                // back to CIFAR-10 geometry for datasets we lack a
                // descriptor for (the graph structure is what matters).
                let ds = dataset_by_name(&req.dataset).unwrap_or(&pddl_zoo::CIFAR10);
                build_model(name, ds).ok_or_else(|| RequestError::UnknownModel(name.clone()))?
            }
            ModelRef::Graph(g) => {
                g.validate()
                    .map_err(|e| RequestError::InvalidGraph(e.to_string()))?;
                g.clone()
            }
        };

        if registry.has(&req.dataset) {
            Ok(TaskDecision::Proceed(graph))
        } else {
            Ok(TaskDecision::OfflineTrainingRequired { dataset: req.dataset.clone(), graph })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_cluster::{ClusterState, ServerClass};
    use pddl_ddlsim::Workload;
    use pddl_ghn::GhnConfig;
    use pddl_ghn::train::TrainConfig;
    use pddl_graph::{NodeAttrs, OpKind};

    fn registry_with_cifar() -> GhnRegistry {
        let mut r = GhnRegistry::new(GhnConfig::tiny(), TrainConfig::tiny(), 3);
        r.train_for_dataset("cifar10").unwrap();
        r
    }

    fn cluster() -> ClusterState {
        ClusterState::homogeneous(ServerClass::GpuP100, 2)
    }

    #[test]
    fn known_model_and_dataset_proceeds() {
        let reg = registry_with_cifar();
        let req = PredictionRequest::zoo(Workload::standard("vgg16", "cifar10"), cluster());
        match TaskChecker::check(&req, &reg).unwrap() {
            TaskDecision::Proceed(g) => assert_eq!(g.name, "vgg16"),
            other => panic!("expected Proceed, got {other:?}"),
        }
    }

    #[test]
    fn unknown_dataset_routes_to_offline_training() {
        let reg = registry_with_cifar();
        let req =
            PredictionRequest::zoo(Workload::standard("vgg16", "tiny-imagenet"), cluster());
        match TaskChecker::check(&req, &reg).unwrap() {
            TaskDecision::OfflineTrainingRequired { dataset, .. } => {
                assert_eq!(dataset, "tiny-imagenet")
            }
            other => panic!("expected offline-training branch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_model_rejected() {
        let reg = registry_with_cifar();
        let req = PredictionRequest::zoo(Workload::standard("transformer9b", "cifar10"), cluster());
        assert_eq!(
            TaskChecker::check(&req, &reg).unwrap_err(),
            RequestError::UnknownModel("transformer9b".into())
        );
    }

    #[test]
    fn invalid_graph_rejected() {
        let reg = registry_with_cifar();
        let mut g = CompGraph::new("broken");
        let _ = g.add_node(OpKind::Input, NodeAttrs::default(), "in"); // no output
        let req = PredictionRequest::graph(g, "cifar10", 64, 5, cluster());
        assert!(matches!(
            TaskChecker::check(&req, &reg).unwrap_err(),
            RequestError::InvalidGraph(_)
        ));
    }

    #[test]
    fn degenerate_params_rejected() {
        let reg = registry_with_cifar();
        let mut req = PredictionRequest::zoo(Workload::standard("vgg16", "cifar10"), cluster());
        req.batch_size = 0;
        assert!(matches!(
            TaskChecker::check(&req, &reg).unwrap_err(),
            RequestError::InvalidParams(_)
        ));
        let req2 = PredictionRequest::zoo(
            Workload::standard("vgg16", "cifar10"),
            ClusterState::default(),
        );
        assert!(matches!(
            TaskChecker::check(&req2, &reg).unwrap_err(),
            RequestError::InvalidCluster(_)
        ));
    }
}
