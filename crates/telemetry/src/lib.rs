//! # pddl-telemetry
//!
//! Workspace-wide observability for the PredictDDL service: a global,
//! cheap-to-hit metrics registry (atomic counters, gauges and log-bucketed
//! latency histograms), lightweight [`Span`]s that record wall-clock into
//! those histograms, structured JSON logging to stderr gated by the
//! `PDDL_LOG` environment filter, and a JSON snapshot exporter served live
//! over the controller wire protocol (`{"op":"stats"}`).
//!
//! On top of the flat metrics sit two request-level facilities:
//!
//! * [`trace`] — per-request [`TraceContext`]s and a lock-free
//!   [`FlightRecorder`] ring of span events with tail-sampled retention
//!   of shed / errored / slow traces, served via `{"op":"trace"}`;
//! * [`expo`] — Prometheus-style text exposition of the registry,
//!   served via `{"op":"metrics"}`.
//!
//! Built entirely on `std` — no `tracing`, no `prometheus`, no serde — so
//! every crate in the workspace can depend on it without weight.
//!
//! ## Hot-path cost
//!
//! Metric handles are `&'static` references resolved once through the
//! registry (a read lock); after that, every operation is lock-free:
//! [`Counter::inc`] is one relaxed `fetch_add`, a [`Histogram`] record is a
//! handful of relaxed atomic RMWs, and a [`Span`] enter/exit adds two
//! `Instant` reads on top. Cache the handle (`OnceLock` static or a struct
//! field) on hot paths; `crates/bench` has a micro-benchmark demonstrating
//! the cost.
//!
//! ## Example
//!
//! ```
//! use pddl_telemetry as tel;
//!
//! let requests = tel::counter("demo.requests");
//! let latency = tel::histogram("demo.latency");
//! {
//!     let _timer = latency.start_timer(); // records ns on drop
//!     requests.inc();
//! }
//! let snap = tel::snapshot();
//! assert!(snap.counter("demo.requests").unwrap() >= 1);
//! let json = snap.to_json();
//! let back = tel::Snapshot::from_json(&json).unwrap();
//! assert_eq!(back.counter("demo.requests"), snap.counter("demo.requests"));
//! ```
//!
//! ## `PDDL_LOG` filter syntax
//!
//! `PDDL_LOG=<default>[,<target-prefix>=<level>]*` where a level is one of
//! `off`, `error`, `warn`, `info`, `debug`, `trace`. The longest matching
//! target prefix wins. Examples:
//!
//! * `PDDL_LOG=info` — everything at info and above;
//! * `PDDL_LOG=warn,controller=debug` — debug for the controller (and
//!   `controller.request` etc.), warnings elsewhere;
//! * `PDDL_LOG=off` — silence all structured logging.
//!
//! Unset, logging defaults to off; parsing is lazy and happens once.

#![warn(missing_docs)]

pub mod expo;
mod json;
mod log;
mod metrics;
mod snapshot;
mod span;
pub mod trace;

pub use json::{push_json_string, JsonValue};
pub use log::{log_enabled, log_line, FieldValue, Level, LogFilter};
pub use metrics::{Counter, Gauge, HistTimer, Histogram, Registry};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use span::Span;
pub use trace::{flight_recorder, FlightRecorder, SpanEvent, SpanStatus, TraceContext};

use std::sync::OnceLock;

fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Global counter handle; registers the name on first use. The returned
/// reference is `'static` — resolve once and increment lock-free after.
pub fn counter(name: &str) -> &'static Counter {
    global().counter(name)
}

/// Global gauge handle; registers the name on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    global().gauge(name)
}

/// Global histogram handle; registers the name on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    global().histogram(name)
}

/// Consistent snapshot of every registered metric, names sorted.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// [`snapshot`] rendered as a JSON object.
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

/// Zeroes every registered metric (handles stay valid). Intended for tests
/// and for `--metrics-reset` style tooling; concurrent updates may land
/// before or after the reset.
pub fn reset() {
    global().reset()
}
