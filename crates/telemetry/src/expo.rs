//! Prometheus-style text exposition of a metrics [`Snapshot`].
//!
//! Hand-rolled (the workspace carries no `prometheus` crate): counters
//! and gauges become single samples, histograms become summaries
//! (`{quantile="…"}` samples plus `_sum`/`_count`), and a histogram's
//! overflow count — observations clamped at the top of the `u64` range —
//! is surfaced as a separate `_overflow` counter so silent saturation is
//! visible. Dotted registry names are sanitized to the Prometheus
//! grammar and prefixed `pddl_`; output is sorted by metric name, so a
//! given snapshot renders byte-identically (the golden test pins this).

use crate::snapshot::Snapshot;
use std::fmt::Write as _;

/// Maps a registry name like `controller.queue_wait` to a legal metric
/// name like `pddl_controller_queue_wait`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("pddl_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders `snap` in the Prometheus text exposition format (version
/// 0.0.4). Deterministic: metrics are emitted sorted by name.
pub fn prometheus(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(1024);
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", h.p50);
        let _ = writeln!(out, "{n}{{quantile=\"0.95\"}} {}", h.p95);
        let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", h.p99);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
        let _ = writeln!(out, "# TYPE {n}_overflow counter");
        let _ = writeln!(out, "{n}_overflow {}", h.overflow);
    }
    out
}

/// Renders the *global* registry snapshot — what `{"op":"metrics"}`
/// serves over the wire.
pub fn prometheus_global() -> String {
    prometheus(&crate::snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HistogramSnapshot;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("controller.requests".into(), 42), ("shed.queue_full".into(), 3)],
            gauges: vec![("controller.active_connections".into(), -1)],
            histograms: vec![(
                "controller.queue_wait".into(),
                HistogramSnapshot {
                    count: 5,
                    sum: 1000,
                    min: 10,
                    max: 700,
                    mean: 200.0,
                    p50: 128,
                    p95: 600,
                    p99: 700,
                    overflow: 2,
                },
            )],
        }
    }

    #[test]
    fn exposition_shape_is_stable() {
        let text = prometheus(&sample());
        assert_eq!(
            text,
            "# TYPE pddl_controller_requests counter\n\
             pddl_controller_requests 42\n\
             # TYPE pddl_shed_queue_full counter\n\
             pddl_shed_queue_full 3\n\
             # TYPE pddl_controller_active_connections gauge\n\
             pddl_controller_active_connections -1\n\
             # TYPE pddl_controller_queue_wait summary\n\
             pddl_controller_queue_wait{quantile=\"0.5\"} 128\n\
             pddl_controller_queue_wait{quantile=\"0.95\"} 600\n\
             pddl_controller_queue_wait{quantile=\"0.99\"} 700\n\
             pddl_controller_queue_wait_sum 1000\n\
             pddl_controller_queue_wait_count 5\n\
             # TYPE pddl_controller_queue_wait_overflow counter\n\
             pddl_controller_queue_wait_overflow 2\n"
        );
    }

    #[test]
    fn names_are_sanitized_to_the_grammar() {
        assert_eq!(sanitize("a.b-c d"), "pddl_a_b_c_d");
        assert_eq!(sanitize("ns:sub.metric"), "pddl_ns:sub_metric");
        let text = prometheus(&sample());
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "illegal metric name {name:?}"
            );
        }
    }

    #[test]
    fn global_exposition_includes_registered_metrics() {
        crate::counter("expo.test_counter").inc();
        let text = prometheus_global();
        assert!(text.contains("pddl_expo_test_counter"), "{text}");
    }
}
