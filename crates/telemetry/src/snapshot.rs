//! Point-in-time export of the registry: a typed [`Snapshot`] with a JSON
//! encoder and decoder, served over the controller's `{"op":"stats"}` wire
//! op and printed by `predictddl-cli --metrics-dump`.

use crate::json::{push_f64, push_json_string, JsonValue};

/// Summary of one histogram (latencies in nanoseconds by convention).
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Observations clamped at `u64::MAX` because the raw value
    /// overflowed the top bucket.
    pub overflow: u64,
}

/// A consistent-enough snapshot of every registered metric (each metric is
/// read atomically; the set is read under the registry lock). Collections
/// are sorted by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// (name, value) for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// (name, value) for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// (name, summary) for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Renders the snapshot as a JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&h.sum.to_string());
            out.push_str(",\"min\":");
            out.push_str(&h.min.to_string());
            out.push_str(",\"max\":");
            out.push_str(&h.max.to_string());
            out.push_str(",\"mean\":");
            push_f64(&mut out, h.mean);
            out.push_str(",\"p50\":");
            out.push_str(&h.p50.to_string());
            out.push_str(",\"p95\":");
            out.push_str(&h.p95.to_string());
            out.push_str(",\"p99\":");
            out.push_str(&h.p99.to_string());
            out.push_str(",\"overflow\":");
            out.push_str(&h.overflow.to_string());
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parses a snapshot from its [`Self::to_json`] form.
    pub fn from_json(s: &str) -> Result<Snapshot, String> {
        Self::from_value(&JsonValue::parse(s)?)
    }

    /// Builds a snapshot from an already-parsed JSON object (e.g. the
    /// `snapshot` field of a stats wire response).
    pub fn from_value(v: &JsonValue) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        let counters = v
            .get("counters")
            .and_then(JsonValue::as_object)
            .ok_or("missing 'counters' object")?;
        for (name, val) in counters {
            let n = val.as_u64().ok_or_else(|| format!("counter {name} not a u64"))?;
            snap.counters.push((name.clone(), n));
        }
        let gauges = v
            .get("gauges")
            .and_then(JsonValue::as_object)
            .ok_or("missing 'gauges' object")?;
        for (name, val) in gauges {
            let n = val.as_i64().ok_or_else(|| format!("gauge {name} not an i64"))?;
            snap.gauges.push((name.clone(), n));
        }
        let hists = v
            .get("histograms")
            .and_then(JsonValue::as_object)
            .ok_or("missing 'histograms' object")?;
        for (name, val) in hists {
            let field = |k: &str| -> Result<u64, String> {
                val.get(k)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("histogram {name} missing '{k}'"))
            };
            snap.histograms.push((
                name.clone(),
                HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    mean: val
                        .get("mean")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("histogram {name} missing 'mean'"))?,
                    p50: field("p50")?,
                    p95: field("p95")?,
                    p99: field("p99")?,
                    // Absent in snapshots from pre-overflow peers.
                    overflow: val.get("overflow").and_then(JsonValue::as_u64).unwrap_or(0),
                },
            ));
        }
        // BTreeMap iteration is already name-sorted; keep the invariant
        // explicit for binary_search-based lookups.
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("a.ok".into(), 3), ("b.err".into(), 0)],
            gauges: vec![("conns".into(), -2)],
            histograms: vec![(
                "lat".into(),
                HistogramSnapshot {
                    count: 5,
                    sum: 1000,
                    min: 10,
                    max: 700,
                    mean: 200.0,
                    p50: 128,
                    p95: 600,
                    p99: 700,
                    overflow: 1,
                },
            )],
        }
    }

    #[test]
    fn missing_overflow_field_defaults_to_zero() {
        // A snapshot rendered by a peer predating the overflow counter.
        let legacy = r#"{"counters":{},"gauges":{},"histograms":{"lat":
            {"count":1,"sum":2,"min":2,"max":2,"mean":2.0,"p50":2,"p95":2,"p99":2}}}"#;
        let snap = Snapshot::from_json(legacy).unwrap();
        assert_eq!(snap.histogram("lat").unwrap().overflow, 0);
    }

    #[test]
    fn json_round_trip() {
        let snap = sample();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn lookup_by_name() {
        let snap = sample();
        assert_eq!(snap.counter("a.ok"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("conns"), Some(-2));
        assert_eq!(snap.histogram("lat").unwrap().p95, 600);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn metric_names_with_quotes_survive() {
        let mut snap = Snapshot::default();
        snap.counters.push(("we\"ird\\name".into(), 9));
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.counter("we\"ird\\name"), Some(9));
    }
}
