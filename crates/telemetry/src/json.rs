//! Hand-rolled JSON: a string escaper for the writers and a minimal
//! recursive-descent parser for reading snapshots back (the client side of
//! the `{"op":"stats"}` wire exchange). Kept dependency-free on purpose —
//! this crate must be importable from every layer of the workspace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an f64 the way JSON expects (no NaN/Inf; those become 0).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

/// Parsed JSON value. Numbers are kept as `f64` — metric counts fitting in
/// 2⁵³ round-trip exactly, which covers any realistic counter.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<JsonValue>),
    /// JSON object, keys sorted.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value truncated to `u64`; `None` on negatives.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The numeric value truncated to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n as i64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The member map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes back to compact JSON text (object keys stay sorted,
    /// matching the parse representation).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => push_f64(out, *n),
            JsonValue::String(s) => push_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for metric names;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always on a char boundary).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\te\u{1}");
        let v = JsonValue::parse(&out).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn parses_nested_document() {
        let v = JsonValue::parse(
            r#"{"a": 1, "b": [true, null, -2.5e1], "c": {"d": "x y", "e": 0}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("x y"));
        match v.get("b").unwrap() {
            JsonValue::Array(items) => {
                assert_eq!(items[0], JsonValue::Bool(true));
                assert_eq!(items[2].as_f64(), Some(-25.0));
            }
            other => panic!("not an array: {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn to_json_round_trips() {
        let src = r#"{"a":1,"b":[true,null,-25,"x\ny"],"c":{"d":0.5}}"#;
        let v = JsonValue::parse(src).unwrap();
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
        assert_eq!(v.to_json(), src);
    }

    #[test]
    fn unicode_passthrough() {
        let v = JsonValue::parse("{\"k\": \"héllo → 世界\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo → 世界"));
    }
}
