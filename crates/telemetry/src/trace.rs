//! End-to-end request tracing: trace contexts, a lock-free flight
//! recorder of recent span events, and tail-sampled retention of
//! interesting traces.
//!
//! A [`TraceContext`] is minted at the client (`trace_id` identifies the
//! logical request across retries; `span_id` is the root span) and carried
//! through the wire envelope. Every pipeline stage records a child span
//! into the global [`FlightRecorder`] — a fixed-size ring of seqlock
//! slots written with a handful of relaxed atomic stores, so the hot path
//! never takes a lock and never allocates.
//!
//! The ring alone only answers "what happened recently". Tail sampling
//! makes it useful after the fact: when a trace ends badly (shed, error)
//! or slowly (over a configurable threshold), [`FlightRecorder::promote`]
//! copies its spans out of the ring into a small bounded retained set,
//! which `{"op":"trace"}` serves over the wire and the CLI renders as a
//! per-stage waterfall.
//!
//! ## Determinism
//!
//! Child span ids are derived by hashing the parent span id with the
//! stage's intern sequence, so the same logical request produces the same
//! span ids on every attempt. A retried request therefore *merges* into
//! one retained trace instead of appearing twice, and a fault-plan seed
//! that produces the same outcomes produces the same retained trace ids.
//!
//! ## Concurrency
//!
//! Writers claim a slot with one `fetch_add` and publish through a
//! seqlock version word (odd while mid-write, even when consistent).
//! Readers discard torn slots by re-checking the version. If the ring
//! wraps a full generation during a single slot write, two writers can
//! interleave on one slot; the version check still rejects most such
//! races and the worst case is one garbled *telemetry* event — never a
//! memory-safety issue (all fields are plain atomics).

use crate::json::{push_json_string, JsonValue};
use crate::metrics::Histogram;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Canonical stage names for the serving pipeline, in pipeline order.
/// Using these constants (rather than ad-hoc strings) keeps intern ids,
/// per-stage histograms, and the waterfall ordering consistent.
pub mod stages {
    /// Root span of a request (client mint to response write).
    pub const REQUEST: &str = "request";
    /// Connection accept to first traced frame.
    pub const ACCEPT: &str = "accept";
    /// Reading one request frame off the socket.
    pub const FRAME_READ: &str = "frame_read";
    /// Time spent queued before a worker picked the job up.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Worker-side handler execution (wraps embed + regress).
    pub const DISPATCH: &str = "dispatch";
    /// Embedding-cache probe; status distinguishes hit from miss.
    pub const EMBED_CACHE: &str = "embed_cache";
    /// GHN forward pass computing an embedding on a cache miss.
    pub const GHN_EMBED: &str = "ghn_embed";
    /// Regressor inference over the assembled feature vector.
    pub const REGRESS: &str = "regress";
    /// Serializing and writing the response frame.
    pub const SERIALIZE: &str = "serialize";
    /// Replaying a cached response for a deduplicated retry.
    pub const DEDUP_REPLAY: &str = "dedup_replay";
    /// One collector wire exchange (register or heartbeat).
    pub const COLLECT: &str = "collect";
    /// Router-side handling of one request: ring lookup, forward to the
    /// routed shard, and relay of its reply. Wraps the shard's own
    /// `request` span in a fleet waterfall.
    pub const ROUTE: &str = "route";
    /// One hot-reload attempt: candidate load, probe validation, and the
    /// live-slot swap (or rejection).
    pub const RELOAD: &str = "reload";
}

/// SplitMix64 finalizer: cheap, well-distributed id derivation.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Identity of one span within one trace, carried across the wire.
///
/// `trace_id` names the logical request and survives retries and
/// reconnects; `span_id` names this span; `parent_id` is the enclosing
/// span (0 for a root).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Logical request id, stable across retries.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Enclosing span id; 0 when this is the root.
    pub parent_id: u64,
}

impl TraceContext {
    /// Mints the root context for a trace. The root span id is derived
    /// from the trace id, so equal trace ids yield equal span trees.
    pub fn root(trace_id: u64) -> TraceContext {
        TraceContext { trace_id, span_id: mix(trace_id), parent_id: 0 }
    }

    /// Derives a deterministic child context: the same parent and `seq`
    /// always produce the same child span id.
    pub fn child(&self, seq: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: mix(self.span_id ^ seq.wrapping_mul(0x9E3779B97F4A7C15)),
            parent_id: self.span_id,
        }
    }
}

/// Outcome recorded on a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanStatus {
    /// Completed normally.
    Ok,
    /// Completed with an application error.
    Error,
    /// Rejected by admission control (`overloaded`).
    Shed,
    /// Expired in the queue past its deadline.
    Expired,
    /// Cache probe that hit.
    CacheHit,
    /// Cache probe that missed.
    CacheMiss,
}

impl SpanStatus {
    /// Wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Error => "error",
            SpanStatus::Shed => "shed",
            SpanStatus::Expired => "expired",
            SpanStatus::CacheHit => "hit",
            SpanStatus::CacheMiss => "miss",
        }
    }

    fn code(self) -> u64 {
        match self {
            SpanStatus::Ok => 0,
            SpanStatus::Error => 1,
            SpanStatus::Shed => 2,
            SpanStatus::Expired => 3,
            SpanStatus::CacheHit => 4,
            SpanStatus::CacheMiss => 5,
        }
    }

    fn from_code(code: u64) -> Option<SpanStatus> {
        Some(match code {
            0 => SpanStatus::Ok,
            1 => SpanStatus::Error,
            2 => SpanStatus::Shed,
            3 => SpanStatus::Expired,
            4 => SpanStatus::CacheHit,
            5 => SpanStatus::CacheMiss,
            _ => return None,
        })
    }
}

/// Interned stage entry: the name plus its per-stage latency histogram
/// (`trace.stage.<name>` in the global registry), resolved once.
struct StageEntry {
    name: &'static str,
    hist: &'static Histogram,
}

fn stage_table() -> &'static RwLock<Vec<StageEntry>> {
    static TABLE: OnceLock<RwLock<Vec<StageEntry>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Vec::new()))
}

/// Interns a stage name, returning its stable sequence id. The table is
/// tiny (one entry per pipeline stage); resolution is a short scan under
/// a read lock — cache the result or rely on [`FlightRecorder::record_stage`]
/// doing it once per call.
pub fn stage_id(name: &'static str) -> u64 {
    let table = stage_table();
    if let Some(i) = table
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .position(|e| e.name == name)
    {
        return i as u64;
    }
    let mut w = table.write().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = w.iter().position(|e| e.name == name) {
        return i as u64;
    }
    let hist = crate::histogram(&format!("trace.stage.{name}"));
    w.push(StageEntry { name, hist });
    (w.len() - 1) as u64
}

/// A pre-resolved stage: intern id plus latency histogram, both looked up
/// once. Hot call sites cache one of these in a `OnceLock` so recording a
/// span touches no lock at all — [`stage_id`]'s read-lock-and-scan is paid
/// at resolution time, not per span.
#[derive(Clone, Copy)]
pub struct StageHandle {
    id: u64,
    hist: &'static Histogram,
}

impl StageHandle {
    /// The stage's intern id (what [`stage_name`] reverses).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Resolves a stage to its [`StageHandle`], interning it if needed.
pub fn stage_handle(name: &'static str) -> StageHandle {
    let id = stage_id(name);
    StageHandle { id, hist: stage_hist(id).expect("stage interned by stage_id") }
}

/// Reverse lookup of an interned stage id.
pub fn stage_name(id: u64) -> Option<&'static str> {
    stage_table()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(id as usize)
        .map(|e| e.name)
}

fn stage_hist(id: u64) -> Option<&'static Histogram> {
    stage_table()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(id as usize)
        .map(|e| e.hist)
}

/// One completed span, as read back out of the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Logical request id.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Enclosing span id (0 = root).
    pub parent_id: u64,
    /// Stage name (interned).
    pub stage: &'static str,
    /// Start time in microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Outcome.
    pub status: SpanStatus,
}

/// Seqlock slot layout: `seq` is odd while a writer is mid-flight and
/// even (and nonzero) when the payload is consistent.
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_id: AtomicU64,
    stage: AtomicU64,
    start_us: AtomicU64,
    dur_ns: AtomicU64,
    status: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_id: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            start_us: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            status: AtomicU64::new(0),
        }
    }
}

/// A trace promoted out of the ring because it ended badly or slowly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetainedTrace {
    /// Logical request id.
    pub trace_id: u64,
    /// Why the trace was retained: `shed`, `error`, `slow`, or `drain`.
    pub verdict: &'static str,
    /// The trace's spans, sorted by start time then span id.
    pub spans: Vec<SpanEvent>,
}

struct Retained {
    traces: VecDeque<RetainedTrace>,
    cap: usize,
}

/// Always-on, lock-free ring buffer of recent [`SpanEvent`]s with a
/// bounded tail-sampled retained set. See the module docs for the design;
/// most code uses the process-wide [`flight_recorder`].
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
    epoch: Instant,
    retained: Mutex<Retained>,
    /// Promotions suppressed because the retained set was full.
    suppressed: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder with `ring_cap` span slots and at most
    /// `retain_cap` retained traces. Both caps are clamped to ≥ 1.
    pub fn new(ring_cap: usize, retain_cap: usize) -> FlightRecorder {
        let ring_cap = ring_cap.max(1);
        FlightRecorder {
            slots: (0..ring_cap).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            epoch: Instant::now(),
            retained: Mutex::new(Retained {
                traces: VecDeque::new(),
                cap: retain_cap.max(1),
            }),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Microseconds since this recorder's epoch — use as a span's start
    /// timestamp.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records one span. Lock-free: one `fetch_add` to claim a slot plus
    /// eight atomic stores. Also feeds the stage's `trace.stage.<name>`
    /// histogram so per-stage percentiles are available without scanning
    /// the ring.
    pub fn record_span(
        &self,
        ctx: TraceContext,
        stage: &'static str,
        start_us: u64,
        dur: Duration,
        status: SpanStatus,
    ) {
        self.record_span_resolved(ctx, stage_handle(stage), start_us, dur, status);
    }

    /// [`FlightRecorder::record_span`] with the stage pre-resolved — the
    /// lock-free hot path. Call sites on the serving fast path cache the
    /// [`StageHandle`] once and go through here.
    pub fn record_span_resolved(
        &self,
        ctx: TraceContext,
        stage: StageHandle,
        start_us: u64,
        dur: Duration,
        status: SpanStatus,
    ) {
        let sid = stage.id;
        stage.hist.record_duration(dur);
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        // Seqlock write: odd while in flight, even (generation-stamped)
        // when done. Readers that observe an odd or changed seq discard.
        slot.seq.store(idx.wrapping_mul(2).wrapping_add(1), Ordering::Release);
        slot.trace_id.store(ctx.trace_id, Ordering::Relaxed);
        slot.span_id.store(ctx.span_id, Ordering::Relaxed);
        slot.parent_id.store(ctx.parent_id, Ordering::Relaxed);
        slot.stage.store(sid, Ordering::Relaxed);
        slot.start_us.store(start_us, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.status.store(status.code(), Ordering::Relaxed);
        slot.seq.store(idx.wrapping_mul(2).wrapping_add(2), Ordering::Release);
    }

    /// Records a child span of `parent` for `stage`, deriving the child
    /// span id from the stage's intern id (deterministic across retries).
    pub fn record_stage(
        &self,
        parent: TraceContext,
        stage: &'static str,
        start_us: u64,
        dur: Duration,
        status: SpanStatus,
    ) {
        self.record_stage_resolved(parent, stage_handle(stage), start_us, dur, status);
    }

    /// [`FlightRecorder::record_stage`] with the stage pre-resolved — the
    /// lock-free hot path (same child-id derivation, no intern lookup).
    pub fn record_stage_resolved(
        &self,
        parent: TraceContext,
        stage: StageHandle,
        start_us: u64,
        dur: Duration,
        status: SpanStatus,
    ) {
        let child = parent.child(stage.id.wrapping_add(1));
        self.record_span_resolved(child, stage, start_us, dur, status);
    }

    fn read_slot(&self, slot: &Slot) -> Option<SpanEvent> {
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        let ev = SpanEvent {
            trace_id: slot.trace_id.load(Ordering::Relaxed),
            span_id: slot.span_id.load(Ordering::Relaxed),
            parent_id: slot.parent_id.load(Ordering::Relaxed),
            stage: stage_name(slot.stage.load(Ordering::Relaxed))?,
            start_us: slot.start_us.load(Ordering::Relaxed),
            dur_ns: slot.dur_ns.load(Ordering::Relaxed),
            status: SpanStatus::from_code(slot.status.load(Ordering::Relaxed))?,
        };
        let s2 = slot.seq.load(Ordering::Acquire);
        (s1 == s2).then_some(ev)
    }

    /// Consistent snapshot of every readable span in the ring, sorted by
    /// start time then span id. Torn (mid-write) slots are skipped.
    pub fn recent(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> =
            self.slots.iter().filter_map(|s| self.read_slot(s)).collect();
        out.sort_by_key(|e| (e.start_us, e.span_id));
        out
    }

    /// Spans of one trace currently in the ring, sorted by start time.
    pub fn spans_for(&self, trace_id: u64) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = self
            .slots
            .iter()
            .filter_map(|s| self.read_slot(s))
            .filter(|e| e.trace_id == trace_id)
            .collect();
        out.sort_by_key(|e| (e.start_us, e.span_id));
        out
    }

    /// Tail-sampling promotion: copies `trace_id`'s spans out of the ring
    /// into the retained set under `verdict`. Re-promoting a retained
    /// trace merges any new spans (keyed by span id) and keeps the first
    /// verdict — a retried request stays one trace. Once the retained set
    /// is full, promotions of *new* traces become a cheap counter bump
    /// (no scan, no eviction) so shed storms stay cheap and the first
    /// retained traces stay stable.
    pub fn promote(&self, trace_id: u64, verdict: &'static str) {
        {
            let r = self.retained.lock().unwrap_or_else(|e| e.into_inner());
            if r.traces.len() >= r.cap && !r.traces.iter().any(|t| t.trace_id == trace_id) {
                drop(r);
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                crate::counter("trace.promotions_suppressed").inc();
                return;
            }
        }
        let spans = self.spans_for(trace_id);
        let mut r = self.retained.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = r.traces.iter_mut().find(|t| t.trace_id == trace_id) {
            for ev in spans {
                if !t.spans.iter().any(|s| s.span_id == ev.span_id) {
                    t.spans.push(ev);
                }
            }
            t.spans.sort_by_key(|e| (e.start_us, e.span_id));
            return;
        }
        if r.traces.len() >= r.cap {
            // Raced to full between the check and the scan.
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            crate::counter("trace.promotions_suppressed").inc();
            return;
        }
        r.traces.push_back(RetainedTrace { trace_id, verdict, spans });
        crate::counter("trace.promoted").inc();
        crate::counter(match verdict {
            "shed" => "trace.promoted_shed",
            "error" => "trace.promoted_error",
            "slow" => "trace.promoted_slow",
            _ => "trace.promoted_other",
        })
        .inc();
    }

    /// The retained traces, oldest first.
    pub fn retained(&self) -> Vec<RetainedTrace> {
        self.retained
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .traces
            .iter()
            .cloned()
            .collect()
    }

    /// Promotions dropped because the retained set was full.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Renders the retained set as the `{"op":"trace"}` wire reply:
    /// `{"status":"trace","suppressed":N,"retained":[...]}`. Ids are
    /// zero-padded hex strings (u64 ids do not survive f64 JSON numbers).
    pub fn retained_json(&self) -> String {
        let traces = self.retained();
        let mut out = String::with_capacity(256);
        out.push_str("{\"status\":\"trace\",\"suppressed\":");
        out.push_str(&self.suppressed().to_string());
        out.push_str(",\"retained\":[");
        for (i, t) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"trace_id\":\"");
            out.push_str(&format!("{:016x}", t.trace_id));
            out.push_str("\",\"verdict\":");
            push_json_string(&mut out, t.verdict);
            out.push_str(",\"spans\":[");
            for (j, s) in t.spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"span_id\":\"");
                out.push_str(&format!("{:016x}", s.span_id));
                out.push_str("\",\"parent_id\":\"");
                out.push_str(&format!("{:016x}", s.parent_id));
                out.push_str("\",\"stage\":");
                push_json_string(&mut out, s.stage);
                out.push_str(",\"start_us\":");
                out.push_str(&s.start_us.to_string());
                out.push_str(",\"dur_ns\":");
                out.push_str(&s.dur_ns.to_string());
                out.push_str(",\"status\":");
                push_json_string(&mut out, s.status.as_str());
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Empties the ring and the retained set (handles stay valid). For
    /// tests and bench harnesses; concurrent writes may land either side.
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.seq.store(0, Ordering::Release);
        }
        self.head.store(0, Ordering::Relaxed);
        let mut r = self.retained.lock().unwrap_or_else(|e| e.into_inner());
        r.traces.clear();
        self.suppressed.store(0, Ordering::Relaxed);
    }
}

/// The process-wide flight recorder used by the serving pipeline: 2048
/// span slots, 64 retained traces.
pub fn flight_recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::new(2048, 64))
}

/// One span parsed back out of a trace dump (stage and status as owned
/// strings — the reader side has no intern table).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSpan {
    /// This span's id.
    pub span_id: u64,
    /// Enclosing span id (0 = root).
    pub parent_id: u64,
    /// Stage name.
    pub stage: String,
    /// Start time in microseconds since the recorder epoch.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Outcome string (`ok`, `error`, `shed`, `expired`, `hit`, `miss`).
    pub status: String,
}

/// One trace parsed back out of a `{"op":"trace"}` reply.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedTrace {
    /// Logical request id.
    pub trace_id: u64,
    /// Retention verdict.
    pub verdict: String,
    /// Spans sorted by start time.
    pub spans: Vec<ParsedSpan>,
}

fn hex_id(v: &JsonValue, key: &str) -> Result<u64, String> {
    let s = v
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing '{key}' id string"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad '{key}' id {s:?}: {e}"))
}

/// Parses the retained-trace list from a `{"status":"trace",...}` reply
/// (the inverse of [`FlightRecorder::retained_json`]).
pub fn parse_trace_dump(v: &JsonValue) -> Result<Vec<ParsedTrace>, String> {
    let retained = match v.get("retained") {
        Some(JsonValue::Array(a)) => a,
        _ => return Err("missing 'retained' array".into()),
    };
    let mut out = Vec::with_capacity(retained.len());
    for t in retained {
        let trace_id = hex_id(t, "trace_id")?;
        let verdict = t
            .get("verdict")
            .and_then(JsonValue::as_str)
            .ok_or("missing 'verdict'")?
            .to_string();
        let spans_v = match t.get("spans") {
            Some(JsonValue::Array(a)) => a,
            _ => return Err("missing 'spans' array".into()),
        };
        let mut spans = Vec::with_capacity(spans_v.len());
        for s in spans_v {
            let field = |k: &str| -> Result<u64, String> {
                s.get(k)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("span missing '{k}'"))
            };
            spans.push(ParsedSpan {
                span_id: hex_id(s, "span_id")?,
                parent_id: hex_id(s, "parent_id")?,
                stage: s
                    .get("stage")
                    .and_then(JsonValue::as_str)
                    .ok_or("span missing 'stage'")?
                    .to_string(),
                start_us: field("start_us")?,
                dur_ns: field("dur_ns")?,
                status: s
                    .get("status")
                    .and_then(JsonValue::as_str)
                    .ok_or("span missing 'status'")?
                    .to_string(),
            });
        }
        out.push(ParsedTrace { trace_id, verdict, spans });
    }
    Ok(out)
}

/// Renders retained traces as a fixed-width per-stage waterfall, one
/// block per trace: each span is indented by tree depth with a bar
/// scaled against the trace's total duration. Deterministic for a given
/// input, so tests can pin the exact output.
pub fn render_waterfall(traces: &[ParsedTrace]) -> String {
    const BAR: usize = 32;
    let mut out = String::new();
    for t in traces {
        let t0 = t.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = t
            .spans
            .iter()
            .map(|s| s.start_us.saturating_sub(t0) * 1000 + s.dur_ns)
            .max()
            .unwrap_or(0)
            .max(1);
        out.push_str(&format!(
            "trace {:016x}  verdict={}  spans={}  total={}us\n",
            t.trace_id,
            t.verdict,
            t.spans.len(),
            end / 1000
        ));
        for s in &t.spans {
            let depth = depth_of(t, s);
            let off_ns = s.start_us.saturating_sub(t0) * 1000;
            let lead = (off_ns as u128 * BAR as u128 / end as u128) as usize;
            let fill = ((s.dur_ns as u128 * BAR as u128).div_ceil(end as u128) as usize)
                .clamp(1, BAR - lead.min(BAR - 1));
            let label = format!("{}{}", "  ".repeat(depth), s.stage);
            out.push_str(&format!(
                "  {label:<22} [{}{}{}] {:>9}us {}\n",
                " ".repeat(lead.min(BAR - 1)),
                "#".repeat(fill),
                " ".repeat(BAR.saturating_sub(lead.min(BAR - 1) + fill)),
                s.dur_ns / 1000,
                s.status,
            ));
        }
    }
    out
}

/// Tree depth of a span inside its trace (root = 0); bounded walk so a
/// malformed parent cycle cannot hang the renderer.
fn depth_of(t: &ParsedTrace, s: &ParsedSpan) -> usize {
    let mut depth = 0;
    let mut parent = s.parent_id;
    while parent != 0 && depth < 8 {
        match t.spans.iter().find(|p| p.span_id == parent) {
            Some(p) => {
                depth += 1;
                parent = p.parent_id;
            }
            None => break,
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn child_ids_are_deterministic_and_distinct() {
        let root = TraceContext::root(42);
        assert_eq!(root, TraceContext::root(42));
        assert_eq!(root.parent_id, 0);
        let a = root.child(1);
        let b = root.child(2);
        assert_eq!(a, root.child(1), "same seq, same child");
        assert_ne!(a.span_id, b.span_id);
        assert_eq!(a.parent_id, root.span_id);
        assert_eq!(a.trace_id, root.trace_id);
    }

    #[test]
    fn ring_records_and_reads_back() {
        let r = FlightRecorder::new(8, 4);
        let ctx = TraceContext::root(7);
        r.record_span(ctx, stages::REQUEST, 10, ms(2), SpanStatus::Ok);
        r.record_stage(ctx, stages::QUEUE_WAIT, 11, ms(1), SpanStatus::Ok);
        let events = r.recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, stages::REQUEST);
        assert_eq!(events[1].stage, stages::QUEUE_WAIT);
        assert_eq!(events[1].parent_id, ctx.span_id);
        assert_eq!(events[1].dur_ns, 1_000_000);
    }

    #[test]
    fn ring_wraps_keeping_latest() {
        let r = FlightRecorder::new(4, 4);
        for i in 0..10u64 {
            r.record_span(TraceContext::root(i), stages::REQUEST, i, ms(1), SpanStatus::Ok);
        }
        let events = r.recent();
        assert_eq!(events.len(), 4, "ring keeps exactly cap events");
        let ids: Vec<u64> = events.iter().map(|e| e.start_us).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "oldest events overwritten first");
    }

    #[test]
    fn promotion_copies_spans_and_merges_retries() {
        let r = FlightRecorder::new(32, 4);
        let ctx = TraceContext::root(99);
        r.record_span(ctx, stages::REQUEST, 0, ms(3), SpanStatus::Error);
        r.record_stage(ctx, stages::REGRESS, 1, ms(1), SpanStatus::Ok);
        r.promote(99, "error");
        // A retry re-records the same deterministic span ids plus one new
        // stage; re-promotion merges instead of duplicating.
        r.record_span(ctx, stages::REQUEST, 50, ms(3), SpanStatus::Error);
        r.record_stage(ctx, stages::SERIALIZE, 51, ms(1), SpanStatus::Ok);
        r.promote(99, "shed");
        let retained = r.retained();
        assert_eq!(retained.len(), 1);
        let t = &retained[0];
        assert_eq!(t.verdict, "error", "first verdict wins");
        assert_eq!(t.spans.len(), 3, "merged, not doubled: {:?}", t.spans);
        let mut ids: Vec<u64> = t.spans.iter().map(|s| s.span_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 3, "span ids unique after merge");
    }

    #[test]
    fn full_retained_set_suppresses_new_promotions() {
        let r = FlightRecorder::new(32, 2);
        for i in 0..5u64 {
            let ctx = TraceContext::root(i);
            r.record_span(ctx, stages::REQUEST, i, ms(1), SpanStatus::Shed);
            r.promote(i, "shed");
        }
        let retained = r.retained();
        assert_eq!(retained.len(), 2, "bounded");
        let ids: Vec<u64> = retained.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![0, 1], "first promotions stick");
        assert_eq!(r.suppressed(), 3);
        // Re-promoting an already-retained trace still merges.
        r.promote(1, "shed");
        assert_eq!(r.suppressed(), 3);
    }

    #[test]
    fn same_inputs_same_retained_ids() {
        let run = || {
            let r = FlightRecorder::new(64, 8);
            for i in 0..6u64 {
                let ctx = TraceContext::root(0x1000 + i);
                let status = if i % 2 == 0 { SpanStatus::Error } else { SpanStatus::Ok };
                r.record_span(ctx, stages::REQUEST, i, ms(1), status);
                if i % 2 == 0 {
                    r.promote(ctx.trace_id, "error");
                }
            }
            let mut ids: Vec<u64> = r.retained().iter().map(|t| t.trace_id).collect();
            ids.sort_unstable();
            (ids, r.retained_json())
        };
        assert_eq!(run(), run(), "same events, same retained set and dump");
    }

    #[test]
    fn dump_round_trips_through_parser() {
        let r = FlightRecorder::new(32, 4);
        let ctx = TraceContext::root(0xDEAD_BEEF);
        r.record_span(ctx, stages::REQUEST, 5, ms(4), SpanStatus::Shed);
        r.record_stage(ctx, stages::QUEUE_WAIT, 6, ms(2), SpanStatus::Expired);
        r.promote(ctx.trace_id, "shed");
        let json = r.retained_json();
        let v = JsonValue::parse(&json).expect("dump parses");
        assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("trace"));
        let traces = parse_trace_dump(&v).expect("dump decodes");
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].trace_id, 0xDEAD_BEEF);
        assert_eq!(traces[0].verdict, "shed");
        assert_eq!(traces[0].spans.len(), 2);
        assert_eq!(traces[0].spans[1].stage, stages::QUEUE_WAIT);
        assert_eq!(traces[0].spans[1].status, "expired");
        assert_eq!(traces[0].spans[1].parent_id, ctx.span_id);
    }

    #[test]
    fn waterfall_renders_parented_tree() {
        let r = FlightRecorder::new(32, 4);
        let ctx = TraceContext::root(0xAB);
        r.record_span(ctx, stages::REQUEST, 0, ms(10), SpanStatus::Ok);
        r.record_stage(ctx, stages::QUEUE_WAIT, 1, ms(2), SpanStatus::Ok);
        r.record_stage(ctx, stages::REGRESS, 4, ms(5), SpanStatus::Ok);
        r.promote(ctx.trace_id, "slow");
        let v = JsonValue::parse(&r.retained_json()).unwrap();
        let rendered = render_waterfall(&parse_trace_dump(&v).unwrap());
        assert!(rendered.contains("verdict=slow"), "{rendered}");
        assert!(rendered.contains("request"), "{rendered}");
        assert!(rendered.contains("  queue_wait"), "children indented: {rendered}");
        assert!(rendered.contains('#'), "bars present: {rendered}");
        // Deterministic: same input, same art.
        assert_eq!(rendered, render_waterfall(&parse_trace_dump(&v).unwrap()));
    }

    #[test]
    fn concurrent_writers_never_corrupt_readers() {
        let r = FlightRecorder::new(16, 4);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let ctx = TraceContext::root((t << 32) | i);
                        r.record_span(ctx, stages::DISPATCH, i, ms(1), SpanStatus::Ok);
                    }
                });
            }
            let r = &r;
            s.spawn(move || {
                for _ in 0..200 {
                    for ev in r.recent() {
                        // Every surfaced event decodes to a known stage
                        // and status; torn slots must be filtered out.
                        assert_eq!(ev.stage, stages::DISPATCH);
                        assert_eq!(ev.status, SpanStatus::Ok);
                        assert_eq!(ev.dur_ns, 1_000_000);
                    }
                }
            });
        });
    }

    #[test]
    fn reset_empties_ring_and_retained() {
        let r = FlightRecorder::new(8, 4);
        let ctx = TraceContext::root(1);
        r.record_span(ctx, stages::REQUEST, 0, ms(1), SpanStatus::Error);
        r.promote(1, "error");
        r.reset();
        assert!(r.recent().is_empty());
        assert!(r.retained().is_empty());
        assert_eq!(r.suppressed(), 0);
    }

    #[test]
    fn stage_interning_is_stable() {
        let a = stage_id(stages::REGRESS);
        let b = stage_id(stages::REGRESS);
        assert_eq!(a, b);
        assert_eq!(stage_name(a), Some(stages::REGRESS));
        assert_ne!(stage_id(stages::SERIALIZE), a);
    }
}
