//! Atomic metric primitives and the name → handle registry.
//!
//! All update paths are lock-free (relaxed atomics). The registry itself
//! uses an `RwLock` only to resolve a name to a `&'static` handle — done
//! once per call site, not per update.

use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::{Duration, Instant};

/// Monotonic event counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one (relaxed).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (relaxed).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Signed instantaneous value (e.g. live connections).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Adds one (relaxed).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one (relaxed).
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n`, which may be negative (relaxed).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (relaxed).
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (relaxed) — turns a gauge
    /// into a high-water mark, e.g. `controller.queue_depth_peak`.
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.set(0);
    }
}

/// Number of log₂ buckets: bucket `i` holds values whose bit length is `i`
/// (bucket 0 holds zero), so the full `u64` range is covered.
const NUM_BUCKETS: usize = 65;

/// Log-bucketed histogram of `u64` observations (latencies are recorded in
/// nanoseconds by convention; any magnitude-style value works).
///
/// Each bucket spans one power of two, giving ≤ 2× relative quantile error
/// over the whole `u64` range with a fixed 65-slot footprint and O(1)
/// lock-free recording.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Observations clamped into the top bucket because the raw value
    /// exceeded `u64` (e.g. a `Duration` over ~584 years of nanoseconds).
    overflow: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive value range covered by bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

impl Histogram {
    /// Records one observation. Lock-free: five relaxed atomic RMWs.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in nanoseconds. A duration whose
    /// nanosecond count exceeds `u64` is clamped to `u64::MAX` — it still
    /// lands in the top bucket instead of vanishing — and counted in
    /// [`Histogram::overflow`] so the saturation is visible.
    pub fn record_duration(&self, d: Duration) {
        match u64::try_from(d.as_nanos()) {
            Ok(ns) => self.record(ns),
            Err(_) => {
                self.overflow.fetch_add(1, Ordering::Relaxed);
                self.record(u64::MAX);
            }
        }
    }

    /// Number of clamped (overflowing) observations.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Starts a timer that records elapsed nanoseconds when dropped.
    pub fn start_timer(&self) -> HistTimer<'_> {
        HistTimer { hist: self, start: Instant::now() }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimated q-quantile (q in [0, 1]), interpolated linearly inside the
    /// matching power-of-two bucket. Monotone in q. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot_quantile(&self.load_buckets(), q)
    }

    fn load_buckets(&self) -> [u64; NUM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    fn snapshot_quantile(&self, buckets: &[u64; NUM_BUCKETS], q: f64) -> u64 {
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in [1, total]: the observation index the quantile refers to.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                // Position of the rank inside this bucket, in (0, 1].
                let frac = (rank - cum) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                // Clamp into observed range so estimates never exceed max.
                let min = self.min.load(Ordering::Relaxed);
                let max = self.max.load(Ordering::Relaxed);
                return (est.round() as u64).clamp(min.min(max), max);
            }
            cum += c;
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time summary with p50/p95/p99.
    pub fn summarize(&self) -> HistogramSnapshot {
        let buckets = self.load_buckets();
        let count = buckets.iter().sum::<u64>();
        let sum = self.sum.load(Ordering::Relaxed);
        let (min, max) = if count == 0 {
            (0, 0)
        } else {
            (self.min.load(Ordering::Relaxed), self.max.load(Ordering::Relaxed))
        };
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: self.snapshot_quantile(&buckets, 0.50),
            p95: self.snapshot_quantile(&buckets, 0.95),
            p99: self.snapshot_quantile(&buckets, 0.99),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.overflow.store(0, Ordering::Relaxed);
    }
}

/// Guard from [`Histogram::start_timer`]; records on drop.
pub struct HistTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl HistTimer<'_> {
    /// Stops the timer, recording the elapsed time now.
    pub fn observe(self) {}
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// Name → handle registry. Metrics are leaked (`&'static`) on first
/// registration: the set of metric names is small and fixed, and `'static`
/// handles are what keep the hot path lock-free.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, &'static Counter>>,
    gauges: RwLock<HashMap<String, &'static Gauge>>,
    histograms: RwLock<HashMap<String, &'static Histogram>>,
}

fn resolve<T: Default>(map: &RwLock<HashMap<String, &'static T>>, name: &str) -> &'static T {
    if let Some(&m) = map.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return m;
    }
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    w.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(T::default())))
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter handle for `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        resolve(&self.counters, name)
    }

    /// Gauge handle for `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        resolve(&self.gauges, name)
    }

    /// Histogram handle for `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        resolve(&self.histograms, name)
    }

    /// Reads every registered metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.summarize()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { counters, gauges, histograms }
    }

    /// Zeroes every registered metric (tests and bench harnesses).
    pub fn reset(&self) {
        for c in self.counters.read().unwrap_or_else(|e| e.into_inner()).values() {
            c.reset();
        }
        for g in self.gauges.read().unwrap_or_else(|e| e.into_inner()).values() {
            g.reset();
        }
        for h in self.histograms.read().unwrap_or_else(|e| e.into_inner()).values() {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(std::ptr::eq(c, r.counter("c")), "same handle on re-resolve");
        let g = r.gauge("g");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let r = Registry::new();
        let g = r.gauge("peak");
        g.set_max(5);
        assert_eq!(g.get(), 5);
        g.set_max(3);
        assert_eq!(g.get(), 5, "lower values do not regress the peak");
        g.set_max(9);
        assert_eq!(g.get(), 9);
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    for v in 0..1000 {
                        g.set_max(t * 1000 + v);
                    }
                });
            }
        });
        assert_eq!(g.get(), 7999, "concurrent maxima converge to the largest");
    }

    #[test]
    fn concurrent_counter_increments_all_land() {
        let r = Registry::new();
        let c = r.counter("par");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn bucket_of_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_range() {
        let mut expected_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} lower bound");
            assert!(hi >= lo);
            // Every value inside the bounds maps back to bucket i.
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
    }

    #[test]
    fn histogram_summary_tracks_extremes_and_mean() {
        let h = Histogram::default();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summarize();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert!((s.mean - 25.0).abs() < 1e-9);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p99 <= 40 && s.p50 >= 10);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = Histogram::default().summarize();
        assert_eq!((s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99), (0, 0, 0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn quantiles_bracket_uniform_data_within_bucket_error() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Power-of-two buckets give ≤ 2× relative error.
        let p50 = h.quantile(0.5);
        assert!((250..=1000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((495..=1000).contains(&p99), "p99 {p99}");
        assert!(h.quantile(0.0) >= 1);
        assert_eq!(h.quantile(1.0), h.summarize().max);
    }

    /// Hand-rolled property test (proptest is unavailable offline):
    /// quantiles are monotone in q and bounded by [min, max] for random
    /// observation sets.
    #[test]
    fn quantile_monotonicity_property() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        for case in 0..200 {
            let h = Histogram::default();
            let n = 1 + (next() % 500) as usize;
            for _ in 0..n {
                // Mix magnitudes: from tiny to huge.
                let shift = next() % 60;
                h.record(next() >> shift);
            }
            let s = h.summarize();
            let qs: Vec<u64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
            for w in qs.windows(2) {
                assert!(w[0] <= w[1], "case {case}: non-monotone quantiles {qs:?}");
            }
            assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "case {case}: {s:?}");
            assert!(*qs.first().unwrap() >= s.min, "case {case}");
            assert!(*qs.last().unwrap() <= s.max, "case {case}");
        }
    }

    #[test]
    fn overflowing_duration_is_clamped_and_counted() {
        let h = Histogram::default();
        // ~584 years: one nanosecond past what u64 can hold.
        let too_long = Duration::from_secs(u64::MAX / 1_000_000_000 + 1);
        h.record_duration(too_long);
        h.record_duration(Duration::from_nanos(5));
        let s = h.summarize();
        assert_eq!(s.count, 2, "clamped observation still recorded");
        assert_eq!(s.max, u64::MAX, "clamped into the top bucket");
        assert_eq!(s.overflow, 1);
        assert_eq!(h.overflow(), 1);
        h.reset();
        assert_eq!(h.overflow(), 0, "reset clears the overflow count");
    }

    #[test]
    fn timer_records_into_histogram() {
        let h = Histogram::default();
        {
            let _t = h.start_timer();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        let s = h.summarize();
        assert!(s.min >= 1_000_000, "at least 1ms in ns, got {}", s.min);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("x");
        let h = r.histogram("y");
        c.add(3);
        h.record(9);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(r.counter("x").get(), 1);
    }
}
