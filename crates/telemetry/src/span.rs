//! Lightweight timing spans. A span measures the wall-clock between its
//! creation and drop, records it into a histogram of the same name, and
//! (when `PDDL_LOG` enables debug for the span's target) emits a
//! structured completion line.

use crate::metrics::Histogram;
use crate::{histogram, log_enabled, tlog, Level};
use std::time::Instant;

/// An in-flight timing span.
///
/// ```
/// # use pddl_telemetry::Span;
/// {
///     let _span = Span::enter("doc.example");
///     // ... timed work ...
/// } // records into histogram "doc.example" here
/// assert!(pddl_telemetry::snapshot().histogram("doc.example").unwrap().count >= 1);
/// ```
pub struct Span {
    hist: &'static Histogram,
    name: &'static str,
    start: Instant,
    /// Whether the completion line would pass the `PDDL_LOG` filter,
    /// decided once at construction so [`Drop`] does no filter walk and
    /// no argument formatting when logging is disabled — the common case
    /// on the hot path.
    log_on: bool,
}

impl Span {
    /// Opens a span recording into the global histogram `name`. Resolves
    /// the handle through the registry — for hot loops prefer [`Span::on`]
    /// with a cached handle, which is lock-free.
    pub fn enter(name: &'static str) -> Span {
        Span::on(histogram(name), name)
    }

    /// Opens a span on a pre-resolved histogram handle (lock-free).
    pub fn on(hist: &'static Histogram, name: &'static str) -> Span {
        Span { hist, name, start: Instant::now(), log_on: log_enabled(Level::Debug, name) }
    }

    /// Elapsed time so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Ends the span now, recording its duration (same as dropping it).
    pub fn exit(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.hist.record_duration(elapsed);
        // Level-check fast path: the filter verdict was cached at
        // construction, so a disabled span drop is just the histogram
        // record — no directive walk, no field formatting.
        if self.log_on {
            tlog!(
                Level::Debug,
                self.name,
                "span",
                elapsed_us = elapsed.as_micros() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_named_histogram() {
        {
            let _s = Span::enter("test.span_records");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = crate::snapshot();
        let h = snap.histogram("test.span_records").expect("histogram registered");
        assert!(h.count >= 1);
        assert!(h.max >= 1_000_000, "recorded ns, got max {}", h.max);
    }

    #[test]
    fn span_on_cached_handle_is_equivalent() {
        let h = crate::histogram("test.span_on");
        {
            let _s = Span::on(h, "test.span_on");
        }
        assert!(h.count() >= 1);
    }

    #[test]
    fn disabled_logging_caches_the_verdict_at_construction() {
        // Tests run without PDDL_LOG, so debug is disabled; the span must
        // carry the cached "off" verdict and still record its histogram.
        let h = crate::histogram("test.span_log_off");
        let s = Span::on(h, "test.span_log_off");
        assert!(!s.log_on, "default env: completion line disabled");
        drop(s);
        assert!(h.count() >= 1, "histogram recording is independent of logging");
    }
}
