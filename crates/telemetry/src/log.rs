//! Structured JSON logging to stderr, gated by the `PDDL_LOG` environment
//! variable. Hand-rolled replacement for `tracing`/`env_logger`:
//!
//! ```text
//! PDDL_LOG=info                         # every target at info+
//! PDDL_LOG=warn,controller=debug        # default warn, controller.* debug
//! PDDL_LOG=off,ddlsim=trace             # only ddlsim.* (at trace)
//! ```
//!
//! Directives are `level` (the default) or `target_prefix=level`; the
//! longest matching prefix wins. Targets are dotted paths like
//! `controller.request` — a directive `controller` matches `controller`
//! and anything under `controller.`.
//!
//! Fast path: when a level is globally disabled, [`log_enabled`] is a
//! single relaxed atomic load.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable failures.
    Error = 1,
    /// Degraded but continuing.
    Warn = 2,
    /// High-level lifecycle events.
    Info = 3,
    /// Per-request detail.
    Debug = 4,
    /// Hot-loop detail.
    Trace = 5,
}

impl Level {
    /// Lowercase name, as used in `PDDL_LOG` and the JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn parse(s: &str) -> Option<Option<Level>> {
        // `None` inner = explicit "off".
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// Parsed `PDDL_LOG` filter.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LogFilter {
    /// Level for targets with no matching directive; `None` = off.
    default: Option<Level>,
    /// (target_prefix, level) directives; `None` level = off.
    directives: Vec<(String, Option<Level>)>,
}

impl LogFilter {
    /// Parses a filter spec. Unknown level names and empty directives are
    /// ignored rather than erroring — a typo in `PDDL_LOG` should never
    /// take the service down.
    pub fn parse(spec: &str) -> LogFilter {
        let mut filter = LogFilter::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => {
                    if let Some(level) = Level::parse(part) {
                        filter.default = level;
                    }
                }
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level) {
                        filter.directives.push((target.trim().to_string(), level));
                    }
                }
            }
        }
        // Longest prefix first so the first match is the most specific.
        filter.directives.sort_by_key(|d| std::cmp::Reverse(d.0.len()));
        filter
    }

    /// Is `level` enabled for `target`?
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        for (prefix, directive) in &self.directives {
            let matches = target == prefix
                || (target.len() > prefix.len()
                    && target.starts_with(prefix.as_str())
                    && target.as_bytes()[prefix.len()] == b'.');
            if matches {
                return directive.is_some_and(|max| level <= max);
            }
        }
        self.default.is_some_and(|max| level <= max)
    }

    /// The most verbose level any directive enables (for the fast reject).
    fn max_level(&self) -> u8 {
        let mut max = self.default.map_or(0, |l| l as u8);
        for (_, directive) in &self.directives {
            max = max.max(directive.map_or(0, |l| l as u8));
        }
        max
    }
}

fn filter() -> &'static LogFilter {
    static FILTER: OnceLock<LogFilter> = OnceLock::new();
    FILTER.get_or_init(|| {
        let f = std::env::var("PDDL_LOG").map(|s| LogFilter::parse(&s)).unwrap_or_default();
        MAX_LEVEL.store(f.max_level(), Ordering::Relaxed);
        f
    })
}

/// 0 = logging never initialized or everything off.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

/// Cheap check whether a line at `level`/`target` would be emitted.
/// Inlined so the common "globally off" case compiles down to one
/// relaxed load and a compare at the call site.
#[inline]
pub fn log_enabled(level: Level, target: &str) -> bool {
    if level as u8 > MAX_LEVEL.load(Ordering::Relaxed) {
        return false; // fast reject once the filter is parsed
    }
    filter().enabled(level, target)
}

/// A structured log field value.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// Boolean field.
    Bool(bool),
    /// String field.
    Str(String),
}

macro_rules! impl_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> Self { FieldValue::$variant(v as $conv) }
        })*
    };
}
impl_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
           i64 => I64 as i64, i32 => I64 as i64,
           f64 => F64 as f64, f32 => F64 as f64);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Emits one structured JSON log line to stderr. Prefer the [`tlog!`](crate::tlog)
/// macro, which skips field construction when the line is filtered out.
pub fn log_line(level: Level, target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut out = String::with_capacity(96);
    out.push_str("{\"ts_ms\":");
    out.push_str(&ts_ms.to_string());
    out.push_str(",\"level\":\"");
    out.push_str(level.as_str());
    out.push_str("\",\"target\":");
    crate::json::push_json_string(&mut out, target);
    out.push_str(",\"msg\":");
    crate::json::push_json_string(&mut out, msg);
    for (k, v) in fields {
        out.push(',');
        crate::json::push_json_string(&mut out, k);
        out.push(':');
        match v {
            FieldValue::U64(n) => out.push_str(&n.to_string()),
            FieldValue::I64(n) => out.push_str(&n.to_string()),
            FieldValue::F64(n) => crate::json::push_f64(&mut out, *n),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::Str(s) => crate::json::push_json_string(&mut out, s),
        }
    }
    out.push_str("}\n");
    // One write_all per line keeps lines atomic enough for line-oriented
    // consumers; ignore a broken stderr rather than panicking the service.
    let _ = std::io::stderr().write_all(out.as_bytes());
}

/// Structured logging macro:
/// `tlog!(Level::Info, "controller", "request served", latency_us = 42, model = name)`.
/// Fields are only evaluated when the line passes the `PDDL_LOG` filter.
#[macro_export]
macro_rules! tlog {
    ($level:expr, $target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::log_enabled($level, $target) {
            $crate::log_line(
                $level,
                $target,
                $msg,
                &[$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_level_applies_to_all_targets() {
        let f = LogFilter::parse("info");
        assert!(f.enabled(Level::Info, "controller"));
        assert!(f.enabled(Level::Error, "anything.at.all"));
        assert!(!f.enabled(Level::Debug, "controller"));
    }

    #[test]
    fn per_target_directive_overrides_default() {
        let f = LogFilter::parse("warn,controller=debug");
        assert!(f.enabled(Level::Debug, "controller"));
        assert!(f.enabled(Level::Debug, "controller.request"));
        assert!(!f.enabled(Level::Debug, "collector"));
        assert!(f.enabled(Level::Warn, "collector"));
        // Prefix must stop at a dot boundary: "controllerx" is unrelated.
        assert!(!f.enabled(Level::Debug, "controllerx"));
    }

    #[test]
    fn longest_prefix_wins() {
        let f = LogFilter::parse("off,offline=info,offline.train_ghn=trace");
        assert!(f.enabled(Level::Trace, "offline.train_ghn"));
        assert!(!f.enabled(Level::Trace, "offline.fit_regressor"));
        assert!(f.enabled(Level::Info, "offline.fit_regressor"));
        assert!(!f.enabled(Level::Error, "elsewhere"));
    }

    #[test]
    fn off_disables_and_garbage_is_ignored() {
        let f = LogFilter::parse("bogus,controller=notalevel");
        assert_eq!(f, LogFilter::default());
        assert!(!f.enabled(Level::Error, "controller"));
        let f = LogFilter::parse("info,noisy=off");
        assert!(!f.enabled(Level::Error, "noisy.sub"));
        assert!(f.enabled(Level::Info, "quiet"));
    }

    #[test]
    fn max_level_reflects_most_verbose_directive() {
        assert_eq!(LogFilter::parse("off").max_level(), 0);
        assert_eq!(LogFilter::parse("warn").max_level(), Level::Warn as u8);
        assert_eq!(LogFilter::parse("warn,x=trace").max_level(), Level::Trace as u8);
    }
}
