//! Golden fixtures for the two observability wire formats:
//!
//! 1. the Prometheus text exposition served by `{"op":"metrics"}`, and
//! 2. the retained-trace JSON served by `{"op":"trace"}`.
//!
//! Both renderers are deterministic for fixed inputs, so the fixtures pin
//! *exact bytes*, not just field names — external scrapers and the CLI
//! parse these formats, and a silent reshape is a breaking change. On an
//! intentional change, regenerate with
//! `PDDL_REGEN_GOLDEN=1 cargo test -p pddl-telemetry --test golden_shapes`
//! and review the fixture diff like any other code change.

use pddl_telemetry::trace::{stages, FlightRecorder};
use pddl_telemetry::{expo, HistogramSnapshot, Snapshot, SpanStatus, TraceContext};
use std::path::PathBuf;
use std::time::Duration;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn check_or_regen(name: &str, live: &str) {
    let path = fixture_dir().join(name);
    if std::env::var("PDDL_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).unwrap();
        std::fs::write(&path, live).unwrap();
        eprintln!("{name} regenerated — commit the fixture diff");
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {} ({e}); regenerate with PDDL_REGEN_GOLDEN=1", path.display())
    });
    assert_eq!(
        stored, live,
        "{name} drifted from the golden fixture \
         (intentional? regenerate with PDDL_REGEN_GOLDEN=1)"
    );
}

/// One of every metric kind, with enough variety to exercise name
/// sanitization and the overflow counter.
fn sample_snapshot() -> Snapshot {
    Snapshot {
        counters: vec![
            ("controller.requests".into(), 1024),
            ("controller.shed.queue_full".into(), 17),
        ],
        gauges: vec![("controller.active_connections".into(), 3)],
        histograms: vec![(
            "controller.queue_wait".into(),
            HistogramSnapshot {
                count: 900,
                sum: 123_456_789,
                min: 1_200,
                max: 9_800_000,
                mean: 137_174.2,
                p50: 80_000,
                p95: 2_100_000,
                p99: 7_500_000,
                overflow: 1,
            },
        )],
    }
}

/// A fixed two-trace retained set: one shed request with a partial
/// pipeline, one errored request with a full one (cache miss included).
fn sample_recorder() -> FlightRecorder {
    let r = FlightRecorder::new(64, 8);
    let ms = Duration::from_millis;

    let shed = TraceContext::root(0x1111);
    r.record_stage(shed, stages::FRAME_READ, 100, ms(1), SpanStatus::Ok);
    r.record_span(shed, stages::REQUEST, 100, ms(2), SpanStatus::Shed);
    r.promote(shed.trace_id, "shed");

    let errored = TraceContext::root(0x2222);
    r.record_stage(errored, stages::FRAME_READ, 500, ms(1), SpanStatus::Ok);
    r.record_stage(errored, stages::QUEUE_WAIT, 501, ms(2), SpanStatus::Ok);
    let dispatch = errored.child(1000);
    r.record_stage(dispatch, stages::EMBED_CACHE, 503, ms(3), SpanStatus::CacheMiss);
    r.record_stage(dispatch, stages::GHN_EMBED, 504, ms(2), SpanStatus::Ok);
    r.record_stage(dispatch, stages::REGRESS, 507, ms(1), SpanStatus::Error);
    r.record_span(dispatch, stages::DISPATCH, 503, ms(5), SpanStatus::Error);
    r.record_stage(errored, stages::SERIALIZE, 509, ms(1), SpanStatus::Ok);
    r.record_span(errored, stages::REQUEST, 500, ms(10), SpanStatus::Error);
    r.promote(errored.trace_id, "error");

    r
}

#[test]
fn prometheus_exposition_matches_golden_fixture() {
    check_or_regen("metrics_exposition.txt", &expo::prometheus(&sample_snapshot()));
}

#[test]
fn trace_dump_matches_golden_fixture() {
    check_or_regen("trace_dump.json", &sample_recorder().retained_json());
}

/// The waterfall rendering of the golden dump is itself pinned — the CLI
/// `trace` subcommand prints exactly this for these inputs.
#[test]
fn trace_waterfall_matches_golden_fixture() {
    let json = sample_recorder().retained_json();
    let v = pddl_telemetry::JsonValue::parse(&json).expect("dump parses");
    let traces = pddl_telemetry::trace::parse_trace_dump(&v).expect("dump decodes");
    check_or_regen("trace_waterfall.txt", &pddl_telemetry::trace::render_waterfall(&traces));
}
