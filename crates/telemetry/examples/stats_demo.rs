//! Demonstrates the full telemetry surface: counters, gauges, histograms,
//! spans, `PDDL_LOG`-filtered structured logging, and the JSON snapshot
//! round-trip. Run with e.g.
//!
//! ```sh
//! PDDL_LOG=info,demo.inner=debug cargo run -p pddl-telemetry --example stats_demo
//! ```

use pddl_telemetry::{tlog, Level, Snapshot, Span};
use std::time::Duration;

fn main() {
    // Counters and gauges: cached &'static handles, atomic updates.
    let requests = pddl_telemetry::counter("demo.requests");
    let active = pddl_telemetry::gauge("demo.active");
    for _ in 0..128 {
        requests.inc();
    }
    active.set(3);

    // Histogram with a known distribution so the printed quantiles can be
    // eyeballed: 1..=1000 microseconds-ish values.
    let hist = pddl_telemetry::histogram("demo.latency");
    for v in 1..=1000u64 {
        hist.record(v);
    }

    // Spans record wall time into a histogram named after the span and
    // emit a debug-level log line when the filter allows it.
    for _ in 0..3 {
        let span = Span::enter("demo.inner");
        std::thread::sleep(Duration::from_millis(2));
        span.exit();
    }

    tlog!(
        Level::Info,
        "demo",
        "workload done",
        requests = requests.get(),
        active = active.get()
    );

    // Export, then parse our own export back (the same path
    // `ControllerClient::stats()` uses on the wire).
    let json = pddl_telemetry::snapshot_json();
    let parsed = Snapshot::from_json(&json).expect("snapshot json round-trips");
    assert_eq!(parsed.counter("demo.requests"), Some(128));
    assert_eq!(parsed.gauge("demo.active"), Some(3));
    let lat = parsed.histogram("demo.latency").expect("histogram present");
    assert_eq!(lat.count, 1000);
    assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
    println!("{json}");
    eprintln!(
        "demo.latency: count={} min={} max={} p50={:.0} p95={:.0} p99={:.0}",
        lat.count, lat.min, lat.max, lat.p50, lat.p95, lat.p99
    );
}
