//! Reverse-mode automatic differentiation for the PredictDDL reproduction.
//!
//! The GHN-2 implementation (`pddl-ghn`) and the MLP regressor
//! (`pddl-regress`) need gradients through compositions of matrix products,
//! broadcast bias additions, GRU cells and elementwise nonlinearities. This
//! crate provides a classic *tape* design:
//!
//! * a [`ParamStore`] owns the persistent, trainable parameter matrices;
//! * every forward pass records operations onto a fresh [`Tape`], producing
//!   [`Var`] handles;
//! * [`Tape::backward`] replays the tape in reverse, producing a
//!   [`Gradients`] map keyed by [`ParamId`];
//! * optimizers ([`optim::Sgd`], [`optim::Adam`]) consume the gradients and
//!   update the store.
//!
//! Operations are an enum (not boxed closures), so the backward pass is one
//! `match` with no allocation beyond the gradient matrices themselves.

pub mod layers;
pub mod optim;
pub mod tape;

pub use layers::{GruCell, Linear, Mlp};
pub use optim::{Adam, Optimizer, Sgd};
pub use tape::{gradient_check, Gradients, ParamId, ParamStore, Tape, Var};
