//! First-order optimizers over a [`ParamStore`].

use crate::tape::{Gradients, ParamId, ParamStore};
use pddl_tensor::Matrix;
use std::collections::HashMap;

/// Common optimizer interface: apply one step from a set of gradients.
pub trait Optimizer {
    fn step(&mut self, params: &mut ParamStore, grads: &Gradients);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: HashMap<ParamId, Matrix>,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, velocity: HashMap::new() }
    }

    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: HashMap::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &Gradients) {
        for (&id, g) in grads.iter() {
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(id)
                    .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
                // v = μv + g; w -= lr v
                let mut nv = v.scale(self.momentum);
                nv.add_scaled(g, 1.0);
                params.get_mut(id).add_scaled(&nv, -self.lr);
                *v = nv;
            } else {
                params.get_mut(id).add_scaled(g, -self.lr);
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction; the optimizer used for GHN-2
/// meta-training and the MLP regressor.
#[derive(Clone, Debug)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    m: HashMap<ParamId, Matrix>,
    v: HashMap<ParamId, Matrix>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        let mut a = Self::new(lr);
        a.weight_decay = weight_decay;
        a
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (&id, g) in grads.iter() {
            let (r, c) = g.shape();
            let m = self.m.entry(id).or_insert_with(|| Matrix::zeros(r, c));
            let v = self.v.entry(id).or_insert_with(|| Matrix::zeros(r, c));
            let w = params.get_mut(id);
            let (b1, b2, eps, lr, wd) =
                (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
            let ws = w.as_mut_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            let gs = g.as_slice();
            for i in 0..gs.len() {
                // Decoupled weight decay (AdamW-style).
                let gi = gs[i] + wd * ws[i];
                ms[i] = b1 * ms[i] + (1.0 - b1) * gi;
                vs[i] = b2 * vs[i] + (1.0 - b2) * gi * gi;
                let mhat = ms[i] / bc1;
                let vhat = vs[i] / bc2;
                ws[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::{ParamStore, Tape};

    /// Minimizes `mean((w - target)²)` and returns the final parameter.
    fn run_optimizer(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::filled(1, 1, 5.0));
        for _ in 0..steps {
            let grads = {
                let mut tape = Tape::new(&ps);
                let wv = tape.param(w);
                let t = tape.constant(Matrix::filled(1, 1, 2.0));
                let loss = tape.mse_loss(wv, t);
                tape.backward(loss)
            };
            opt.step(&mut ps, &grads);
        }
        ps.get(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = run_optimizer(&mut opt, 200);
        assert!((w - 2.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = run_optimizer(&mut opt, 200);
        assert!((w - 2.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = run_optimizer(&mut opt, 300);
        assert!((w - 2.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adam_weight_decay_shrinks_unused_direction() {
        // With target 0 and decay, weights go to zero faster than lr alone.
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::filled(1, 1, 1.0));
        let mut opt = Adam::with_weight_decay(0.01, 0.1);
        for _ in 0..100 {
            let grads = {
                let mut tape = Tape::new(&ps);
                let wv = tape.param(w);
                let t = tape.constant(Matrix::filled(1, 1, 0.0));
                let loss = tape.mse_loss(wv, t);
                tape.backward(loss)
            };
            opt.step(&mut ps, &grads);
        }
        assert!(ps.get(w)[(0, 0)].abs() < 0.7);
    }

    #[test]
    fn adam_handles_multiple_params() {
        let mut ps = ParamStore::new();
        let a = ps.register("a", Matrix::filled(1, 1, -3.0));
        let b = ps.register("b", Matrix::filled(1, 1, 7.0));
        let mut opt = Adam::new(0.2);
        for _ in 0..400 {
            let grads = {
                let mut tape = Tape::new(&ps);
                let av = tape.param(a);
                let bv = tape.param(b);
                let s = tape.add(av, bv); // minimize (a+b-1)² + small pull on each
                let t = tape.constant(Matrix::filled(1, 1, 1.0));
                let loss = tape.mse_loss(s, t);
                tape.backward(loss)
            };
            opt.step(&mut ps, &grads);
        }
        let sum = ps.get(a)[(0, 0)] + ps.get(b)[(0, 0)];
        assert!((sum - 1.0).abs() < 1e-2, "sum={sum}");
    }
}
