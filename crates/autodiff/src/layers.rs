//! Neural-network building blocks used by GHN-2 and the MLP regressor.

use crate::tape::{ParamId, ParamStore, Tape, Var};
use pddl_tensor::Rng;

use serde::{Deserialize, Serialize};

/// Affine layer `y = x·W + b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let w = ps.register_xavier(format!("{name}.w"), in_dim, out_dim, rng);
        let b = ps.register_bias(format!("{name}.b"), out_dim);
        Self { w, b, in_dim, out_dim }
    }

    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        tape.affine(x, w, b)
    }
}

/// Activation choices for [`Mlp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Relu,
    Tanh,
    Sigmoid,
    /// No nonlinearity (used on output layers).
    Identity,
}

impl Activation {
    #[allow(dead_code)]
    fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// The tensor-crate activation this maps to in fused GEMM epilogues.
    /// This enum stays the serde-stable config surface; the tensor enum is
    /// the compute-side type.
    pub fn fused(self) -> pddl_tensor::Activation {
        match self {
            Activation::Relu => pddl_tensor::Activation::Relu,
            Activation::Tanh => pddl_tensor::Activation::Tanh,
            Activation::Sigmoid => pddl_tensor::Activation::Sigmoid,
            Activation::Identity => pddl_tensor::Activation::Identity,
        }
    }
}

/// Multi-layer perceptron with a hidden activation and linear output.
///
/// The GHN message function MLP(·) from Eq. (3)/(4) of the paper and the
/// decoder heads are instances of this type.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    pub layers: Vec<Linear>,
    pub hidden_act: Activation,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]`; requires at least one layer.
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        dims: &[usize],
        hidden_act: Activation,
        rng: &mut Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(ps, &format!("{name}.l{i}"), w[0], w[1], rng))
            .collect();
        Self { layers, hidden_act }
    }

    pub fn forward(&self, tape: &mut Tape, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            // Hidden layers record one fused affine+activation node each;
            // the output layer stays linear.
            let act = if i < last { self.hidden_act.fused() } else { pddl_tensor::Activation::Identity };
            let w = tape.param(layer.w);
            let b = tape.param(layer.b);
            x = tape.affine_act(x, w, b, act);
        }
        x
    }

    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim
    }
}

/// Gated Recurrent Unit cell, the state-update function of the GatedGNN
/// (Eq. (3) of the paper: `h_v^{t+1} = GRU(h_v^t, m_v^t)`).
///
/// Convention: the *message* is the input `x`, the node state is `h`:
/// ```text
/// z  = σ(x·Wz + h·Uz + bz)        update gate
/// r  = σ(x·Wr + h·Ur + br)        reset gate
/// ĥ  = tanh(x·Wh + (r ⊙ h)·Uh + bh)
/// h' = (1 − z) ⊙ h + z ⊙ ĥ
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruCell {
    pub wz: ParamId,
    pub uz: ParamId,
    pub bz: ParamId,
    pub wr: ParamId,
    pub ur: ParamId,
    pub br: ParamId,
    pub wh: ParamId,
    pub uh: ParamId,
    pub bh: ParamId,
    pub input_dim: usize,
    pub state_dim: usize,
}

impl GruCell {
    pub fn new(
        ps: &mut ParamStore,
        name: &str,
        input_dim: usize,
        state_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let mut reg = |n: &str, i: usize, o: usize, rng: &mut Rng| {
            ps.register_xavier(format!("{name}.{n}"), i, o, rng)
        };
        let wz = reg("wz", input_dim, state_dim, rng);
        let uz = reg("uz", state_dim, state_dim, rng);
        let wr = reg("wr", input_dim, state_dim, rng);
        let ur = reg("ur", state_dim, state_dim, rng);
        let wh = reg("wh", input_dim, state_dim, rng);
        let uh = reg("uh", state_dim, state_dim, rng);
        let bz = ps.register_bias(format!("{name}.bz"), state_dim);
        let br = ps.register_bias(format!("{name}.br"), state_dim);
        let bh = ps.register_bias(format!("{name}.bh"), state_dim);
        Self { wz, uz, bz, wr, ur, br, wh, uh, bh, input_dim, state_dim }
    }

    /// One GRU step over a batch of rows: `x` is `n × input_dim`, `h` is
    /// `n × state_dim`; returns the new `n × state_dim` state.
    pub fn forward(&self, tape: &mut Tape, x: Var, h: Var) -> Var {
        use pddl_tensor::Activation as A;
        // Each gate is a single fused two-operand affine node:
        // act(x·W + h·U + b) with the second GEMM accumulating in place.
        let (wz, uz, bz) = (tape.param(self.wz), tape.param(self.uz), tape.param(self.bz));
        let z = tape.affine2(x, wz, h, uz, bz, A::Sigmoid);

        let (wr, ur, br) = (tape.param(self.wr), tape.param(self.ur), tape.param(self.br));
        let r = tape.affine2(x, wr, h, ur, br, A::Sigmoid);

        let (wh, uh, bh) = (tape.param(self.wh), tape.param(self.uh), tape.param(self.bh));
        let rh = tape.mul(r, h);
        let hhat = tape.affine2(x, wh, rh, uh, bh, A::Tanh);

        // h' = h + z ⊙ (ĥ − h)  (algebraically identical to the canonical
        // form, one fewer elementwise op)
        let diff = tape.sub(hhat, h);
        let zdiff = tape.mul(z, diff);
        tape.add(h, zdiff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::gradient_check;
    use pddl_tensor::Matrix;

    #[test]
    fn linear_shapes() {
        let mut rng = Rng::new(1);
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 4, 7, &mut rng);
        let mut tape = Tape::new(&ps);
        let x = tape.constant(Matrix::zeros(3, 4));
        let y = lin.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (3, 7));
    }

    #[test]
    fn mlp_forward_and_dims() {
        let mut rng = Rng::new(2);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "m", &[5, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
        let mut tape = Tape::new(&ps);
        let x = tape.constant(Matrix::ones(2, 5));
        let y = mlp.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (2, 3));
    }

    #[test]
    fn mlp_gradcheck() {
        let mut rng = Rng::new(3);
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "m", &[3, 5, 2], Activation::Tanh, &mut rng);
        let x = Matrix::rand_normal(4, 3, 1.0, &mut rng);
        let t = Matrix::rand_normal(4, 2, 1.0, &mut rng);
        let err = gradient_check(
            &mut ps,
            |tape| {
                let xv = tape.constant(x.clone());
                let y = mlp.forward(tape, xv);
                let tv = tape.constant(t.clone());
                tape.mse_loss(y, tv)
            },
            8,
        );
        assert!(err < 3e-2, "err={err}");
    }

    #[test]
    fn gru_state_shape_preserved() {
        let mut rng = Rng::new(4);
        let mut ps = ParamStore::new();
        let gru = GruCell::new(&mut ps, "g", 6, 10, &mut rng);
        let mut tape = Tape::new(&ps);
        let x = tape.constant(Matrix::ones(3, 6));
        let h = tape.constant(Matrix::zeros(3, 10));
        let h2 = gru.forward(&mut tape, x, h);
        assert_eq!(tape.shape(h2), (3, 10));
    }

    #[test]
    fn gru_gradcheck() {
        let mut rng = Rng::new(5);
        let mut ps = ParamStore::new();
        let gru = GruCell::new(&mut ps, "g", 3, 4, &mut rng);
        let x = Matrix::rand_normal(2, 3, 1.0, &mut rng);
        let h0 = Matrix::rand_normal(2, 4, 0.5, &mut rng);
        let t = Matrix::rand_normal(2, 4, 0.5, &mut rng);
        let err = gradient_check(
            &mut ps,
            |tape| {
                let xv = tape.constant(x.clone());
                let hv = tape.constant(h0.clone());
                let h1 = gru.forward(tape, xv, hv);
                // Two chained steps exercise reuse of the same parameters.
                let h2 = gru.forward(tape, xv, h1);
                let tv = tape.constant(t.clone());
                tape.mse_loss(h2, tv)
            },
            6,
        );
        assert!(err < 4e-2, "err={err}");
    }

    #[test]
    fn gru_zero_update_gate_keeps_state() {
        // With z≈0 (Wz,Uz,bz ≈ large negative), h' should stay close to h.
        let mut rng = Rng::new(6);
        let mut ps = ParamStore::new();
        let gru = GruCell::new(&mut ps, "g", 2, 3, &mut rng);
        // Force the update-gate bias very negative.
        ps.get_mut(gru.bz).map_inplace(|_| -20.0);
        let mut tape = Tape::new(&ps);
        let x = tape.constant(Matrix::ones(1, 2));
        let h = tape.constant(Matrix::from_rows(&[&[0.3, -0.7, 0.9]]));
        let h2 = gru.forward(&mut tape, x, h);
        let before = tape.value(h).clone();
        let after = tape.value(h2).clone();
        assert!((&after - &before).max_abs() < 1e-4);
    }
}
