//! The tape: parameter store, recorded operations, and the backward pass.

use pddl_tensor::{Activation, Matrix, Rng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Handle to a persistent trainable parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// Handle to a value on a [`Tape`]. Valid only for the tape that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// Owns the trainable parameters of a model across forward passes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value; the name is for
    /// diagnostics only and need not be unique.
    pub fn register(&mut self, name: impl Into<String>, init: Matrix) -> ParamId {
        self.values.push(init);
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Xavier-initialized `fan_in × fan_out` weight.
    pub fn register_xavier(
        &mut self,
        name: impl Into<String>,
        fan_in: usize,
        fan_out: usize,
        rng: &mut Rng,
    ) -> ParamId {
        self.register(name, Matrix::xavier(fan_in, fan_out, rng))
    }

    /// Zero-initialized `1 × n` bias.
    pub fn register_bias(&mut self, name: impl Into<String>, n: usize) -> ParamId {
        self.register(name, Matrix::zeros(1, n))
    }

    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|m| m.len()).sum()
    }
}

/// Gradients of a scalar loss with respect to store parameters.
#[derive(Clone, Debug, Default)]
pub struct Gradients {
    by_param: HashMap<ParamId, Matrix>,
}

impl Gradients {
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.by_param.get(&id)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&ParamId, &Matrix)> {
        self.by_param.iter()
    }

    /// Global L2 norm over all parameter gradients.
    pub fn global_norm(&self) -> f32 {
        self.by_param
            .values()
            .map(|g| g.sq_norm())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`
    /// (gradient clipping — GHN-2 needs this to avoid explosion on deep
    /// graphs, mirroring the paper's normalization discussion).
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in self.by_param.values_mut() {
                g.map_inplace(|x| x * s);
            }
        }
    }
}

/// Recorded operation; parents are tape indices.
#[derive(Clone, Debug)]
enum Op {
    /// Leaf constant (inputs, targets); receives no gradient.
    Const,
    /// Leaf bound to a store parameter; gradient is routed to the store.
    Param(ParamId),
    /// `a + b`, same shape.
    Add(usize, usize),
    /// `a - b`, same shape.
    Sub(usize, usize),
    /// Elementwise product.
    Mul(usize, usize),
    /// `a · b` matrix product.
    MatMul(usize, usize),
    /// Adds a `1×n` bias row to every row of `a`.
    AddBias(usize, usize),
    /// Fused `act(x·w + b)` — one node for the affine layer forward; the
    /// backward derives the activation gradient from the stored output.
    AffineAct(usize, usize, usize, Activation),
    /// Fused two-operand affine `act(x·w + h·u + b)` — the GRU gate form.
    Affine2 {
        x: usize,
        w: usize,
        h: usize,
        u: usize,
        b: usize,
        act: Activation,
    },
    /// `alpha * a`.
    Scale(usize, f32),
    /// Sigmoid.
    Sigmoid(usize),
    /// Tanh.
    Tanh(usize),
    /// ReLU.
    Relu(usize),
    /// Column-wise concatenation; stores the inputs and their widths.
    ConcatCols(Vec<usize>),
    /// Column slice `[start, end)` of parent with original width `w`.
    SliceCols(usize, usize, usize, usize),
    /// Row slice `[start, end)` of parent with original height `h`.
    SliceRows(usize, usize, usize, usize),
    /// Row-wise (vertical) concatenation; stores inputs and their heights.
    ConcatRows(Vec<usize>),
    /// Shape change without data movement; stores the parent's shape.
    Reshape(usize, usize, usize),
    /// Mean over all entries → 1×1.
    Mean(usize),
    /// Sum over all entries → 1×1.
    Sum(usize),
    /// Column-wise mean over rows → 1×n (graph readout / batch mean).
    MeanRows(usize),
    /// Mean squared error between parent 0 and parent 1 → 1×1.
    MseLoss(usize, usize),
    /// Row-wise L2 normalization: each row divided by its L2 norm (+eps).
    /// This is the "operation-dependent normalization" primitive GHN-2 uses
    /// to stabilize message passing.
    RowL2Norm(usize),
    /// Row-wise softmax (numerically stabilized by row-max subtraction).
    SoftmaxRows(usize),
    /// Mean cross-entropy between row-softmax of parent 0 (logits) and
    /// one-hot/probability targets in parent 1 → 1×1. Fused so the backward
    /// pass uses the exact `(softmax(z) − y)/n` gradient.
    CrossEntropyLoss(usize, usize),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// A single forward pass's computation record.
pub struct Tape<'p> {
    params: &'p ParamStore,
    nodes: Vec<Node>,
}

impl<'p> Tape<'p> {
    pub fn new(params: &'p ParamStore) -> Self {
        Self { params, nodes: Vec::with_capacity(256) }
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Current value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Shape of a variable.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Number of recorded nodes (for capacity diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a constant leaf (no gradient).
    pub fn constant(&mut self, m: Matrix) -> Var {
        self.push(Op::Const, m)
    }

    /// Records a parameter leaf; its gradient lands in [`Gradients`].
    pub fn param(&mut self, id: ParamId) -> Var {
        let value = self.params.get(id).clone();
        self.push(Op::Param(id), value)
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value + &self.nodes[b.0].value;
        self.push(Op::Add(a.0, b.0), v)
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value - &self.nodes[b.0].value;
        self.push(Op::Sub(a.0, b.0), v)
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(Op::Mul(a.0, b.0), v)
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(Op::MatMul(a.0, b.0), v)
    }

    /// `a` (m×n) plus bias row `b` (1×n) broadcast over rows.
    pub fn add_bias(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.add_row_broadcast(&self.nodes[b.0].value);
        self.push(Op::AddBias(a.0, b.0), v)
    }

    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let v = self.nodes[a.0].value.scale(alpha);
        self.push(Op::Scale(a.0, alpha), v)
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a.0), v)
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.tanh());
        self.push(Op::Tanh(a.0), v)
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(Op::Relu(a.0), v)
    }

    /// Column-wise concatenation of variables with equal row counts.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let mats: Vec<&Matrix> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Matrix::hstack(&mats);
        self.push(Op::ConcatCols(parts.iter().map(|p| p.0).collect()), v)
    }

    /// Extracts columns `[start, end)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let src = &self.nodes[a.0].value;
        let (rows, w) = src.shape();
        assert!(start <= end && end <= w, "slice_cols out of range");
        let mut out = Matrix::zeros(rows, end - start);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&src.row(r)[start..end]);
        }
        self.push(Op::SliceCols(a.0, start, end, w), out)
    }

    /// Extracts rows `[start, end)`.
    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        let src = &self.nodes[a.0].value;
        let h = src.rows();
        assert!(start <= end && end <= h, "slice_rows out of range");
        let out = src.slice_rows(start, end);
        self.push(Op::SliceRows(a.0, start, end, h), out)
    }

    /// Row-wise (vertical) concatenation of variables with equal widths.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let mats: Vec<&Matrix> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Matrix::vstack(&mats);
        self.push(Op::ConcatRows(parts.iter().map(|p| p.0).collect()), v)
    }

    /// Reshapes to `rows × cols` (element count must match); the backward
    /// pass reshapes the gradient back. Used by hypernetwork decoders that
    /// emit flat weight vectors.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let src = &self.nodes[a.0].value;
        let (orig_r, orig_c) = src.shape();
        assert_eq!(orig_r * orig_c, rows * cols, "reshape element count mismatch");
        let out = Matrix::from_vec(rows, cols, src.as_slice().to_vec());
        self.push(Op::Reshape(a.0, orig_r, orig_c), out)
    }

    /// Mean over all entries → scalar (1×1).
    pub fn mean(&mut self, a: Var) -> Var {
        let v = Matrix::filled(1, 1, self.nodes[a.0].value.mean());
        self.push(Op::Mean(a.0), v)
    }

    /// Sum over all entries → scalar (1×1).
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Matrix::filled(1, 1, self.nodes[a.0].value.sum());
        self.push(Op::Sum(a.0), v)
    }

    /// Column-wise mean over rows → 1×n. Used as the GHN graph readout.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.mean_rows();
        self.push(Op::MeanRows(a.0), v)
    }

    /// Mean-squared-error loss between prediction and target → scalar.
    pub fn mse_loss(&mut self, pred: Var, target: Var) -> Var {
        let p = &self.nodes[pred.0].value;
        let t = &self.nodes[target.0].value;
        assert_eq!(p.shape(), t.shape(), "mse shape mismatch");
        let diff = p - t;
        let v = Matrix::filled(1, 1, diff.sq_norm() / p.len() as f32);
        self.push(Op::MseLoss(pred.0, target.0), v)
    }

    /// Row-wise L2 normalization (each row scaled to unit norm, eps-guarded).
    pub fn row_l2_norm(&mut self, a: Var) -> Var {
        let src = &self.nodes[a.0].value;
        let mut out = src.clone();
        for r in 0..out.rows() {
            let norm = norm_eps(src.row(r));
            for x in out.row_mut(r) {
                *x /= norm;
            }
        }
        self.push(Op::RowL2Norm(a.0), out)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let src = &self.nodes[a.0].value;
        let mut out = src.clone();
        for r in 0..out.rows() {
            softmax_row_inplace(out.row_mut(r));
        }
        self.push(Op::SoftmaxRows(a.0), out)
    }

    /// Mean cross-entropy loss `−Σ y log softmax(z) / rows` between logits
    /// and (one-hot or soft) targets → scalar. The fused backward pass is
    /// the numerically exact `(softmax(z) − y) / rows`.
    pub fn cross_entropy_loss(&mut self, logits: Var, targets: Var) -> Var {
        let z = &self.nodes[logits.0].value;
        let y = &self.nodes[targets.0].value;
        assert_eq!(z.shape(), y.shape(), "cross-entropy shape mismatch");
        let rows = z.rows();
        let mut total = 0.0f64;
        for r in 0..rows {
            let mut p = z.row(r).to_vec();
            softmax_row_inplace(&mut p);
            for (pi, &yi) in p.iter().zip(y.row(r)) {
                if yi != 0.0 {
                    total -= yi as f64 * (pi.max(1e-12) as f64).ln();
                }
            }
        }
        let v = Matrix::filled(1, 1, (total / rows.max(1) as f64) as f32);
        self.push(Op::CrossEntropyLoss(logits.0, targets.0), v)
    }

    /// Affine layer `x · w + b` with `b` broadcast — recorded as one
    /// fused node riding the GEMM bias epilogue (no `x·w` intermediate).
    pub fn affine(&mut self, x: Var, w: Var, b: Var) -> Var {
        self.affine_act(x, w, b, Activation::Identity)
    }

    /// Fused `act(x · w + b)`: bias add and activation run in the GEMM
    /// epilogue, and the tape records a single node whose backward reuses
    /// the stored output for the activation derivative.
    pub fn affine_act(&mut self, x: Var, w: Var, b: Var, act: Activation) -> Var {
        let v = self.nodes[x.0].value.matmul_bias_act(
            &self.nodes[w.0].value,
            &self.nodes[b.0].value,
            act,
        );
        self.push(Op::AffineAct(x.0, w.0, b.0, act), v)
    }

    /// Fused two-operand affine `act(x·w + h·u + b)` — the recurrent gate
    /// form. One node replaces the five (two matmuls, two adds, one
    /// activation) the unfused construction records, with no intermediate
    /// matrices: the second GEMM accumulates into the first's output.
    pub fn affine2(&mut self, x: Var, w: Var, h: Var, u: Var, b: Var, act: Activation) -> Var {
        let mut v = self
            .nodes[x.0]
            .value
            .matmul_bias(&self.nodes[w.0].value, &self.nodes[b.0].value);
        self.nodes[h.0]
            .value
            .matmul_acc_act(&self.nodes[u.0].value, &mut v, act);
        self.push(Op::Affine2 { x: x.0, w: w.0, h: h.0, u: u.0, b: b.0, act }, v)
    }

    /// Scalar value of a 1×1 variable.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() on non-scalar variable");
        m[(0, 0)]
    }

    /// Runs the backward pass from a scalar `loss` (must be 1×1), returning
    /// gradients for every parameter leaf that participated.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward() requires a scalar loss"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::ones(1, 1));
        let mut out = Gradients::default();

        for i in (0..self.nodes.len()).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            match &self.nodes[i].op {
                Op::Const => {}
                Op::Param(id) => {
                    out.by_param
                        .entry(*id)
                        .and_modify(|acc| acc.add_scaled(&g, 1.0))
                        .or_insert(g);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    let neg = g.scale(-1.0);
                    accumulate(&mut grads, *a, g);
                    accumulate(&mut grads, *b, neg);
                }
                Op::Mul(a, b) => {
                    let ga = g.hadamard(&self.nodes[*b].value);
                    let gb = g.hadamard(&self.nodes[*a].value);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::MatMul(a, b) => {
                    // d/dA (A·B) = G · Bᵀ ; d/dB = Aᵀ · G. Both run on the
                    // packed kernel with the transpose absorbed in packing.
                    let ga = g.matmul_nt(&self.nodes[*b].value);
                    let gb = self.nodes[*a].value.t_matmul(&g);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::AddBias(a, b) => {
                    let gb = g.sum_rows();
                    accumulate(&mut grads, *a, g);
                    accumulate(&mut grads, *b, gb);
                }
                Op::AffineAct(x, w, b, act) => {
                    let dpre = if *act == Activation::Identity {
                        g
                    } else {
                        let y = &self.nodes[i].value;
                        g.zip(y, |gi, yi| gi * act.grad_from_output(yi))
                    };
                    let gx = dpre.matmul_nt(&self.nodes[*w].value);
                    let gw = self.nodes[*x].value.t_matmul(&dpre);
                    let gb = dpre.sum_rows();
                    accumulate(&mut grads, *x, gx);
                    accumulate(&mut grads, *w, gw);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Affine2 { x, w, h, u, b, act } => {
                    let dpre = if *act == Activation::Identity {
                        g
                    } else {
                        let y = &self.nodes[i].value;
                        g.zip(y, |gi, yi| gi * act.grad_from_output(yi))
                    };
                    let gx = dpre.matmul_nt(&self.nodes[*w].value);
                    let gw = self.nodes[*x].value.t_matmul(&dpre);
                    let gh = dpre.matmul_nt(&self.nodes[*u].value);
                    let gu = self.nodes[*h].value.t_matmul(&dpre);
                    let gb = dpre.sum_rows();
                    accumulate(&mut grads, *x, gx);
                    accumulate(&mut grads, *w, gw);
                    accumulate(&mut grads, *h, gh);
                    accumulate(&mut grads, *u, gu);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Scale(a, alpha) => {
                    let ga = g.scale(*alpha);
                    accumulate(&mut grads, *a, ga);
                }
                Op::Sigmoid(a) => {
                    // y' = y (1 - y), using the stored output value.
                    let y = &self.nodes[i].value;
                    let ga = g.zip(y, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.zip(y, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[*a].value;
                    let ga = g.zip(x, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    accumulate(&mut grads, *a, ga);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let w = self.nodes[p].value.cols();
                        let rows = self.nodes[p].value.rows();
                        let mut gp = Matrix::zeros(rows, w);
                        for r in 0..rows {
                            gp.row_mut(r)
                                .copy_from_slice(&g.row(r)[offset..offset + w]);
                        }
                        accumulate(&mut grads, p, gp);
                        offset += w;
                    }
                }
                Op::SliceCols(a, start, _end, w) => {
                    let rows = g.rows();
                    let mut ga = Matrix::zeros(rows, *w);
                    for r in 0..rows {
                        ga.row_mut(r)[*start..*start + g.cols()]
                            .copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::SliceRows(a, start, _end, h) => {
                    let cols = g.cols();
                    let mut ga = Matrix::zeros(*h, cols);
                    for r in 0..g.rows() {
                        ga.row_mut(start + r).copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let h = self.nodes[p].value.rows();
                        let gp = g.slice_rows(offset, offset + h);
                        accumulate(&mut grads, p, gp);
                        offset += h;
                    }
                }
                Op::Reshape(a, orig_r, orig_c) => {
                    let ga = Matrix::from_vec(*orig_r, *orig_c, g.as_slice().to_vec());
                    accumulate(&mut grads, *a, ga);
                }
                Op::Mean(a) => {
                    let (r, c) = self.nodes[*a].value.shape();
                    let ga = Matrix::filled(r, c, g[(0, 0)] / (r * c) as f32);
                    accumulate(&mut grads, *a, ga);
                }
                Op::Sum(a) => {
                    let (r, c) = self.nodes[*a].value.shape();
                    let ga = Matrix::filled(r, c, g[(0, 0)]);
                    accumulate(&mut grads, *a, ga);
                }
                Op::MeanRows(a) => {
                    let (r, c) = self.nodes[*a].value.shape();
                    let mut ga = Matrix::zeros(r, c);
                    let scale = 1.0 / r as f32;
                    for row in 0..r {
                        for (x, &gv) in ga.row_mut(row).iter_mut().zip(g.row(0)) {
                            *x = gv * scale;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::MseLoss(p, t) => {
                    let pv = &self.nodes[*p].value;
                    let tv = &self.nodes[*t].value;
                    let scale = 2.0 * g[(0, 0)] / pv.len() as f32;
                    let gp = pv.zip(tv, |pi, ti| scale * (pi - ti));
                    let gt = gp.scale(-1.0);
                    accumulate(&mut grads, *p, gp);
                    accumulate(&mut grads, *t, gt);
                }
                Op::SoftmaxRows(a) => {
                    // dz = (g − (g·y) 1ᵀ) ⊙ y per row, using stored y.
                    let y = &self.nodes[i].value;
                    let (r, c) = y.shape();
                    let mut ga = Matrix::zeros(r, c);
                    for row in 0..r {
                        let yr = y.row(row);
                        let gr = g.row(row);
                        let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                        for (j, out) in ga.row_mut(row).iter_mut().enumerate() {
                            *out = yr[j] * (gr[j] - dot);
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::CrossEntropyLoss(z, t) => {
                    let zv = &self.nodes[*z].value;
                    let tv = &self.nodes[*t].value;
                    let (r, c) = zv.shape();
                    let scale = g[(0, 0)] / r as f32;
                    let mut gz = Matrix::zeros(r, c);
                    for row in 0..r {
                        let mut p = zv.row(row).to_vec();
                        softmax_row_inplace(&mut p);
                        for (j, out) in gz.row_mut(row).iter_mut().enumerate() {
                            *out = scale * (p[j] - tv.row(row)[j]);
                        }
                    }
                    accumulate(&mut grads, *z, gz);
                    // Targets are labels; no gradient flows to them.
                }
                Op::RowL2Norm(a) => {
                    // y = x / ||x||; dy/dx = (I - y yᵀ) / ||x|| per row.
                    let x = &self.nodes[*a].value;
                    let y = &self.nodes[i].value;
                    let (r, c) = x.shape();
                    let mut ga = Matrix::zeros(r, c);
                    for row in 0..r {
                        let norm = norm_eps(x.row(row));
                        let yr = y.row(row);
                        let gr = g.row(row);
                        let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                        for (j, out) in ga.row_mut(row).iter_mut().enumerate() {
                            *out = (gr[j] - yr[j] * dot) / norm;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
            }
        }
        out
    }
}

/// Numerically stable in-place row softmax.
fn softmax_row_inplace(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum.max(1e-12);
    for x in row.iter_mut() {
        *x *= inv;
    }
}

fn norm_eps(row: &[f32]) -> f32 {
    (row.iter().map(|x| x * x).sum::<f32>().sqrt()).max(1e-6)
}

/// Routes a gradient to a node's slot, *moving* it into empty slots —
/// every backward arm hands over an owned matrix, so first-writer nodes
/// (the common case on tree-shaped tapes) reuse the buffer that was just
/// computed instead of cloning it.
fn accumulate(grads: &mut [Option<Matrix>], idx: usize, g: Matrix) {
    match &mut grads[idx] {
        Some(acc) => acc.add_scaled(&g, 1.0),
        slot @ None => *slot = Some(g),
    }
}

/// Finite-difference gradient check for a scalar function of the parameter
/// store. Returns the relative L2 error between the analytic and numeric
/// gradient vectors over all probed coordinates:
/// `‖g_num − g_exact‖ / (‖g_num‖ + ‖g_exact‖ + ε)`.
///
/// Aggregating over coordinates makes the check robust to the f32
/// finite-difference noise that dominates individually tiny gradients; a
/// genuinely wrong VJP shows up as a large aggregate error.
///
/// `f` must rebuild the computation from scratch on each call (the usual
/// forward-pass closure). Only the first `max_coords` coordinates of each
/// parameter are probed to keep tests fast.
pub fn gradient_check(
    params: &mut ParamStore,
    f: impl Fn(&mut Tape) -> Var,
    max_coords: usize,
) -> f32 {
    // Analytic gradients.
    let analytic = {
        let mut tape = Tape::new(params);
        let loss = f(&mut tape);
        tape.backward(loss)
    };
    let eps = 1e-2f32;
    let mut diff_sq = 0.0f64;
    let mut num_sq = 0.0f64;
    let mut exact_sq = 0.0f64;
    for id in params.ids().collect::<Vec<_>>() {
        let n = params.get(id).len().min(max_coords);
        for k in 0..n {
            let orig = params.get(id).as_slice()[k];
            params.get_mut(id).as_mut_slice()[k] = orig + eps;
            let lp = {
                let mut tape = Tape::new(params);
                let loss = f(&mut tape);
                tape.scalar(loss)
            };
            params.get_mut(id).as_mut_slice()[k] = orig - eps;
            let lm = {
                let mut tape = Tape::new(params);
                let loss = f(&mut tape);
                tape.scalar(loss)
            };
            params.get_mut(id).as_mut_slice()[k] = orig;
            let numeric = ((lp - lm) / (2.0 * eps)) as f64;
            let exact = analytic.get(id).map_or(0.0, |g| g.as_slice()[k]) as f64;
            diff_sq += (numeric - exact) * (numeric - exact);
            num_sq += numeric * numeric;
            exact_sq += exact * exact;
        }
    }
    (diff_sq.sqrt() / (num_sq.sqrt() + exact_sq.sqrt() + 1e-8)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let mut rng = Rng::new(1);
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::rand_normal(3, 4, 0.5, &mut rng));
        let x = Matrix::rand_normal(2, 3, 1.0, &mut rng);
        let t = Matrix::rand_normal(2, 4, 1.0, &mut rng);
        let err = gradient_check(
            &mut ps,
            |tape| {
                let xv = tape.constant(x.clone());
                let wv = tape.param(w);
                let y = tape.matmul(xv, wv);
                let tv = tape.constant(t.clone());
                tape.mse_loss(y, tv)
            },
            12,
        );
        assert!(err < 2e-2, "gradcheck err={err}");
    }

    #[test]
    fn affine_act_matches_unfused_graph_and_gradcheck() {
        let mut rng = Rng::new(11);
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::rand_normal(3, 5, 0.5, &mut rng));
        let b = ps.register("b", Matrix::rand_normal(1, 5, 0.5, &mut rng));
        let x = Matrix::rand_normal(4, 3, 1.0, &mut rng);
        let t = Matrix::rand_normal(4, 5, 1.0, &mut rng);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            // Fused forward value equals the unfused construction.
            let fused = {
                let mut tape = Tape::new(&ps);
                let xv = tape.constant(x.clone());
                let (wv, bv) = (tape.param(w), tape.param(b));
                let y = tape.affine_act(xv, wv, bv, act);
                tape.value(y).clone()
            };
            let unfused = {
                let mut tape = Tape::new(&ps);
                let xv = tape.constant(x.clone());
                let (wv, bv) = (tape.param(w), tape.param(b));
                let pre = tape.matmul(xv, wv);
                let pre = tape.add_bias(pre, bv);
                let y = match act {
                    Activation::Identity => pre,
                    Activation::Relu => tape.relu(pre),
                    Activation::Tanh => tape.tanh(pre),
                    Activation::Sigmoid => tape.sigmoid(pre),
                };
                tape.value(y).clone()
            };
            for (f, u) in fused.as_slice().iter().zip(unfused.as_slice()) {
                assert!((f - u).abs() <= 1e-5 * u.abs().max(1.0), "{act:?}: {f} vs {u}");
            }
            let err = gradient_check(
                &mut ps,
                |tape| {
                    let xv = tape.constant(x.clone());
                    let (wv, bv) = (tape.param(w), tape.param(b));
                    let y = tape.affine_act(xv, wv, bv, act);
                    let tv = tape.constant(t.clone());
                    tape.mse_loss(y, tv)
                },
                12,
            );
            assert!(err < 2e-2, "{act:?}: gradcheck err={err}");
        }
    }

    #[test]
    fn affine2_matches_unfused_graph_and_gradcheck() {
        let mut rng = Rng::new(12);
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::rand_normal(3, 4, 0.5, &mut rng));
        let u = ps.register("u", Matrix::rand_normal(4, 4, 0.5, &mut rng));
        let b = ps.register("b", Matrix::rand_normal(1, 4, 0.5, &mut rng));
        let x = Matrix::rand_normal(2, 3, 1.0, &mut rng);
        let h = Matrix::rand_normal(2, 4, 1.0, &mut rng);
        let t = Matrix::rand_normal(2, 4, 1.0, &mut rng);
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Identity] {
            let fused = {
                let mut tape = Tape::new(&ps);
                let xv = tape.constant(x.clone());
                let hv = tape.constant(h.clone());
                let (wv, uv, bv) = (tape.param(w), tape.param(u), tape.param(b));
                let y = tape.affine2(xv, wv, hv, uv, bv, act);
                tape.value(y).clone()
            };
            let unfused = {
                let mut tape = Tape::new(&ps);
                let xv = tape.constant(x.clone());
                let hv = tape.constant(h.clone());
                let (wv, uv, bv) = (tape.param(w), tape.param(u), tape.param(b));
                let xw = tape.matmul(xv, wv);
                let hu = tape.matmul(hv, uv);
                let sum = tape.add(xw, hu);
                let pre = tape.add_bias(sum, bv);
                let y = match act {
                    Activation::Identity => pre,
                    Activation::Relu => tape.relu(pre),
                    Activation::Tanh => tape.tanh(pre),
                    Activation::Sigmoid => tape.sigmoid(pre),
                };
                tape.value(y).clone()
            };
            for (f, un) in fused.as_slice().iter().zip(unfused.as_slice()) {
                assert!((f - un).abs() <= 1e-5 * un.abs().max(1.0), "{act:?}: {f} vs {un}");
            }
            let err = gradient_check(
                &mut ps,
                |tape| {
                    let xv = tape.constant(x.clone());
                    let hv = tape.constant(h.clone());
                    let (wv, uv, bv) = (tape.param(w), tape.param(u), tape.param(b));
                    let y = tape.affine2(xv, wv, hv, uv, bv, act);
                    let tv = tape.constant(t.clone());
                    tape.mse_loss(y, tv)
                },
                12,
            );
            assert!(err < 2e-2, "{act:?}: gradcheck err={err}");
        }
    }

    #[test]
    fn deep_composite_gradients_match() {
        // Two-layer MLP with tanh + sigmoid + bias + concat + slice.
        let mut rng = Rng::new(2);
        let mut ps = ParamStore::new();
        let w1 = ps.register("w1", Matrix::rand_normal(4, 6, 0.4, &mut rng));
        let b1 = ps.register("b1", Matrix::rand_normal(1, 6, 0.1, &mut rng));
        let w2 = ps.register("w2", Matrix::rand_normal(6, 2, 0.4, &mut rng));
        let x = Matrix::rand_normal(5, 4, 1.0, &mut rng);
        let t = Matrix::rand_normal(5, 2, 1.0, &mut rng);
        let err = gradient_check(
            &mut ps,
            |tape| {
                let xv = tape.constant(x.clone());
                let w1v = tape.param(w1);
                let b1v = tape.param(b1);
                let h = tape.affine(xv, w1v, b1v);
                let h = tape.tanh(h);
                let left = tape.slice_cols(h, 0, 3);
                let right = tape.slice_cols(h, 3, 6);
                let h = tape.concat_cols(&[left, right]);
                let w2v = tape.param(w2);
                let y = tape.matmul(h, w2v);
                let y = tape.sigmoid(y);
                let tv = tape.constant(t.clone());
                tape.mse_loss(y, tv)
            },
            10,
        );
        assert!(err < 3e-2, "gradcheck err={err}");
    }

    #[test]
    fn row_l2_norm_gradients_match() {
        let mut rng = Rng::new(3);
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::rand_normal(3, 5, 0.8, &mut rng));
        let t = Matrix::rand_normal(3, 5, 0.5, &mut rng);
        let err = gradient_check(
            &mut ps,
            |tape| {
                let wv = tape.param(w);
                let y = tape.row_l2_norm(wv);
                let tv = tape.constant(t.clone());
                tape.mse_loss(y, tv)
            },
            15,
        );
        assert!(err < 3e-2, "gradcheck err={err}");
    }

    #[test]
    fn relu_mean_rows_gradients_match() {
        let mut rng = Rng::new(4);
        let mut ps = ParamStore::new();
        // Offset away from 0 so finite differences don't straddle the kink.
        let mut init = Matrix::rand_normal(4, 3, 1.0, &mut rng);
        init.map_inplace(|x| if x.abs() < 0.05 { 0.2 } else { x });
        let w = ps.register("w", init);
        let t = Matrix::rand_normal(1, 3, 0.5, &mut rng);
        let err = gradient_check(
            &mut ps,
            |tape| {
                let wv = tape.param(w);
                let y = tape.relu(wv);
                let y = tape.mean_rows(y);
                let tv = tape.constant(t.clone());
                tape.mse_loss(y, tv)
            },
            12,
        );
        assert!(err < 2e-2, "gradcheck err={err}");
    }

    #[test]
    fn parameter_used_twice_accumulates_gradient() {
        // loss = mean((w + w)²) → dloss/dw = 8w/len; reuse must sum branches.
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::from_rows(&[&[1.0, -2.0]]));
        let mut tape = Tape::new(&ps);
        let wv = tape.param(w);
        let s = tape.add(wv, wv);
        let sq = tape.mul(s, s);
        let loss = tape.mean(sq);
        let grads = tape.backward(loss);
        let g = grads.get(w).unwrap();
        assert!((g[(0, 0)] - 4.0).abs() < 1e-5, "{g:?}");
        assert!((g[(0, 1)] + 8.0).abs() < 1e-5, "{g:?}");
    }

    #[test]
    fn constants_receive_no_parameter_gradient() {
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::ones(1, 1));
        let mut tape = Tape::new(&ps);
        let c = tape.constant(Matrix::filled(1, 1, 3.0));
        let sq = tape.mul(c, c);
        let loss = tape.mean(sq);
        let grads = tape.backward(loss);
        assert!(grads.get(w).is_none());
    }

    #[test]
    fn clip_global_norm_bounds_gradients() {
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::filled(1, 2, 100.0));
        let mut tape = Tape::new(&ps);
        let wv = tape.param(w);
        let sq = tape.mul(wv, wv);
        let loss = tape.sum(sq);
        let mut grads = tape.backward(loss);
        assert!(grads.global_norm() > 1.0);
        grads.clip_global_norm(1.0);
        assert!((grads.global_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn scalar_panics_on_matrix() {
        let ps = ParamStore::new();
        let mut tape = Tape::new(&ps);
        let c = tape.constant(Matrix::zeros(2, 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.scalar(c)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn slice_and_concat_rows_gradcheck() {
        let mut rng = Rng::new(31);
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::rand_normal(4, 3, 0.7, &mut rng));
        let t = Matrix::rand_normal(4, 3, 0.5, &mut rng);
        let err = gradient_check(
            &mut ps,
            |tape| {
                let wv = tape.param(w);
                // Split into rows, transform one, and reassemble.
                let r0 = tape.slice_rows(wv, 0, 1);
                let r1 = tape.slice_rows(wv, 1, 3);
                let r2 = tape.slice_rows(wv, 3, 4);
                let r1t = tape.tanh(r1);
                let back = tape.concat_rows(&[r0, r1t, r2]);
                let tv = tape.constant(t.clone());
                tape.mse_loss(back, tv)
            },
            12,
        );
        assert!(err < 2e-2, "err={err}");
    }

    #[test]
    fn softmax_rows_sum_to_one_and_gradcheck() {
        let mut rng = Rng::new(41);
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::rand_normal(3, 4, 1.0, &mut rng));
        let t = Matrix::rand_normal(3, 4, 0.3, &mut rng);
        {
            let mut tape = Tape::new(&ps);
            let wv = tape.param(w);
            let y = tape.softmax_rows(wv);
            let yv = tape.value(y);
            for r in 0..3 {
                let s: f32 = yv.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
                assert!(yv.row(r).iter().all(|&p| p > 0.0));
            }
        }
        let err = gradient_check(
            &mut ps,
            |tape| {
                let wv = tape.param(w);
                let y = tape.softmax_rows(wv);
                let tv = tape.constant(t.clone());
                tape.mse_loss(y, tv)
            },
            12,
        );
        assert!(err < 3e-2, "err={err}");
    }

    #[test]
    fn cross_entropy_gradcheck_and_value() {
        let mut rng = Rng::new(42);
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::rand_normal(4, 3, 1.0, &mut rng));
        // One-hot targets.
        let mut y = Matrix::zeros(4, 3);
        for r in 0..4 {
            y[(r, r % 3)] = 1.0;
        }
        // Value check: uniform logits → loss = ln(3).
        {
            let mut tape = Tape::new(&ps);
            let z = tape.constant(Matrix::zeros(4, 3));
            let t = tape.constant(y.clone());
            let loss = tape.cross_entropy_loss(z, t);
            assert!((tape.scalar(loss) - 3.0f32.ln()).abs() < 1e-5);
        }
        let err = gradient_check(
            &mut ps,
            |tape| {
                let wv = tape.param(w);
                let tv = tape.constant(y.clone());
                tape.cross_entropy_loss(wv, tv)
            },
            12,
        );
        assert!(err < 2e-2, "err={err}");
    }

    #[test]
    fn cross_entropy_decreases_under_sgd() {
        use crate::optim::{Optimizer, Sgd};
        let mut rng = Rng::new(43);
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::rand_normal(6, 3, 0.5, &mut rng));
        let mut y = Matrix::zeros(6, 3);
        for r in 0..6 {
            y[(r, r % 3)] = 1.0;
        }
        let mut opt = Sgd::new(0.5);
        let mut losses = Vec::new();
        for _ in 0..120 {
            let (value, grads) = {
                let mut tape = Tape::new(&ps);
                let wv = tape.param(w);
                let tv = tape.constant(y.clone());
                let loss = tape.cross_entropy_loss(wv, tv);
                (tape.scalar(loss), tape.backward(loss))
            };
            losses.push(value);
            opt.step(&mut ps, &grads);
        }
        assert!(losses.last().unwrap() < &(losses[0] * 0.2), "{losses:?}");
    }

    #[test]
    fn reshape_gradcheck() {
        let mut rng = Rng::new(33);
        let mut ps = ParamStore::new();
        let w = ps.register("w", Matrix::rand_normal(1, 6, 0.7, &mut rng));
        let x = Matrix::rand_normal(4, 2, 1.0, &mut rng);
        let t = Matrix::rand_normal(4, 3, 0.5, &mut rng);
        let err = gradient_check(
            &mut ps,
            |tape| {
                let wv = tape.param(w);
                let wmat = tape.reshape(wv, 2, 3); // flat weights → matrix
                let xv = tape.constant(x.clone());
                let y = tape.matmul(xv, wmat);
                let tv = tape.constant(t.clone());
                tape.mse_loss(y, tv)
            },
            6,
        );
        assert!(err < 2e-2, "err={err}");
    }

    #[test]
    fn sub_and_scale_backward() {
        let mut ps = ParamStore::new();
        let a = ps.register("a", Matrix::filled(1, 1, 5.0));
        let b = ps.register("b", Matrix::filled(1, 1, 2.0));
        // loss = (3a - b)² → d/da = 6(3a-b) = 78, d/db = -2(3a-b) = -26
        let mut tape = Tape::new(&ps);
        let av = tape.param(a);
        let bv = tape.param(b);
        let a3 = tape.scale(av, 3.0);
        let d = tape.sub(a3, bv);
        let sq = tape.mul(d, d);
        let loss = tape.sum(sq);
        let grads = tape.backward(loss);
        assert!((grads.get(a).unwrap()[(0, 0)] - 78.0).abs() < 1e-3);
        assert!((grads.get(b).unwrap()[(0, 0)] + 26.0).abs() < 1e-3);
    }
}
