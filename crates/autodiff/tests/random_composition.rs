//! Property test: gradients of *randomly composed* op chains always match
//! finite differences. This sweeps the op space far more broadly than the
//! hand-written unit tests.

use pddl_autodiff::{gradient_check, ParamStore, Tape, Var};
use pddl_tensor::{Matrix, Rng};
use proptest::prelude::*;

/// One step in a random chain of shape-preserving ops.
#[derive(Clone, Copy, Debug)]
enum Step {
    Tanh,
    Sigmoid,
    Relu,
    Scale(i8),
    RowNorm,
    MatmulSquare, // multiply by a fixed random square matrix
    AddConst,
    MulConst,
}

fn apply(step: Step, tape: &mut Tape, x: Var, dim: usize, rng: &mut Rng) -> Var {
    match step {
        Step::Tanh => tape.tanh(x),
        Step::Sigmoid => tape.sigmoid(x),
        Step::Relu => tape.relu(x),
        Step::Scale(s) => tape.scale(x, s as f32 / 4.0 + 1.5),
        Step::RowNorm => tape.row_l2_norm(x),
        Step::MatmulSquare => {
            let m = tape.constant(Matrix::rand_normal(dim, dim, 0.5, rng));
            tape.matmul(x, m)
        }
        Step::AddConst => {
            let (r, c) = tape.shape(x);
            let m = tape.constant(Matrix::rand_normal(r, c, 0.5, rng));
            tape.add(x, m)
        }
        Step::MulConst => {
            let (r, c) = tape.shape(x);
            let m = tape.constant(Matrix::rand_normal(r, c, 0.5, rng));
            tape.mul(x, m)
        }
    }
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Tanh),
        Just(Step::Sigmoid),
        Just(Step::Relu),
        (-4i8..4).prop_map(Step::Scale),
        Just(Step::RowNorm),
        Just(Step::MatmulSquare),
        Just(Step::AddConst),
        Just(Step::MulConst),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn random_chains_gradcheck(
        steps in prop::collection::vec(arb_step(), 1..6),
        seed in any::<u64>(),
        rows in 1usize..4,
        dim in 2usize..5,
    ) {
        let mut init_rng = Rng::new(seed);
        // Nudge values away from ReLU kinks so finite differences are clean.
        let mut init = Matrix::rand_normal(rows, dim, 0.8, &mut init_rng);
        init.map_inplace(|v| if v.abs() < 0.05 { 0.2 } else { v });
        let target = Matrix::rand_normal(rows, dim, 0.5, &mut init_rng);

        let mut ps = ParamStore::new();
        let w = ps.register("w", init);
        let err = gradient_check(
            &mut ps,
            |tape| {
                // Constants must be identical across re-evaluations: reseed.
                let mut rng = Rng::new(seed ^ 0xC0);
                let mut x = tape.param(w);
                for &s in &steps {
                    x = apply(s, tape, x, dim, &mut rng);
                }
                let t = tape.constant(target.clone());
                tape.mse_loss(x, t)
            },
            8,
        );
        prop_assert!(err < 0.08, "chain {:?}: gradcheck err {}", steps, err);
    }
}
