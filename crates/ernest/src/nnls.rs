//! Lawson–Hanson non-negative least squares.
//!
//! Solves `min ‖Ax − b‖₂  s.t. x ≥ 0` by the classic active-set method: grow
//! a passive set P greedily by the most positive gradient coordinate, solve
//! the unconstrained subproblem on P (via the workspace QR `lstsq`), and
//! back off along the feasible segment when the subproblem leaves the
//! positive orthant.

use pddl_tensor::linalg::lstsq;
use pddl_tensor::Matrix;

/// NNLS solution of `a·x ≈ b` with `x ≥ 0`.
pub fn nnls(a: &Matrix, b: &[f32]) -> Vec<f32> {
    let (m, n) = a.shape();
    assert_eq!(m, b.len(), "row/target mismatch");
    let mut x = vec![0.0f32; n];
    let mut passive = vec![false; n];
    let max_outer = 3 * n + 10;

    for _outer in 0..max_outer {
        // Gradient of ½‖Ax−b‖²: w = Aᵀ(b − Ax).
        let resid: Vec<f32> = {
            let ax = a.matvec(&x);
            b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect()
        };
        let mut w = vec![0.0f32; n];
        for (r, &res) in resid.iter().enumerate() {
            for (j, &v) in a.row(r).iter().enumerate() {
                w[j] += v * res;
            }
        }
        // Most violated KKT coordinate among the active (zero) set.
        let candidate = (0..n)
            .filter(|&j| !passive[j])
            .max_by(|&i, &j| w[i].partial_cmp(&w[j]).unwrap_or(std::cmp::Ordering::Equal));
        let j = match candidate {
            Some(j) if w[j] > 1e-7 => j,
            _ => break, // KKT satisfied
        };
        passive[j] = true;

        // Inner loop: solve on the passive set, backing off if infeasible.
        loop {
            let idx: Vec<usize> = (0..n).filter(|&k| passive[k]).collect();
            let sub = gather_cols(a, &idx);
            let z = lstsq(&sub, b);
            if z.iter().all(|&v| v > 1e-10) {
                x.iter_mut().for_each(|v| *v = 0.0);
                for (pos, &k) in idx.iter().enumerate() {
                    x[k] = z[pos];
                }
                break;
            }
            // Feasible step length toward z.
            let mut alpha = f32::INFINITY;
            for (pos, &k) in idx.iter().enumerate() {
                if z[pos] <= 1e-10 {
                    let d = x[k] - z[pos];
                    if d > 0.0 {
                        alpha = alpha.min(x[k] / d);
                    }
                }
            }
            let alpha = if alpha.is_finite() { alpha } else { 0.0 };
            for (pos, &k) in idx.iter().enumerate() {
                x[k] += alpha * (z[pos] - x[k]);
                if x[k] < 1e-9 {
                    x[k] = 0.0;
                    passive[k] = false;
                }
            }
            if idx.iter().all(|&k| !passive[k]) {
                break; // everything backed out; return to outer loop
            }
        }
    }
    x
}

fn gather_cols(a: &Matrix, cols: &[usize]) -> Matrix {
    let m = a.rows();
    let mut out = Matrix::zeros(m, cols.len());
    for r in 0..m {
        let row = a.row(r);
        for (c, &j) in cols.iter().enumerate() {
            out[(r, c)] = row[j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_tensor::Rng;

    #[test]
    fn recovers_nonnegative_truth() {
        let mut rng = Rng::new(1);
        let a = Matrix::rand_uniform(60, 4, 1.0, &mut rng).map(|v| v.abs());
        let truth = [2.0f32, 0.0, 1.5, 0.25];
        let b = a.matvec(&truth);
        let x = nnls(&a, &b);
        for (xi, ti) in x.iter().zip(&truth) {
            assert!((xi - ti).abs() < 1e-2, "{x:?}");
        }
    }

    #[test]
    fn clamps_negative_component_to_zero() {
        // Truth has a negative coefficient; NNLS must return x ≥ 0 and the
        // best non-negative fit.
        let mut rng = Rng::new(2);
        let a = Matrix::rand_normal(80, 3, 1.0, &mut rng);
        let truth = [1.0f32, -2.0, 0.5];
        let b = a.matvec(&truth);
        let x = nnls(&a, &b);
        assert!(x.iter().all(|&v| v >= 0.0), "{x:?}");
    }

    #[test]
    fn kkt_conditions_hold() {
        let mut rng = Rng::new(3);
        let a = Matrix::rand_uniform(50, 5, 1.0, &mut rng).map(|v| v.abs());
        let b: Vec<f32> = (0..50).map(|_| rng.uniform(0.0, 5.0)).collect();
        let x = nnls(&a, &b);
        // Gradient w = Aᵀ(b−Ax): w_j ≈ 0 where x_j > 0; w_j ≤ 0 where x_j = 0.
        let ax = a.matvec(&x);
        let resid: Vec<f32> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        for j in 0..5 {
            let wj: f32 = (0..50).map(|r| a[(r, j)] * resid[r]).sum();
            if x[j] > 1e-6 {
                assert!(wj.abs() < 1e-2, "active gradient {wj} at {j}");
            } else {
                assert!(wj < 1e-2, "inactive gradient {wj} at {j} should be ≤ 0");
            }
        }
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let mut rng = Rng::new(4);
        let a = Matrix::rand_normal(10, 3, 1.0, &mut rng);
        let x = nnls(&a, &[0.0; 10]);
        assert!(x.iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn handles_collinear_columns() {
        let mut a = Matrix::zeros(20, 2);
        for i in 0..20 {
            a[(i, 0)] = i as f32;
            a[(i, 1)] = 2.0 * i as f32;
        }
        let b: Vec<f32> = (0..20).map(|i| 4.0 * i as f32).collect();
        let x = nnls(&a, &b);
        // Any non-negative combo with x0 + 2 x1 = 4 is optimal.
        let fit = a.matvec(&x);
        let err: f32 = fit.iter().zip(&b).map(|(f, t)| (f - t).abs()).sum();
        assert!(err < 1e-2, "{x:?} err {err}");
    }
}
