//! Optimal experiment design: which training runs should Ernest pay for?
//!
//! Ernest picks a handful of small-scale configurations whose features make
//! the regression well-conditioned, trading information against the cost of
//! running them. The NSDI paper solves a convex relaxation of A-optimal
//! design; we implement the standard greedy A-optimal variant: repeatedly
//! add the candidate that most reduces `trace((XᵀX + δI)⁻¹)`.

use crate::features::{ernest_features, ERNEST_DIM};
use pddl_tensor::linalg::{inv_spd, trace};
use pddl_tensor::Matrix;

/// A candidate training-run configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Fraction of the full dataset to train on (Ernest runs on samples).
    pub scale: f64,
    pub machines: usize,
    /// Cost (seconds) of running this configuration, if known; used to
    /// report collection cost in the Fig. 13 reproduction.
    pub cost: f64,
}

/// Default candidate grid: small data scales on few machines, the regime
/// Ernest samples to extrapolate from.
pub fn default_candidates(max_machines: usize) -> Vec<Candidate> {
    let mut c = Vec::new();
    for &scale in &[0.125f64, 0.25, 0.5] {
        for m in 1..=max_machines.min(8) {
            c.push(Candidate { scale, machines: m, cost: 0.0 });
        }
    }
    c
}

/// Greedy A-optimal selection of `k` candidates. Returns indices into
/// `candidates`. `delta` regularizes the information matrix so the first
/// picks are well-defined.
pub fn greedy_a_optimal(candidates: &[Candidate], k: usize) -> Vec<usize> {
    assert!(k >= 1 && k <= candidates.len(), "k out of range");
    let delta = 1e-3f32;
    let rows: Vec<[f32; ERNEST_DIM]> = candidates
        .iter()
        .map(|c| ernest_features(c.scale, c.machines))
        .collect();

    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut info = Matrix::eye(ERNEST_DIM).scale(delta);
    for _ in 0..k {
        let mut best: Option<(usize, f32)> = None;
        for (i, row) in rows.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            // info' = info + r rᵀ
            let mut trial = info.clone();
            for a in 0..ERNEST_DIM {
                for b in 0..ERNEST_DIM {
                    trial[(a, b)] += row[a] * row[b];
                }
            }
            let score = match inv_spd(&trial) {
                Some(inv) => trace(&inv),
                None => continue,
            };
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((i, score));
            }
        }
        let (i, _) = best.expect("at least one candidate remains");
        chosen.push(i);
        let row = &rows[i];
        for a in 0..ERNEST_DIM {
            for b in 0..ERNEST_DIM {
                info[(a, b)] += row[a] * row[b];
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_requested_count_without_duplicates() {
        let cand = default_candidates(8);
        let picks = greedy_a_optimal(&cand, 6);
        assert_eq!(picks.len(), 6);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn design_spans_machine_counts() {
        // A-optimality needs variation in m to identify log m and m terms.
        let cand = default_candidates(8);
        let picks = greedy_a_optimal(&cand, 5);
        let machines: Vec<usize> = picks.iter().map(|&i| cand[i].machines).collect();
        let distinct = {
            let mut m = machines.clone();
            m.sort_unstable();
            m.dedup();
            m.len()
        };
        assert!(distinct >= 3, "degenerate design {machines:?}");
    }

    #[test]
    fn designed_subset_conditions_regression_better_than_fixed_corner() {
        // Compare trace((XᵀX)⁻¹) of the greedy design vs. naive "all at
        // 1 machine" — the greedy one must be better-conditioned.
        let cand = default_candidates(8);
        let picks = greedy_a_optimal(&cand, 5);
        let info_of = |idx: &[usize]| {
            let mut info = Matrix::eye(ERNEST_DIM).scale(1e-3);
            for &i in idx {
                let r = ernest_features(cand[i].scale, cand[i].machines);
                for a in 0..ERNEST_DIM {
                    for b in 0..ERNEST_DIM {
                        info[(a, b)] += r[a] * r[b];
                    }
                }
            }
            trace(&inv_spd(&info).unwrap())
        };
        let naive: Vec<usize> = (0..cand.len())
            .filter(|&i| cand[i].machines == 1)
            .take(5)
            .collect();
        assert!(info_of(&picks) < info_of(&naive));
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn rejects_oversized_k() {
        let cand = default_candidates(2);
        let _ = greedy_a_optimal(&cand, 100);
    }
}
