//! Ernest (Venkataraman et al., NSDI 2016) — the state-of-the-art black-box
//! baseline PredictDDL compares against.
//!
//! Ernest predicts job runtime from a small analytically-motivated feature
//! basis of the input *scale* `s` (fraction of the dataset) and the number
//! of machines `m`:
//!
//! ```text
//! t(s, m) = θ₀·1 + θ₁·s/m + θ₂·log m + θ₃·m ,   θ ≥ 0
//! ```
//!
//! fit by **non-negative least squares** (Lawson–Hanson), with training
//! configurations chosen by **optimal experiment design**. Both pieces are
//! implemented here faithfully:
//!
//! * [`features`] — the basis above;
//! * [`nnls`] — Lawson–Hanson active-set NNLS with KKT-verified output;
//! * [`design`] — greedy A-optimal selection of training configurations
//!   (Ernest §4 uses a convex relaxation; the greedy variant has the same
//!   role: pick few, informative, cheap runs);
//! * [`model`] — fit/predict plus the two usage modes the PredictDDL paper
//!   exercises: *pooled* (one model over all workloads, the reusability
//!   comparison of Fig. 9) and *per-workload* (retrain on every workload
//!   change, the cost comparison of Fig. 13).

pub mod design;
pub mod features;
pub mod model;
pub mod nnls;

pub use design::greedy_a_optimal;
pub use features::{ernest_features, ERNEST_DIM};
pub use model::ErnestModel;
