//! The Ernest predictor: NNLS over the Ernest basis.

use crate::features::{ernest_features, ERNEST_DIM};
use crate::nnls::nnls;
use pddl_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// One Ernest training observation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ErnestSample {
    /// Dataset scale fraction of the run.
    pub scale: f64,
    pub machines: usize,
    /// Observed runtime, seconds.
    pub time_secs: f64,
}

/// Fitted Ernest model `t = θ·φ(s, m)` with `θ ≥ 0`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ErnestModel {
    pub theta: Vec<f32>,
}

impl ErnestModel {
    /// Fits by non-negative least squares (the paper's choice: NNLS "keeps
    /// coefficients physically interpretable").
    pub fn fit(samples: &[ErnestSample]) -> Self {
        assert!(
            samples.len() >= ERNEST_DIM,
            "Ernest needs at least {ERNEST_DIM} observations"
        );
        let mut x = Matrix::zeros(samples.len(), ERNEST_DIM);
        let mut y = Vec::with_capacity(samples.len());
        for (r, s) in samples.iter().enumerate() {
            x.set_row(r, &ernest_features(s.scale, s.machines));
            y.push(s.time_secs as f32);
        }
        Self { theta: nnls(&x, &y) }
    }

    /// Predicted runtime for a configuration.
    pub fn predict(&self, scale: f64, machines: usize) -> f64 {
        assert_eq!(self.theta.len(), ERNEST_DIM, "predict before fit");
        ernest_features(scale, machines)
            .iter()
            .zip(&self.theta)
            .map(|(f, t)| (*f as f64) * (*t as f64))
            .sum()
    }

    /// All coefficients non-negative (NNLS invariant).
    pub fn is_physical(&self) -> bool {
        self.theta.iter().all(|&t| t >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic job following Ernest's own model family exactly.
    fn ernest_world(scale: f64, machines: usize) -> f64 {
        let m = machines as f64;
        5.0 + 120.0 * scale / m + 2.0 * m.ln() + 0.8 * m
    }

    fn samples(configs: &[(f64, usize)]) -> Vec<ErnestSample> {
        configs
            .iter()
            .map(|&(s, m)| ErnestSample { scale: s, machines: m, time_secs: ernest_world(s, m) })
            .collect()
    }

    #[test]
    fn recovers_in_family_model() {
        let train = samples(&[
            (0.125, 1),
            (0.125, 2),
            (0.25, 1),
            (0.25, 4),
            (0.5, 2),
            (0.5, 8),
        ]);
        let model = ErnestModel::fit(&train);
        assert!(model.is_physical());
        // Extrapolate to full scale on 16 machines — Ernest's core use case.
        let pred = model.predict(1.0, 16);
        let actual = ernest_world(1.0, 16);
        assert!(
            (pred / actual - 1.0).abs() < 0.05,
            "pred {pred:.2} vs actual {actual:.2}"
        );
    }

    #[test]
    fn coefficients_nonnegative_even_with_decreasing_times() {
        // Runtime that drops sharply with machines (no positive-coefficient
        // basis combination fits perfectly) — NNLS must stay feasible.
        let train: Vec<ErnestSample> = (1..=8)
            .map(|m| ErnestSample {
                scale: 1.0,
                machines: m,
                time_secs: 100.0 / m as f64,
            })
            .collect();
        let model = ErnestModel::fit(&train);
        assert!(model.is_physical());
        // 1/m is exactly the s/m column at s=1, so the fit is good.
        assert!((model.predict(1.0, 4) - 25.0).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_samples_panics() {
        let _ = ErnestModel::fit(&samples(&[(1.0, 1)]));
    }

    #[test]
    fn serde_round_trip() {
        let model = ErnestModel::fit(&samples(&[
            (0.25, 1),
            (0.25, 2),
            (0.5, 4),
            (1.0, 8),
            (1.0, 2),
        ]));
        let s = serde_json::to_string(&model).unwrap();
        let m2: ErnestModel = serde_json::from_str(&s).unwrap();
        assert_eq!(m2.theta, model.theta);
    }
}
