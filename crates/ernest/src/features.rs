//! Ernest's feature basis.

/// Basis width.
pub const ERNEST_DIM: usize = 4;

/// `[1, s/m, log m, m]` — serial term, parallel work term, tree-aggregation
/// term, per-machine overhead term (NSDI'16 §3.1).
pub fn ernest_features(scale: f64, machines: usize) -> [f32; ERNEST_DIM] {
    assert!(machines >= 1, "at least one machine");
    assert!(scale > 0.0, "scale must be positive");
    let m = machines as f64;
    [1.0, (scale / m) as f32, (m.ln()) as f32, m as f32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_machine_basis() {
        let f = ernest_features(1.0, 1);
        assert_eq!(f, [1.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn work_term_shrinks_with_machines() {
        let f1 = ernest_features(1.0, 2);
        let f2 = ernest_features(1.0, 8);
        assert!(f2[1] < f1[1]);
        assert!(f2[2] > f1[2]);
        assert!(f2[3] > f1[3]);
    }

    #[test]
    fn scale_enters_linearly() {
        let half = ernest_features(0.5, 4);
        let full = ernest_features(1.0, 4);
        assert!((half[1] * 2.0 - full[1]).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = ernest_features(1.0, 0);
    }
}
