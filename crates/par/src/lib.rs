//! # pddl-par
//!
//! A `std`-only fork-join work pool for the PredictDDL hot paths: batch
//! prediction fan-out, trace generation, hyperparameter grid search, and
//! per-dataset GHN training. No crates.io dependencies — the pool is built
//! on [`std::thread::scope`], atomics, and nothing else, so it works in
//! network-less build containers where `rayon` cannot resolve (and where
//! the offline type-check stubs would silently degrade `rayon` to serial
//! iteration).
//!
//! ## Determinism contract
//!
//! Every combinator in this crate is **order-preserving**: the output
//! vector's element `i` is exactly `f(&items[i])`, regardless of which
//! worker computed it or in which order workers finished. Callers that
//! reduce the results must do so over the returned vector (index order),
//! which makes pooled pipelines produce byte-identical results to their
//! serial equivalents — the property `predictddl`'s determinism tests
//! assert. Randomized tasks should derive their seed from the item (or its
//! index), never from the worker.
//!
//! ## Sizing
//!
//! The default worker count is [`std::thread::available_parallelism`],
//! overridable with the `PDDL_THREADS` environment variable (`PDDL_THREADS=1`
//! forces serial execution, useful for A/B benchmarking). Workers are
//! spawned per call inside a [`std::thread::scope`] — that is what lets
//! closures borrow non-`'static` data safely with zero `unsafe` — and the
//! ~10 µs spawn cost is negligible against the millisecond-scale tasks
//! this workspace runs (GHN forward passes, simulator sweeps, CV folds).
//!
//! ## Example
//!
//! ```
//! let squares = pddl_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]

pub mod queue;

pub use queue::{PushError, TaskQueue};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Telemetry handles for pool activity (resolved once, lock-free after).
struct PoolMetrics {
    scopes: &'static pddl_telemetry::Counter,
    items: &'static pddl_telemetry::Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        scopes: pddl_telemetry::counter("par.scopes"),
        items: pddl_telemetry::counter("par.items"),
    })
}

/// Default worker count: `PDDL_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism (1 if undetectable).
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("PDDL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// A fork-join pool with a fixed worker count.
///
/// The pool holds no threads while idle; each [`WorkPool::map`] call spawns
/// up to `threads` scoped workers that pull item indices from a shared
/// atomic cursor and writes results back in item order. Use
/// [`WorkPool::global`] (or the free functions [`par_map`] /
/// [`par_filter_map`]) for the default machine-sized pool, or
/// `WorkPool::new(1)` to force a serial execution with identical semantics.
#[derive(Clone, Copy, Debug)]
pub struct WorkPool {
    threads: usize,
}

impl Default for WorkPool {
    fn default() -> Self {
        Self::global()
    }
}

impl WorkPool {
    /// A pool with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// The machine-sized pool ([`num_threads`] workers).
    pub fn global() -> Self {
        Self::new(num_threads())
    }

    /// Number of workers this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel, order-preserving map: returns `vec![f(&items[0]), ...]`.
    ///
    /// `f` runs on up to [`WorkPool::threads`] workers; element order (and
    /// therefore any subsequent reduction order) is identical to the serial
    /// `items.iter().map(f).collect()`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed(items, |_, item| f(item))
    }

    /// Like [`WorkPool::map`], but the closure also receives the item index
    /// (e.g. to derive a per-item RNG seed deterministically).
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let m = pool_metrics();
        m.scopes.inc();
        m.items.add(items.len() as u64);
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        // Each worker pulls the next unclaimed index and records
        // `(index, result)` locally; the merge step scatters results back
        // into item order, so the output is independent of scheduling.
        let cursor = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pddl-par worker panicked"))
                .collect()
        });

        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for local in per_worker.iter_mut() {
            for (i, r) in local.drain(..) {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index computed exactly once"))
            .collect()
    }

    /// Parallel, order-preserving filter-map: `Some` results are kept in
    /// item order, `None`s dropped — the pooled equivalent of
    /// `items.iter().filter_map(f).collect()`.
    pub fn filter_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Option<R> + Sync,
    {
        self.map(items, f).into_iter().flatten().collect()
    }

    /// Splits `data` into disjoint chunks of `chunk_len` elements (the last
    /// may be shorter) and runs `f(chunk_index, chunk)` on each, fanning the
    /// chunks out over the pool's workers.
    ///
    /// This is the mutable counterpart of [`WorkPool::map`] for writers that
    /// own disjoint regions of one buffer — the tensor crate's blocked GEMM
    /// hands each macro-tile of the output matrix to a worker this way. The
    /// chunk partition depends only on `data.len()` and `chunk_len`, never on
    /// the worker count, so any computation that is deterministic per chunk
    /// stays deterministic across pool sizes.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        if data.is_empty() {
            return;
        }
        let n_chunks = data.len().div_ceil(chunk_len);
        let m = pool_metrics();
        m.scopes.inc();
        m.items.add(n_chunks as u64);
        let workers = self.threads.min(n_chunks);
        if workers <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }

        // Each chunk is a disjoint `&mut [T]`; workers pull the next
        // unclaimed one from a shared iterator. The lock is taken once per
        // chunk (not per element), so contention is negligible.
        let chunks = Mutex::new(data.chunks_mut(chunk_len).enumerate());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = chunks.lock().expect("chunk iterator poisoned").next();
                    match next {
                        Some((i, chunk)) => f(i, chunk),
                        None => break,
                    }
                });
            }
        });
    }
}

/// [`WorkPool::map`] on the machine-sized global pool.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    WorkPool::global().map(items, f)
}

/// [`WorkPool::map_indexed`] on the machine-sized global pool.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    WorkPool::global().map_indexed(items, f)
}

/// [`WorkPool::filter_map`] on the machine-sized global pool.
pub fn par_filter_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Option<R> + Sync,
{
    WorkPool::global().filter_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn map_preserves_order_across_pool_sizes() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = WorkPool::new(threads).map(&items, |&x| x * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_passes_true_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = WorkPool::new(4).map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn filter_map_keeps_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let got = WorkPool::new(7).filter_map(&items, |&x| (x % 3 == 0).then_some(x));
        let expect: Vec<u64> = (0..100).filter(|x| x % 3 == 0).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        WorkPool::new(8).map(&items, |&i| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(seen.lock().unwrap().insert(i), "item {i} ran twice");
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(seen.lock().unwrap().len(), 1000);
    }

    #[test]
    fn workers_actually_overlap() {
        // With 4 workers and 4 tasks that rendezvous on a barrier, the map
        // can only finish if the tasks run concurrently.
        use std::sync::Barrier;
        let barrier = Barrier::new(4);
        let items = [0u8; 4];
        let got = WorkPool::new(4).map(&items, |_| {
            barrier.wait();
            1u8
        });
        assert_eq!(got, vec![1, 1, 1, 1]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(WorkPool::new(8).map(&empty, |&x| x).is_empty());
        assert_eq!(WorkPool::new(8).map(&[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn borrowed_context_without_static_bounds() {
        // The whole point of the scoped design: closures may borrow stack
        // data. A Vec on the stack is summed from worker threads.
        let weights = [1.5f64, 2.5, 3.0];
        let items: Vec<usize> = (0..weights.len()).collect();
        let got = par_map(&items, |&i| weights[i] * 2.0);
        assert_eq!(got, vec![3.0, 5.0, 6.0]);
    }

    #[test]
    fn pool_metadata() {
        assert_eq!(WorkPool::new(0).threads(), 1, "clamped to one worker");
        assert!(WorkPool::global().threads() >= 1);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn chunked_writes_cover_every_element_once() {
        for threads in [1, 2, 3, 8] {
            for len in [0usize, 1, 7, 64, 257] {
                let mut data = vec![0u32; len];
                WorkPool::new(threads).for_each_chunk_mut(&mut data, 10, |i, chunk| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = (i * 10 + j) as u32 + 1;
                    }
                });
                let expect: Vec<u32> = (1..=len as u32).collect();
                assert_eq!(data, expect, "threads={threads} len={len}");
            }
        }
    }

    #[test]
    fn chunk_partition_is_independent_of_pool_size() {
        // Same chunk indices and lengths no matter how many workers run.
        let collect = |threads: usize| {
            let mut data = vec![0u8; 23];
            let seen = Mutex::new(Vec::new());
            WorkPool::new(threads).for_each_chunk_mut(&mut data, 5, |i, chunk| {
                seen.lock().unwrap().push((i, chunk.len()));
            });
            let mut v = seen.into_inner().unwrap();
            v.sort_unstable();
            v
        };
        let serial = collect(1);
        assert_eq!(serial, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 3)]);
        for threads in [2, 4, 16] {
            assert_eq!(collect(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn pooled_float_reduction_matches_serial_grouping() {
        // The determinism contract: reducing the returned vector in index
        // order is bit-identical no matter the pool size.
        let items: Vec<u64> = (1..200).collect();
        let f = |&x: &u64| 1.0f64 / x as f64;
        let serial: f64 = items.iter().map(f).fold(0.0, |a, b| a + b);
        for threads in [2, 5, 16] {
            let pooled: f64 = WorkPool::new(threads)
                .map(&items, f)
                .into_iter()
                .fold(0.0, |a, b| a + b);
            assert_eq!(serial.to_bits(), pooled.to_bits(), "threads={threads}");
        }
    }
}
