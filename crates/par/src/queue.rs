//! A bounded, closeable FIFO task queue — the admission-control primitive
//! behind the controller's serving core.
//!
//! [`TaskQueue`] is deliberately small: a `Mutex<VecDeque>` plus one
//! condvar. Producers never block — [`TaskQueue::try_push`] either admits
//! an item or returns it in [`PushError::Full`], which is what lets a
//! server *shed* load (reply "overloaded") instead of buffering without
//! bound. Consumers block in [`TaskQueue::pop`] until an item arrives or
//! the queue is closed and drained.
//!
//! ## Invariants (pinned by the unit tests here and the seeded
//! property tests in `tests/properties.rs`)
//!
//! * **FIFO**: items leave in the order they were admitted.
//! * **Exactly-once dispatch**: every admitted item is popped by exactly
//!   one consumer; no item is lost or duplicated.
//! * **Bounded**: the queue never holds more than `capacity` items, so
//!   `admitted - popped <= capacity` at every instant.
//! * **Conservation**: `admitted + rejected == submitted`.
//! * **Drain on close**: after [`TaskQueue::close`], pushes are rejected
//!   but pops keep returning queued items until the queue is empty, then
//!   return `None` — a graceful drain, not an abort.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why [`TaskQueue::try_push`] rejected an item. The item is handed back
/// so the caller can reply to, retry, or drop it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue already holds `capacity` items — shed the load.
    Full(T),
    /// The queue was closed; no new work is admitted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Consumes the error, returning the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(t) | PushError::Closed(t) => t,
        }
    }

    /// True if the rejection was a capacity shed (not a closed queue).
    pub fn is_full(&self) -> bool {
        matches!(self, PushError::Full(_))
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    peak: usize,
}

/// Bounded multi-producer multi-consumer FIFO queue with non-blocking
/// admission and blocking, close-aware consumption. See the module docs
/// for the invariant list.
pub struct TaskQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> TaskQueue<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                peak: 0,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // Queue mutations are single statements; a panicking holder cannot
        // leave the state inconsistent, so poison is safe to clear.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits `item` if there is room, waking one consumer. Never blocks:
    /// a full (or closed) queue returns the item in the error so the
    /// caller can shed it with a typed reply.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        inner.peak = inner.peak.max(inner.items.len());
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed **and** drained. Queued items are
    /// always delivered before the close is observed.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: subsequent pushes are rejected with
    /// [`PushError::Closed`]; consumers drain the remaining items and then
    /// see `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// True once [`TaskQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently queued (racy by nature; for telemetry).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission bound this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of the queue depth since construction — the
    /// `controller.queue_depth_peak` gauge reads this per-instance value,
    /// and the bounded-capacity tests assert `peak <= capacity`.
    pub fn peak(&self) -> usize {
        self.lock().peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_consumer() {
        let q = TaskQueue::bounded(8);
        for i in 0..8 {
            q.try_push(i).expect("room");
        }
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_sheds_and_returns_item() {
        let q = TaskQueue::bounded(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(e @ PushError::Full(_)) => assert_eq!(e.into_inner(), 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn close_drains_then_none() {
        let q = TaskQueue::bounded(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert!(matches!(q.try_push("c"), Err(PushError::Closed("c"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue stays closed");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(TaskQueue::<u32>::bounded(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.close();
        for w in waiters {
            assert_eq!(w.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_exactly_once_and_bounded() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 500;
        let q = Arc::new(TaskQueue::<usize>::bounded(7));
        let admitted = Arc::new(AtomicUsize::new(0));
        let shed = Arc::new(AtomicUsize::new(0));
        let popped = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                let admitted = Arc::clone(&admitted);
                let shed = Arc::clone(&shed);
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        match q.try_push(p * PER_PRODUCER + i) {
                            Ok(()) => {
                                admitted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(PushError::Full(_)) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                                // Give consumers a chance so some items land.
                                std::thread::yield_now();
                            }
                            Err(PushError::Closed(_)) => panic!("queue closed early"),
                        }
                    }
                });
            }
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|_| {
                    let q = Arc::clone(&q);
                    let popped = Arc::clone(&popped);
                    s.spawn(move || {
                        while let Some(item) = q.pop() {
                            popped.lock().unwrap().push(item);
                        }
                    })
                })
                .collect();
            // Close once all producers are done; consumers then drain.
            s.spawn({
                let q = Arc::clone(&q);
                let admitted = Arc::clone(&admitted);
                let shed = Arc::clone(&shed);
                move || {
                    // Wait for producers by polling the totals.
                    loop {
                        let done = admitted.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed);
                        if done == PRODUCERS * PER_PRODUCER {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    q.close();
                }
            });
            for c in consumers {
                c.join().unwrap();
            }
        });

        let popped = popped.lock().unwrap();
        let admitted = admitted.load(Ordering::Relaxed);
        let shed = shed.load(Ordering::Relaxed);
        assert_eq!(admitted + shed, PRODUCERS * PER_PRODUCER, "conservation");
        assert_eq!(popped.len(), admitted, "exactly-once dispatch");
        let mut unique: Vec<usize> = popped.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), popped.len(), "no item delivered twice");
        assert!(q.peak() <= q.capacity(), "capacity exceeded: {}", q.peak());
    }

    #[test]
    fn capacity_clamps_to_one() {
        let q = TaskQueue::bounded(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
    }
}
