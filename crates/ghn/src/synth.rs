//! Synthetic DARTS-style architecture generator.
//!
//! GHN-2 was meta-trained on DeepNets-1M, a set of 10⁶ architectures sampled
//! from an extended DARTS operation space. This module reproduces that
//! distribution at laptop scale: random cells of DARTS primitives (separable
//! / dilated / grouped convolutions, pooling, skip connections, summation
//! and concatenation joins), stacked with reduction cells, parameterized by
//! the target dataset's resolution and class count.
//!
//! The generator is deterministic given its seed, so "pretrained" GHNs are
//! reproducible from `(dataset, seed)`.

use pddl_graph::CompGraph;
use pddl_tensor::Rng;
use pddl_zoo::builder::{Act, Cursor, NetBuilder};
use pddl_zoo::dataset::DatasetDesc;

/// Primitive ops the generator samples inside a cell.
#[derive(Clone, Copy, Debug)]
enum Primitive {
    Conv3,
    Conv5,
    Conv1,
    DwConv3,
    DwConv5,
    DilConv3,
    GroupConv3,
    MaxPool,
    AvgPool,
    Skip,
}

const PRIMITIVES: [Primitive; 10] = [
    Primitive::Conv3,
    Primitive::Conv5,
    Primitive::Conv1,
    Primitive::DwConv3,
    Primitive::DwConv5,
    Primitive::DilConv3,
    Primitive::GroupConv3,
    Primitive::MaxPool,
    Primitive::AvgPool,
    Primitive::Skip,
];

/// Configurable generator over the synthetic architecture space.
#[derive(Clone, Debug)]
pub struct SynthGenerator {
    rng: Rng,
    /// Dataset the architectures target (sets resolution and head width).
    pub dataset: DatasetDesc,
    counter: u64,
}

impl SynthGenerator {
    pub fn new(dataset: DatasetDesc, seed: u64) -> Self {
        Self { rng: Rng::new(seed ^ 0x5e_ed_6e_4e), dataset, counter: 0 }
    }

    /// Samples one architecture.
    pub fn sample(&mut self) -> CompGraph {
        self.counter += 1;
        let name = format!("synth-{}-{}", self.dataset.name, self.counter);
        let rng = &mut self.rng;
        let mut b = NetBuilder::new(&name, self.dataset.channels, self.dataset.resolution);

        // Stem.
        let stem_c = 8 << rng.below(4); // 8, 16, 32, 64
        b.conv_bn_act(stem_c, 3, 1 + rng.below(2), Act::Relu, "stem");

        let num_cells = 2 + rng.below(4); // 2..=5 cells
        for cell in 0..num_cells {
            let nodes = 3 + rng.below(6); // 3..=8 internal nodes
            Self::cell(&mut b, rng, nodes, cell);
            // Reduction between cells: stride-2 pool or conv, channel growth.
            if cell + 1 < num_cells && b.cursor().spatial > 2 {
                if rng.chance(0.5) {
                    b.max_pool(2, 2, &format!("reduce{cell}.pool"));
                } else {
                    let c = (b.cursor().channels * 2).min(512);
                    b.conv_bn_act(c, 3, 2, Act::Relu, &format!("reduce{cell}.conv"));
                }
            }
        }
        b.classifier(self.dataset.num_classes);
        b.finish()
    }

    /// Samples `n` architectures.
    pub fn sample_many(&mut self, n: usize) -> Vec<CompGraph> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// Builds one random cell: a small DAG of primitives over the current
    /// cursor, with occasional Sum/Concat joins of two earlier nodes.
    fn cell(b: &mut NetBuilder, rng: &mut Rng, nodes: usize, cell: usize) {
        let mut frontier: Vec<Cursor> = vec![b.cursor()];
        for i in 0..nodes {
            let label = format!("cell{cell}.n{i}");
            // Join two frontier nodes with probability 0.25 when possible.
            if frontier.len() >= 2 && rng.chance(0.25) {
                let a = frontier[rng.below(frontier.len())];
                let mut c = frontier[rng.below(frontier.len())];
                if a.node == c.node {
                    c = frontier[0];
                }
                if a.node != c.node && a.spatial == c.spatial {
                    if rng.chance(0.5) && a.channels == c.channels {
                        b.set(a);
                        frontier.push(b.sum_with(c, &format!("{label}.sum")));
                        continue;
                    } else {
                        let joined = b.concat(&[a, c], &format!("{label}.cat"));
                        frontier.push(joined);
                        continue;
                    }
                }
            }
            // Otherwise grow from a random frontier node with a primitive.
            let src = frontier[rng.below(frontier.len())];
            b.set(src);
            let c_out = (src.channels as f64 * [0.5, 1.0, 1.0, 2.0][rng.below(4)]) as usize;
            let c_out = c_out.clamp(4, 512);
            let cur = match *rng.pick(&PRIMITIVES) {
                Primitive::Conv3 => b.conv_bn_act(c_out, 3, 1, Act::Relu, &label),
                Primitive::Conv5 => b.conv_bn_act(c_out, 5, 1, Act::Relu, &label),
                Primitive::Conv1 => b.conv_bn_act(c_out, 1, 1, Act::Relu, &label),
                Primitive::DwConv3 => b.dw_bn_act(3, 1, Act::Relu, &label),
                Primitive::DwConv5 => b.dw_bn_act(5, 1, Act::Relu, &label),
                Primitive::DilConv3 => {
                    b.dil_conv(c_out, 3, 1, &label);
                    b.bn(&format!("{label}.bn"));
                    b.act(Act::Relu, &format!("{label}.act"))
                }
                Primitive::GroupConv3 => {
                    let groups = [2usize, 4][rng.below(2)];
                    let c_g = (c_out / groups).max(1) * groups;
                    b.group_conv(c_g, 3, 1, groups, &label);
                    b.bn(&format!("{label}.bn"));
                    b.act(Act::Relu, &format!("{label}.act"))
                }
                Primitive::MaxPool => b.max_pool(3, 1, &label),
                Primitive::AvgPool => b.avg_pool(3, 1, &label),
                Primitive::Skip => src,
            };
            frontier.push(cur);
        }
        // Cell output: concat of up to three frontier leaves at the same
        // spatial size as the last node; fall back to the last node alone.
        let out_spatial = frontier.last().unwrap().spatial;
        let leaves: Vec<Cursor> = frontier
            .iter()
            .rev()
            .filter(|c| c.spatial == out_spatial)
            .take(3)
            .copied()
            .collect();
        let mut distinct = leaves.clone();
        distinct.dedup_by_key(|c| c.node);
        if distinct.len() >= 2 {
            b.concat(&distinct, &format!("cell{cell}.out"));
        } else {
            b.set(distinct[0]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_zoo::dataset::CIFAR10;

    #[test]
    fn samples_are_valid_dags() {
        let mut g = SynthGenerator::new(CIFAR10, 42);
        for i in 0..50 {
            let arch = g.sample();
            assert_eq!(arch.validate(), Ok(()), "sample {i}: {}", arch.name);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g1 = SynthGenerator::new(CIFAR10, 7);
        let mut g2 = SynthGenerator::new(CIFAR10, 7);
        for _ in 0..10 {
            let a = g1.sample();
            let b = g2.sample();
            assert_eq!(a.num_nodes(), b.num_nodes());
            assert_eq!(a.num_edges(), b.num_edges());
            assert_eq!(a.to_json().len(), b.to_json().len());
        }
    }

    #[test]
    fn samples_are_diverse() {
        let mut g = SynthGenerator::new(CIFAR10, 9);
        let archs = g.sample_many(30);
        let mut flops: Vec<f64> = archs.iter().map(|a| a.flops_per_example()).collect();
        flops.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Expect at least an order of magnitude spread in cost.
        assert!(
            flops[flops.len() - 1] / flops[0].max(1.0) > 10.0,
            "spread {:?}",
            (flops[0], flops[flops.len() - 1])
        );
    }

    #[test]
    fn graphs_stay_small_enough_for_training() {
        let mut g = SynthGenerator::new(CIFAR10, 11);
        for _ in 0..30 {
            let a = g.sample();
            assert!(a.num_nodes() <= 220, "{} nodes", a.num_nodes());
        }
    }
}
