//! GHN meta-training on the synthetic architecture distribution.
//!
//! The Offline GHN Trainer of the paper (§III-G, Fig. 8) trains a GHN per
//! dataset. Our surrogate objective (see crate docs and DESIGN.md): the
//! decoder head must reconstruct normalized log-FLOPs, log-params, depth and
//! the op-kind histogram of each architecture from its pooled embedding —
//! forcing the *intermediate* representation PredictDDL consumes to encode
//! exactly the complexity signal the regressor needs.

use crate::model::{decoder_targets, Ghn, Schedule, TARGET_DIM};
use crate::synth::SynthGenerator;
use pddl_autodiff::{Adam, Optimizer, Tape};
use pddl_graph::CompGraph;
use pddl_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

/// Meta-training hyperparameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of synthetic architectures in the meta-training set.
    pub num_graphs: usize,
    /// Passes over the meta-training set.
    pub epochs: usize,
    /// Graphs per gradient step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global-norm gradient clip (GHN-2 stabilization).
    pub clip_norm: f32,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            num_graphs: 200,
            epochs: 50,
            batch_size: 8,
            lr: 3e-3,
            clip_norm: 5.0,
            seed: 0xDD1,
        }
    }
}

impl TrainConfig {
    /// Small config for fast unit tests.
    pub fn tiny() -> Self {
        Self { num_graphs: 16, epochs: 6, batch_size: 4, lr: 5e-3, clip_norm: 5.0, seed: 1 }
    }
}

/// Outcome of a meta-training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean decoder MSE on the first epoch.
    pub initial_loss: f32,
    /// Mean decoder MSE on the last epoch.
    pub final_loss: f32,
    /// Per-epoch mean losses.
    pub epoch_losses: Vec<f32>,
    /// Number of architectures trained over.
    pub num_graphs: usize,
}

/// Trains a GHN on architectures drawn from a [`SynthGenerator`].
pub struct GhnTrainer {
    pub cfg: TrainConfig,
}

impl GhnTrainer {
    pub fn new(cfg: TrainConfig) -> Self {
        Self { cfg }
    }

    /// Meta-trains `ghn` in place; the generator determines the dataset
    /// conditioning. Returns per-epoch losses.
    pub fn train(&self, ghn: &mut Ghn, gen: &mut SynthGenerator) -> TrainReport {
        let graphs = gen.sample_many(self.cfg.num_graphs);
        self.train_on(ghn, &graphs)
    }

    /// Meta-trains on an explicit graph set (used by tests and ablations).
    pub fn train_on(&self, ghn: &mut Ghn, graphs: &[CompGraph]) -> TrainReport {
        assert!(!graphs.is_empty(), "empty meta-training set");
        let schedules: Vec<Schedule> =
            graphs.iter().map(|g| Schedule::new(g, ghn.cfg.s_max)).collect();
        let targets: Vec<Vec<f32>> = graphs.iter().map(decoder_targets).collect();

        let mut order: Vec<usize> = (0..graphs.len()).collect();
        let mut rng = Rng::new(self.cfg.seed);
        let mut opt = Adam::new(self.cfg.lr);
        let mut epoch_losses = Vec::with_capacity(self.cfg.epochs);

        for _epoch in 0..self.cfg.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            let mut steps = 0usize;
            for batch in order.chunks(self.cfg.batch_size) {
                let (loss_value, mut grads) = {
                    let mut tape = Tape::new(&ghn.ps);
                    let mut losses = Vec::with_capacity(batch.len());
                    for &gi in batch {
                        let emb = ghn.embed_traced(&mut tape, &graphs[gi], &schedules[gi]);
                        let pred = ghn.decode_traced(&mut tape, emb);
                        let target = tape.constant(Matrix::from_vec(
                            1,
                            TARGET_DIM,
                            targets[gi].clone(),
                        ));
                        losses.push(tape.mse_loss(pred, target));
                    }
                    let stacked = tape.concat_cols(&losses);
                    let loss = tape.mean(stacked);
                    let value = tape.scalar(loss);
                    (value, tape.backward(loss))
                };
                grads.clip_global_norm(self.cfg.clip_norm);
                opt.step(&mut ghn.ps, &grads);
                epoch_loss += loss_value as f64;
                steps += 1;
            }
            epoch_losses.push((epoch_loss / steps.max(1) as f64) as f32);
        }

        TrainReport {
            initial_loss: epoch_losses[0],
            final_loss: *epoch_losses.last().unwrap(),
            epoch_losses,
            num_graphs: graphs.len(),
        }
    }

    /// Decoder MSE of a trained GHN on held-out graphs (generalization
    /// check used by the offline-training pipeline).
    pub fn evaluate(&self, ghn: &Ghn, graphs: &[CompGraph]) -> f32 {
        let mut total = 0.0f64;
        for g in graphs {
            let emb = ghn.embed_graph(g);
            let pred = ghn.decode_fast(&emb);
            let target = decoder_targets(g);
            let mse: f64 = pred
                .iter()
                .zip(&target)
                .map(|(p, t)| ((p - t) as f64).powi(2))
                .sum::<f64>()
                / TARGET_DIM as f64;
            total += mse;
        }
        (total / graphs.len().max(1) as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GhnConfig;
    use crate::embed::cosine_similarity;
    use pddl_zoo::dataset::CIFAR10;

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng::new(3);
        let mut ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let mut gen = SynthGenerator::new(CIFAR10, 5);
        let trainer = GhnTrainer::new(TrainConfig::tiny());
        let report = trainer.train(&mut ghn, &mut gen);
        assert!(
            report.final_loss < report.initial_loss,
            "loss did not decrease: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn trained_ghn_generalizes_to_heldout() {
        let mut rng = Rng::new(4);
        let mut ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let mut gen = SynthGenerator::new(CIFAR10, 6);
        let mut cfg = TrainConfig::tiny();
        cfg.num_graphs = 32;
        cfg.epochs = 12;
        let trainer = GhnTrainer::new(cfg);
        let report = trainer.train(&mut ghn, &mut gen);
        let heldout = gen.sample_many(8);
        let test_mse = trainer.evaluate(&ghn, &heldout);
        // Held-out error should be in the same ballpark as training error,
        // not catastrophically larger.
        assert!(
            test_mse < report.initial_loss,
            "test {test_mse} vs initial {}",
            report.initial_loss
        );
    }

    #[test]
    fn embeddings_cluster_by_scale_after_training() {
        // Two big VGG-ish chains should be more similar to each other than
        // to a tiny two-layer net, in cosine distance, after training.
        use pddl_zoo::builder::{Act, NetBuilder};
        let build_chain = |name: &str, width: usize, depth: usize| {
            let mut b = NetBuilder::new(name, 3, 32);
            for i in 0..depth {
                b.conv_bn_act(width, 3, 1, Act::Relu, &format!("c{i}"));
            }
            b.classifier(10);
            b.finish()
        };
        let big_a = build_chain("big_a", 128, 8);
        let big_b = build_chain("big_b", 160, 7);
        let tiny = build_chain("tiny", 8, 1);

        let mut rng = Rng::new(5);
        let mut ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let mut gen = SynthGenerator::new(CIFAR10, 8);
        let mut cfg = TrainConfig::tiny();
        cfg.num_graphs = 48;
        cfg.epochs = 15;
        GhnTrainer::new(cfg).train(&mut ghn, &mut gen);

        let ea = ghn.embed_graph(&big_a);
        let eb = ghn.embed_graph(&big_b);
        let et = ghn.embed_graph(&tiny);
        let sim_big = cosine_similarity(&ea, &eb);
        let sim_cross = cosine_similarity(&ea, &et);
        assert!(
            sim_big > sim_cross,
            "similar architectures not closer: big-big {sim_big} vs big-tiny {sim_cross}"
        );
    }
}
