//! The GHN-2 network: embedding layer → GatedGNN → readout → decoder.
//!
//! Two execution paths share one set of weights:
//! * [`Ghn::embed_traced`] records onto an autodiff [`Tape`] for
//!   meta-training;
//! * [`Ghn::embed_graph`] is the allocation-lean inference path used by the
//!   PredictDDL Embeddings Generator (no tape, raw matrix math).
//!
//! A unit test asserts both paths produce identical embeddings.

use crate::config::GhnConfig;
use pddl_autodiff::{layers::Activation, GruCell, Linear, Mlp, ParamStore, Tape, Var};
use pddl_graph::{features, one_hot_features, CompGraph, OpKind, ShortestPaths};
use pddl_tensor::{
    vecmat_acc, vecmat_acc_bf16, Activation as TensorAct, Matrix, PackedBf16, Precision, Rng,
};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Cached telemetry handles (resolved once; recording is lock-free).
struct GhnMetrics {
    embed_latency: &'static pddl_telemetry::Histogram,
}

fn metrics() -> &'static GhnMetrics {
    static M: OnceLock<GhnMetrics> = OnceLock::new();
    M.get_or_init(|| GhnMetrics {
        embed_latency: pddl_telemetry::histogram("ghn.embed"),
    })
}

/// Decoder targets: [norm-log-FLOPs, norm-log-params, norm-depth, op-histogram…].
pub const TARGET_DIM: usize = 3 + OpKind::COUNT;

/// Computes the surrogate decoder targets for a graph (all O(1)-ranged).
pub fn decoder_targets(g: &CompGraph) -> Vec<f32> {
    let mut t = Vec::with_capacity(TARGET_DIM);
    t.push((((g.flops_per_example() + 1.0).log10() as f32) - 7.0) / 2.0);
    t.push((((g.num_params() as f64 + 1.0).log10() as f32) - 6.5) / 1.5);
    t.push(g.depth() as f32 / 100.0);
    t.extend(g.op_histogram());
    t
}

/// Per-graph propagation schedule, precomputed once per architecture:
/// topological order plus virtual-edge source lists in both directions.
pub struct Schedule {
    pub topo: Vec<usize>,
    /// `virtual_fw[v]` = (u, s_vu) with 1 < s(u→v) ≤ s_max.
    pub virtual_fw: Vec<Vec<(usize, u32)>>,
    /// `virtual_bw[v]` = (u, s_vu) over the reversed graph.
    pub virtual_bw: Vec<Vec<(usize, u32)>>,
}

impl Schedule {
    pub fn new(g: &CompGraph, s_max: u32) -> Self {
        let topo = g
            .topo_order()
            .expect("GHN requires an acyclic computational graph");
        let fw = ShortestPaths::forward(g);
        let bw = ShortestPaths::backward(g);
        let n = g.num_nodes();
        let virtual_fw = (0..n).map(|v| fw.virtual_sources(v, s_max)).collect();
        let virtual_bw = (0..n).map(|v| bw.virtual_sources(v, s_max)).collect();
        Self { topo, virtual_fw, virtual_bw }
    }
}

/// bf16 snapshots of the embed-path weight matrices, built once by
/// [`Ghn::set_precision`]. Biases (tiny, added once per row) and the
/// decoder (not on the embed path) stay f32; the f32 master weights in
/// the [`ParamStore`] are untouched, so precision can be flipped back
/// without reloading and training always sees full precision.
#[derive(Clone)]
struct FrozenWeights {
    embed_w: PackedBf16,
    msg_ws: Vec<PackedBf16>,
    msg_sp_ws: Vec<PackedBf16>,
    gru_wz: PackedBf16,
    gru_uz: PackedBf16,
    gru_wr: PackedBf16,
    gru_ur: PackedBf16,
    gru_wh: PackedBf16,
    gru_uh: PackedBf16,
}

/// The GHN-2 model. All weights live in the owned [`ParamStore`].
#[derive(Clone, Serialize, Deserialize)]
pub struct Ghn {
    pub cfg: GhnConfig,
    pub ps: ParamStore,
    embed: Linear,
    msg: Mlp,
    msg_sp: Mlp,
    gru: GruCell,
    decoder: Mlp,
    /// Inference-only bf16 weight panels; never serialized — checkpoints
    /// store f32 masters and the manifest's `precision` field says
    /// whether to re-freeze after load.
    #[serde(skip, default)]
    frozen: Option<FrozenWeights>,
}

impl Ghn {
    /// Fresh randomly-initialized GHN.
    pub fn new(cfg: GhnConfig, rng: &mut Rng) -> Self {
        let mut ps = ParamStore::new();
        let d = cfg.hidden_dim;
        let embed = Linear::new(&mut ps, "ghn.embed", features::FEATURE_DIM, d, rng);
        let msg = Mlp::new(&mut ps, "ghn.msg", &[d, cfg.mlp_hidden, d], Activation::Relu, rng);
        let msg_sp =
            Mlp::new(&mut ps, "ghn.msg_sp", &[d, cfg.mlp_hidden, d], Activation::Relu, rng);
        let gru = GruCell::new(&mut ps, "ghn.gru", d, d, rng);
        let decoder = Mlp::new(
            &mut ps,
            "ghn.decoder",
            &[d, cfg.decoder_hidden, TARGET_DIM],
            Activation::Relu,
            rng,
        );
        Self { cfg, ps, embed, msg, msg_sp, gru, decoder, frozen: None }
    }

    /// Embedding dimensionality.
    pub fn embed_dim(&self) -> usize {
        self.cfg.hidden_dim
    }

    /// Selects the inference storage precision. `Bf16` quantizes the
    /// embed-path weights into frozen [`PackedBf16`] panels (round-to-
    /// nearest-even, built from the f32 masters); `F32` drops them and
    /// restores bit-exact full-precision inference. Training and the
    /// traced path always read the f32 masters either way.
    pub fn set_precision(&mut self, p: Precision) {
        match p {
            Precision::F32 => self.frozen = None,
            Precision::Bf16 => {
                let freeze_mlp = |mlp: &Mlp| -> Vec<PackedBf16> {
                    mlp.layers
                        .iter()
                        .map(|l| PackedBf16::from_matrix(self.ps.get(l.w)))
                        .collect()
                };
                self.frozen = Some(FrozenWeights {
                    embed_w: PackedBf16::from_matrix(self.ps.get(self.embed.w)),
                    msg_ws: freeze_mlp(&self.msg),
                    msg_sp_ws: freeze_mlp(&self.msg_sp),
                    gru_wz: PackedBf16::from_matrix(self.ps.get(self.gru.wz)),
                    gru_uz: PackedBf16::from_matrix(self.ps.get(self.gru.uz)),
                    gru_wr: PackedBf16::from_matrix(self.ps.get(self.gru.wr)),
                    gru_ur: PackedBf16::from_matrix(self.ps.get(self.gru.ur)),
                    gru_wh: PackedBf16::from_matrix(self.ps.get(self.gru.wh)),
                    gru_uh: PackedBf16::from_matrix(self.ps.get(self.gru.uh)),
                });
            }
        }
    }

    /// The storage precision the inference path currently runs at.
    pub fn precision(&self) -> Precision {
        if self.frozen.is_some() {
            Precision::Bf16
        } else {
            Precision::F32
        }
    }

    /// Total scalar weights of the GHN itself.
    pub fn num_weights(&self) -> usize {
        self.ps.num_scalars()
    }

    // ------------------------------------------------------------------
    // Traced path (meta-training)
    // ------------------------------------------------------------------

    /// Runs the GatedGNN on the tape and returns the pooled 1×d embedding.
    pub fn embed_traced(&self, tape: &mut Tape, g: &CompGraph, sched: &Schedule) -> Var {
        let h = self.node_states_traced(tape, g, sched);
        let all = tape.concat_rows(&h);
        tape.mean_rows(all)
    }

    /// Runs the GatedGNN on the tape and returns the final per-node states
    /// `h_v^T` (each 1×d). The weight-decoding hypernetwork
    /// ([`crate::hypernet`]) conditions on these, as in the original GHN;
    /// PredictDDL instead pools them into the complexity embedding.
    pub fn node_states_traced(&self, tape: &mut Tape, g: &CompGraph, sched: &Schedule) -> Vec<Var> {
        let n = g.num_nodes();
        let feats = Matrix::from_vec(n, features::FEATURE_DIM, one_hot_features(g));
        let h0 = tape.constant(feats);
        let h1 = self.embed.forward(tape, h0);
        // Per-node 1×d state variables, updated sequentially.
        let mut h: Vec<Var> = (0..n).map(|v| tape.slice_rows(h1, v, v + 1)).collect();

        for _t in 0..self.cfg.t_passes {
            // π = fw: traverse topologically; neighbors = predecessors.
            for &v in &sched.topo {
                self.update_node(tape, g, &mut h, v, true, &sched.virtual_fw[v]);
            }
            // π = bw: reverse order; neighbors = successors.
            for &v in sched.topo.iter().rev() {
                self.update_node(tape, g, &mut h, v, false, &sched.virtual_bw[v]);
            }
            if self.cfg.normalize {
                for hv in h.iter_mut() {
                    *hv = tape.row_l2_norm(*hv);
                }
            }
        }
        h
    }

    /// One sequential node update: Eq. (4) message + GRU state transition.
    fn update_node(
        &self,
        tape: &mut Tape,
        g: &CompGraph,
        h: &mut [Var],
        v: usize,
        forward: bool,
        virtual_sources: &[(usize, u32)],
    ) {
        let neighbors: &[usize] = if forward { g.predecessors(v) } else { g.successors(v) };
        let mut parts: Vec<Var> = Vec::with_capacity(neighbors.len() + virtual_sources.len());
        for &u in neighbors {
            parts.push(self.msg.forward(tape, h[u]));
        }
        for &(u, s) in virtual_sources {
            let m = self.msg_sp.forward(tape, h[u]);
            parts.push(tape.scale(m, 1.0 / s as f32));
        }
        let m_v = match parts.len() {
            0 => tape.constant(Matrix::zeros(1, self.cfg.hidden_dim)),
            1 => parts[0],
            _ => {
                let mut acc = parts[0];
                for &p in &parts[1..] {
                    acc = tape.add(acc, p);
                }
                acc
            }
        };
        h[v] = self.gru.forward(tape, m_v, h[v]);
    }

    /// Traced decoder output (1×TARGET_DIM) for the meta-training loss.
    pub fn decode_traced(&self, tape: &mut Tape, embedding: Var) -> Var {
        self.decoder.forward(tape, embedding)
    }

    // ------------------------------------------------------------------
    // Fast path (inference)
    // ------------------------------------------------------------------

    /// Computes the architecture embedding without recording a tape.
    pub fn embed_graph(&self, g: &CompGraph) -> Vec<f32> {
        let _t = metrics().embed_latency.start_timer();
        let sched = Schedule::new(g, self.cfg.s_max);
        self.embed_with_schedule(g, &sched)
    }

    /// Fast-path embedding with a precomputed schedule. Per-node updates
    /// stay in the paper's sequential (Gauss–Seidel) order; within each
    /// update the neighbor/virtual message MLPs are batched into GEMMs.
    pub fn embed_with_schedule(&self, g: &CompGraph, sched: &Schedule) -> Vec<f32> {
        let _t = metrics().embed_latency.start_timer();
        let n = g.num_nodes();
        let d = self.cfg.hidden_dim;
        let feats = Matrix::from_vec(n, features::FEATURE_DIM, one_hot_features(g));
        // h1 = feats · W + b
        let b = self.ps.get(self.embed.b);
        let h1 = match &self.frozen {
            Some(fz) => feats.matmul_bias_bf16(&fz.embed_w, b),
            None => feats.matmul(self.ps.get(self.embed.w)).add_row_broadcast(b),
        };
        let mut h: Vec<Vec<f32>> = (0..n).map(|v| h1.row(v).to_vec()).collect();
        let mut m = vec![0.0f32; d];

        for _t in 0..self.cfg.t_passes {
            for &v in &sched.topo {
                self.fast_update(g, &mut h, &mut m, v, true, &sched.virtual_fw[v]);
            }
            for &v in sched.topo.iter().rev() {
                self.fast_update(g, &mut h, &mut m, v, false, &sched.virtual_bw[v]);
            }
            if self.cfg.normalize {
                for hv in h.iter_mut() {
                    l2_normalize(hv);
                }
            }
        }
        // Mean pooling over nodes.
        let mut pooled = vec![0.0f32; d];
        for hv in &h {
            for (p, &x) in pooled.iter_mut().zip(hv) {
                *p += x;
            }
        }
        for p in &mut pooled {
            *p /= n as f32;
        }
        pooled
    }

    /// Scalar (unbatched, unblocked) embedding used as the ground truth in
    /// equivalence tests and as the baseline in `pddl-tensorbench`. Follows
    /// the exact sequential schedule of [`Self::embed_with_schedule`] but
    /// pushes every row through the per-element `mlp_fast` loops.
    pub fn embed_with_schedule_reference(&self, g: &CompGraph, sched: &Schedule) -> Vec<f32> {
        let n = g.num_nodes();
        let d = self.cfg.hidden_dim;
        let feats = Matrix::from_vec(n, features::FEATURE_DIM, one_hot_features(g));
        let w = self.ps.get(self.embed.w);
        let b = self.ps.get(self.embed.b);
        let h1 = feats.matmul_reference(w).add_row_broadcast(b);
        let mut h: Vec<Vec<f32>> = (0..n).map(|v| h1.row(v).to_vec()).collect();
        let mut m = vec![0.0f32; d];
        for _t in 0..self.cfg.t_passes {
            for &v in &sched.topo {
                self.fast_update_reference(g, &mut h, &mut m, v, true, &sched.virtual_fw[v]);
            }
            for &v in sched.topo.iter().rev() {
                self.fast_update_reference(g, &mut h, &mut m, v, false, &sched.virtual_bw[v]);
            }
            if self.cfg.normalize {
                for hv in h.iter_mut() {
                    l2_normalize(hv);
                }
            }
        }
        let mut pooled = vec![0.0f32; d];
        for hv in &h {
            for (p, &x) in pooled.iter_mut().zip(hv) {
                *p += x;
            }
        }
        for p in &mut pooled {
            *p /= n as f32;
        }
        pooled
    }

    fn fast_update_reference(
        &self,
        g: &CompGraph,
        h: &mut [Vec<f32>],
        m: &mut [f32],
        v: usize,
        forward: bool,
        virtual_sources: &[(usize, u32)],
    ) {
        m.fill(0.0);
        let neighbors: &[usize] = if forward { g.predecessors(v) } else { g.successors(v) };
        for &u in neighbors {
            let out = self.mlp_fast(&self.msg, &h[u]);
            for (mi, o) in m.iter_mut().zip(&out) {
                *mi += o;
            }
        }
        for &(u, s) in virtual_sources {
            let out = self.mlp_fast(&self.msg_sp, &h[u]);
            let inv = 1.0 / s as f32;
            for (mi, o) in m.iter_mut().zip(&out) {
                *mi += inv * o;
            }
        }
        let hv = &h[v];
        let new = self.gru_fast_reference(m, hv);
        h[v] = new;
    }

    /// The pre-blocking scalar GRU step (zero-skip axpy loops), kept as
    /// the measured baseline for `pddl-tensorbench`.
    fn gru_fast_reference(&self, x: &[f32], h: &[f32]) -> Vec<f32> {
        let d = self.cfg.hidden_dim;
        let lin = |w: &Matrix, v: &[f32], acc: &mut [f32]| {
            for (r, &vi) in v.iter().enumerate() {
                if vi == 0.0 {
                    continue;
                }
                for (a, &wij) in acc.iter_mut().zip(w.row(r)) {
                    *a += vi * wij;
                }
            }
        };
        let sigmoid = |t: f32| 1.0 / (1.0 + (-t).exp());

        let mut z = self.ps.get(self.gru.bz).row(0).to_vec();
        lin(self.ps.get(self.gru.wz), x, &mut z);
        lin(self.ps.get(self.gru.uz), h, &mut z);
        for zi in &mut z {
            *zi = sigmoid(*zi);
        }

        let mut r = self.ps.get(self.gru.br).row(0).to_vec();
        lin(self.ps.get(self.gru.wr), x, &mut r);
        lin(self.ps.get(self.gru.ur), h, &mut r);
        for ri in &mut r {
            *ri = sigmoid(*ri);
        }

        let rh: Vec<f32> = r.iter().zip(h).map(|(ri, hi)| ri * hi).collect();
        let mut hh = self.ps.get(self.gru.bh).row(0).to_vec();
        lin(self.ps.get(self.gru.wh), x, &mut hh);
        lin(self.ps.get(self.gru.uh), &rh, &mut hh);
        for hi in &mut hh {
            *hi = hi.tanh();
        }

        (0..d).map(|i| h[i] + z[i] * (hh[i] - h[i])).collect()
    }

    fn fast_update(
        &self,
        g: &CompGraph,
        h: &mut [Vec<f32>],
        m: &mut [f32],
        v: usize,
        forward: bool,
        virtual_sources: &[(usize, u32)],
    ) {
        m.fill(0.0);
        let neighbors: &[usize] = if forward { g.predecessors(v) } else { g.successors(v) };
        // Batch all neighbors through the message MLP in one GEMM chain,
        // then row-sum; same for virtual sources with their 1/s weights.
        if !neighbors.is_empty() {
            let xs = stack_rows(h, neighbors.iter().copied());
            let out = self.mlp_batch(&self.msg, self.frozen_msg_ws(), &xs);
            for r in 0..out.rows() {
                for (mi, &o) in m.iter_mut().zip(out.row(r)) {
                    *mi += o;
                }
            }
        }
        if !virtual_sources.is_empty() {
            let xs = stack_rows(h, virtual_sources.iter().map(|&(u, _)| u));
            let out = self.mlp_batch(&self.msg_sp, self.frozen_msg_sp_ws(), &xs);
            for (r, &(_, s)) in virtual_sources.iter().enumerate() {
                let inv = 1.0 / s as f32;
                for (mi, &o) in m.iter_mut().zip(out.row(r)) {
                    *mi += inv * o;
                }
            }
        }
        let hv = &h[v];
        let new = self.gru_fast(m, hv);
        h[v] = new;
    }

    /// The frozen bf16 panels for the neighbor-message MLP, if any.
    fn frozen_msg_ws(&self) -> Option<&[PackedBf16]> {
        self.frozen.as_ref().map(|f| f.msg_ws.as_slice())
    }

    /// The frozen bf16 panels for the virtual-edge message MLP, if any.
    fn frozen_msg_sp_ws(&self) -> Option<&[PackedBf16]> {
        self.frozen.as_ref().map(|f| f.msg_sp_ws.as_slice())
    }

    /// Batched MLP forward through the fused GEMM epilogues (bias and the
    /// hidden ReLU ride the matmul; no intermediate `x·W` matrices).
    /// `frozen_ws`, when present, holds this MLP's per-layer bf16 weight
    /// panels and routes every layer through the bf16 kernel entry points.
    fn mlp_batch(&self, mlp: &Mlp, frozen_ws: Option<&[PackedBf16]>, xs: &Matrix) -> Matrix {
        let last = mlp.layers.len() - 1;
        let mut cur = xs.clone();
        for (i, layer) in mlp.layers.iter().enumerate() {
            let b = self.ps.get(layer.b);
            let act = if i < last { mlp.hidden_act.fused() } else { TensorAct::Identity };
            cur = match frozen_ws {
                Some(ws) => cur.matmul_bias_act_bf16(&ws[i], b, act),
                None => cur.matmul_bias_act(self.ps.get(layer.w), b, act),
            };
        }
        cur
    }

    /// Raw-matrix MLP forward on a single row.
    fn mlp_fast(&self, mlp: &Mlp, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        let last = mlp.layers.len() - 1;
        for (i, layer) in mlp.layers.iter().enumerate() {
            let w = self.ps.get(layer.w);
            let b = self.ps.get(layer.b);
            let mut out = b.row(0).to_vec();
            for (r, &xi) in cur.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                for (o, &wij) in out.iter_mut().zip(w.row(r)) {
                    *o += xi * wij;
                }
            }
            if i < last {
                for o in &mut out {
                    *o = o.max(0.0); // hidden activation is ReLU
                }
            }
            cur = out;
        }
        cur
    }

    /// Raw GRU step on single rows, mirroring `GruCell::forward`. The gate
    /// products run through [`vecmat_acc`] — unit-stride axpy rows, no
    /// data-dependent branch (the old `vi == 0.0` skip defeated
    /// vectorization and made latency depend on the input's sparsity).
    fn gru_fast(&self, x: &[f32], h: &[f32]) -> Vec<f32> {
        let d = self.cfg.hidden_dim;
        let sigmoid = |t: f32| 1.0 / (1.0 + (-t).exp());

        let mut z = self.ps.get(self.gru.bz).row(0).to_vec();
        match &self.frozen {
            Some(fz) => {
                vecmat_acc_bf16(x, &fz.gru_wz, &mut z);
                vecmat_acc_bf16(h, &fz.gru_uz, &mut z);
            }
            None => {
                vecmat_acc(x, self.ps.get(self.gru.wz), &mut z);
                vecmat_acc(h, self.ps.get(self.gru.uz), &mut z);
            }
        }
        for zi in &mut z {
            *zi = sigmoid(*zi);
        }

        let mut r = self.ps.get(self.gru.br).row(0).to_vec();
        match &self.frozen {
            Some(fz) => {
                vecmat_acc_bf16(x, &fz.gru_wr, &mut r);
                vecmat_acc_bf16(h, &fz.gru_ur, &mut r);
            }
            None => {
                vecmat_acc(x, self.ps.get(self.gru.wr), &mut r);
                vecmat_acc(h, self.ps.get(self.gru.ur), &mut r);
            }
        }
        for ri in &mut r {
            *ri = sigmoid(*ri);
        }

        let rh: Vec<f32> = r.iter().zip(h).map(|(ri, hi)| ri * hi).collect();
        let mut hh = self.ps.get(self.gru.bh).row(0).to_vec();
        match &self.frozen {
            Some(fz) => {
                vecmat_acc_bf16(x, &fz.gru_wh, &mut hh);
                vecmat_acc_bf16(&rh, &fz.gru_uh, &mut hh);
            }
            None => {
                vecmat_acc(x, self.ps.get(self.gru.wh), &mut hh);
                vecmat_acc(&rh, self.ps.get(self.gru.uh), &mut hh);
            }
        }
        for hi in &mut hh {
            *hi = hi.tanh();
        }

        (0..d).map(|i| h[i] + z[i] * (hh[i] - h[i])).collect()
    }

    /// Batched GRU step: `x` and `h` are `n×d`; one fused two-operand
    /// affine per gate for all rows at once.
    fn gru_batch(&self, x: &Matrix, h: &Matrix) -> Matrix {
        // One fused two-operand affine per gate; the frozen-panel arm is
        // the same chain through the bf16 kernel entry points.
        let (mut z, mut r, mut hh, rh);
        match &self.frozen {
            Some(fz) => {
                z = x.matmul_bias_bf16(&fz.gru_wz, self.ps.get(self.gru.bz));
                h.matmul_acc_act_bf16(&fz.gru_uz, &mut z, TensorAct::Sigmoid);
                r = x.matmul_bias_bf16(&fz.gru_wr, self.ps.get(self.gru.br));
                h.matmul_acc_act_bf16(&fz.gru_ur, &mut r, TensorAct::Sigmoid);
                rh = r.hadamard(h);
                hh = x.matmul_bias_bf16(&fz.gru_wh, self.ps.get(self.gru.bh));
                rh.matmul_acc_act_bf16(&fz.gru_uh, &mut hh, TensorAct::Tanh);
            }
            None => {
                z = x.matmul_bias(self.ps.get(self.gru.wz), self.ps.get(self.gru.bz));
                h.matmul_acc_act(self.ps.get(self.gru.uz), &mut z, TensorAct::Sigmoid);
                r = x.matmul_bias(self.ps.get(self.gru.wr), self.ps.get(self.gru.br));
                h.matmul_acc_act(self.ps.get(self.gru.ur), &mut r, TensorAct::Sigmoid);
                rh = r.hadamard(h);
                hh = x.matmul_bias(self.ps.get(self.gru.wh), self.ps.get(self.gru.bh));
                rh.matmul_acc_act(self.ps.get(self.gru.uh), &mut hh, TensorAct::Tanh);
            }
        }

        let mut out = h.clone();
        for ((o, &zi), &hi) in out
            .as_mut_slice()
            .iter_mut()
            .zip(z.as_slice())
            .zip(hh.as_slice())
        {
            *o += zi * (hi - *o);
        }
        out
    }

    /// Fast decoder on a raw embedding (diagnostics / tests).
    pub fn decode_fast(&self, embedding: &[f32]) -> Vec<f32> {
        self.mlp_fast(&self.decoder, embedding)
    }

    /// **Synchronous** (Jacobi-style) embedding: all nodes read the
    /// *previous* sweep's states and update simultaneously, instead of the
    /// paper-faithful sequential (Gauss–Seidel) order that mimics forward/
    /// backward execution. Synchronous sweeps are embarrassingly parallel
    /// and make a useful ablation of how much the execution-order prior
    /// buys; they converge slower per sweep (information travels one hop
    /// per sweep instead of the whole graph).
    pub fn embed_graph_sync(&self, g: &CompGraph, sweeps: usize) -> Vec<f32> {
        let _t = metrics().embed_latency.start_timer();
        let n = g.num_nodes();
        let d = self.cfg.hidden_dim;
        let sched = Schedule::new(g, self.cfg.s_max);
        let feats = Matrix::from_vec(n, features::FEATURE_DIM, one_hot_features(g));
        let b = self.ps.get(self.embed.b);
        let mut h = match &self.frozen {
            Some(fz) => feats.matmul_bias_bf16(&fz.embed_w, b),
            None => feats.matmul_bias(self.ps.get(self.embed.w), b),
        };

        for sweep in 0..sweeps {
            // Alternate direction per sweep to mirror fw/bw coverage.
            let forward = sweep % 2 == 0;
            // Jacobi: every node reads the previous sweep's states, so each
            // state goes through the message MLPs exactly once per sweep —
            // two n×d batched forwards replace the old per-edge calls.
            let msg_all = self.mlp_batch(&self.msg, self.frozen_msg_ws(), &h);
            let msg_sp_all = self.mlp_batch(&self.msg_sp, self.frozen_msg_sp_ws(), &h);
            let mut m = Matrix::zeros(n, d);
            for v in 0..n {
                let neighbors: &[usize] =
                    if forward { g.predecessors(v) } else { g.successors(v) };
                let row = m.row_mut(v);
                for &u in neighbors {
                    for (mi, &o) in row.iter_mut().zip(msg_all.row(u)) {
                        *mi += o;
                    }
                }
                let virtuals =
                    if forward { &sched.virtual_fw[v] } else { &sched.virtual_bw[v] };
                for &(u, s) in virtuals {
                    let inv = 1.0 / s as f32;
                    for (mi, &o) in row.iter_mut().zip(msg_sp_all.row(u)) {
                        *mi += inv * o;
                    }
                }
            }
            h = self.gru_batch(&m, &h);
            if self.cfg.normalize {
                for v in 0..n {
                    l2_normalize(h.row_mut(v));
                }
            }
        }
        let mut pooled = vec![0.0f32; d];
        for v in 0..n {
            for (p, &x) in pooled.iter_mut().zip(h.row(v)) {
                *p += x;
            }
        }
        for p in &mut pooled {
            *p /= n as f32;
        }
        pooled
    }
}

/// Stacks the selected state rows into a dense matrix (one GEMM operand).
fn stack_rows(h: &[Vec<f32>], idx: impl ExactSizeIterator<Item = usize>) -> Matrix {
    let rows = idx.len();
    let cols = h[0].len();
    let mut data = Vec::with_capacity(rows * cols);
    for u in idx {
        data.extend_from_slice(&h[u]);
    }
    Matrix::from_vec(rows, cols, data)
}

fn l2_normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    for x in v {
        *x /= norm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_graph::NodeAttrs;

    fn toy_graph() -> CompGraph {
        let mut g = CompGraph::new("toy");
        let input = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 16), "in");
        let c1 = g.chain(input, OpKind::Conv, NodeAttrs::conv(3, 8, 3, 1, 16), "c1");
        let r1 = g.chain(c1, OpKind::Relu, NodeAttrs::elementwise(8, 16), "r1");
        let c2 = g.chain(r1, OpKind::Conv, NodeAttrs::conv(8, 8, 3, 1, 16), "c2");
        let s = g.add_node(OpKind::Sum, NodeAttrs::elementwise(8, 16), "s");
        g.add_edge(c2, s);
        g.add_edge(c1, s);
        let _ = g.chain(s, OpKind::Output, NodeAttrs::elementwise(8, 16), "out");
        g
    }

    #[test]
    fn traced_and_fast_paths_agree() {
        let mut rng = Rng::new(7);
        let ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let g = toy_graph();
        let sched = Schedule::new(&g, ghn.cfg.s_max);
        let fast = ghn.embed_with_schedule(&g, &sched);
        let mut tape = Tape::new(&ghn.ps);
        let traced = ghn.embed_traced(&mut tape, &g, &sched);
        let tv = tape.value(traced);
        assert_eq!(tv.cols(), fast.len());
        for (a, b) in tv.row(0).iter().zip(&fast) {
            assert!((a - b).abs() < 1e-4, "traced {a} vs fast {b}");
        }
    }

    #[test]
    fn batched_fast_path_matches_scalar_reference() {
        // The GEMM-batched inference path and the per-element scalar loops
        // sum in different orders; they must agree to fp tolerance on
        // every node state that reaches the pooled embedding.
        let mut rng = Rng::new(23);
        let mut cfg = GhnConfig::tiny();
        cfg.t_passes = 2;
        let ghn = Ghn::new(cfg, &mut rng);
        let g = toy_graph();
        let sched = Schedule::new(&g, ghn.cfg.s_max);
        let batched = ghn.embed_with_schedule(&g, &sched);
        let scalar = ghn.embed_with_schedule_reference(&g, &sched);
        assert_eq!(batched.len(), scalar.len());
        for (a, b) in batched.iter().zip(&scalar) {
            assert!((a - b).abs() <= 1e-4, "batched {a} vs scalar {b}");
        }
    }

    #[test]
    fn bf16_embedding_tracks_f32_and_thaw_is_bit_exact() {
        let mut rng = Rng::new(31);
        let mut cfg = GhnConfig::tiny();
        cfg.t_passes = 2;
        let mut ghn = Ghn::new(cfg, &mut rng);
        let g = toy_graph();
        let sched = Schedule::new(&g, ghn.cfg.s_max);
        let full = ghn.embed_with_schedule(&g, &sched);

        ghn.set_precision(Precision::Bf16);
        assert_eq!(ghn.precision(), Precision::Bf16);
        let quantized = ghn.embed_with_schedule(&g, &sched);
        for (a, b) in full.iter().zip(&quantized) {
            assert!(
                (a - b).abs() <= 1e-2 * a.abs().max(1.0),
                "bf16 embedding drifted: {a} vs {b}"
            );
        }
        // The synchronous ablation path must run under bf16 too.
        let sync = ghn.embed_graph_sync(&g, 4);
        assert!(sync.iter().all(|x| x.is_finite()));

        // Dropping back to f32 restores bit-exact inference: the f32
        // masters were never touched by freezing.
        ghn.set_precision(Precision::F32);
        assert_eq!(ghn.precision(), Precision::F32);
        assert_eq!(ghn.embed_with_schedule(&g, &sched), full);
    }

    #[test]
    fn embed_records_latency_histogram() {
        let mut rng = Rng::new(24);
        let ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let _ = ghn.embed_graph(&toy_graph());
        let snap = pddl_telemetry::snapshot();
        let h = snap.histogram("ghn.embed").expect("ghn.embed registered");
        assert!(h.count >= 1);
    }

    #[test]
    fn embedding_has_configured_dimension() {
        let mut rng = Rng::new(8);
        let ghn = Ghn::new(GhnConfig::default(), &mut rng);
        let e = ghn.embed_graph(&toy_graph());
        assert_eq!(e.len(), 32);
        assert!(e.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn different_graphs_get_different_embeddings() {
        let mut rng = Rng::new(9);
        let ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let g1 = toy_graph();
        let mut g2 = CompGraph::new("chain");
        let a = g2.add_node(OpKind::Input, NodeAttrs::elementwise(3, 16), "in");
        let b = g2.chain(a, OpKind::Dense, NodeAttrs::dense(768, 10), "fc");
        let _ = g2.chain(b, OpKind::Output, NodeAttrs::elementwise(10, 1), "out");
        let e1 = ghn.embed_graph(&g1);
        let e2 = ghn.embed_graph(&g2);
        let diff: f32 = e1.iter().zip(&e2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3, "embeddings identical: diff={diff}");
    }

    #[test]
    fn embedding_invariant_to_node_relabeling() {
        // Building the same architecture with different label strings must
        // give the same embedding (features depend on ops/shapes only).
        let mut rng = Rng::new(10);
        let ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let g1 = toy_graph();
        let mut g2 = toy_graph();
        // Only labels differ.
        for _ in 0..1 {
            g2 = {
                let mut g = CompGraph::new("renamed");
                let input = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 16), "x");
                let c1 = g.chain(input, OpKind::Conv, NodeAttrs::conv(3, 8, 3, 1, 16), "y");
                let r1 = g.chain(c1, OpKind::Relu, NodeAttrs::elementwise(8, 16), "z");
                let c2 = g.chain(r1, OpKind::Conv, NodeAttrs::conv(8, 8, 3, 1, 16), "w");
                let s = g.add_node(OpKind::Sum, NodeAttrs::elementwise(8, 16), "v");
                g.add_edge(c2, s);
                g.add_edge(c1, s);
                let _ = g.chain(s, OpKind::Output, NodeAttrs::elementwise(8, 16), "u");
                g
            };
        }
        let e1 = ghn.embed_graph(&g1);
        let e2 = ghn.embed_graph(&g2);
        for (a, b) in e1.iter().zip(&e2) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn normalization_keeps_states_bounded_on_deep_chain() {
        let mut rng = Rng::new(11);
        let mut cfg = GhnConfig::tiny();
        cfg.t_passes = 3;
        let ghn = Ghn::new(cfg, &mut rng);
        // A 60-deep chain would explode without normalization.
        let mut g = CompGraph::new("deep");
        let mut prev = g.add_node(OpKind::Input, NodeAttrs::elementwise(3, 8), "in");
        for i in 0..60 {
            prev = g.chain(prev, OpKind::Conv, NodeAttrs::conv(8, 8, 3, 1, 8), format!("c{i}"));
        }
        let _ = g.chain(prev, OpKind::Output, NodeAttrs::elementwise(8, 8), "out");
        let e = ghn.embed_graph(&g);
        assert!(e.iter().all(|x| x.is_finite() && x.abs() < 10.0), "{e:?}");
    }

    #[test]
    fn synchronous_mode_produces_valid_embeddings() {
        let mut rng = Rng::new(21);
        let ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let g = toy_graph();
        let e = ghn.embed_graph_sync(&g, 4);
        assert_eq!(e.len(), GhnConfig::tiny().hidden_dim);
        assert!(e.iter().all(|x| x.is_finite()));
        // Deterministic.
        assert_eq!(e, ghn.embed_graph_sync(&g, 4));
        // Distinguishes graphs.
        let mut g2 = CompGraph::new("other");
        let a = g2.add_node(OpKind::Input, NodeAttrs::elementwise(3, 16), "in");
        let b = g2.chain(a, OpKind::Dense, NodeAttrs::dense(768, 10), "fc");
        let _ = g2.chain(b, OpKind::Output, NodeAttrs::elementwise(10, 1), "out");
        let e2 = ghn.embed_graph_sync(&g2, 4);
        let diff: f32 = e.iter().zip(&e2).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-3);
    }

    #[test]
    fn sync_and_sequential_agree_in_direction() {
        // Same weights, different update schedules: embeddings differ but
        // should point the same way (high cosine) on a small graph once
        // enough sweeps have run.
        let mut rng = Rng::new(22);
        let ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let g = toy_graph();
        let seq = ghn.embed_graph(&g);
        let syn = ghn.embed_graph_sync(&g, 6);
        let cos = crate::embed::cosine_similarity(&seq, &syn);
        assert!(cos > 0.5, "schedules diverged: cos {cos}");
    }

    #[test]
    fn decoder_targets_are_bounded() {
        let t = decoder_targets(&toy_graph());
        assert_eq!(t.len(), TARGET_DIM);
        assert!(t.iter().all(|x| x.abs() < 5.0), "{t:?}");
    }

    #[test]
    fn decode_fast_dimension() {
        let mut rng = Rng::new(12);
        let ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
        let e = ghn.embed_graph(&toy_graph());
        let d = ghn.decode_fast(&e);
        assert_eq!(d.len(), TARGET_DIM);
    }
}
