//! GHN hyperparameters.

use serde::{Deserialize, Serialize};

/// Configuration of a GHN-2 instance.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GhnConfig {
    /// Node-state / embedding dimensionality `d`. The paper quotes a
    /// fixed-size output of e.g. 32.
    pub hidden_dim: usize,
    /// Number of forward+backward propagation rounds `T` (Eq. 3).
    pub t_passes: usize,
    /// Virtual-edge cutoff `s^(max)` (Eq. 4).
    pub s_max: u32,
    /// Hidden width of the message MLPs.
    pub mlp_hidden: usize,
    /// Apply per-node L2 normalization after each propagation sweep
    /// (GHN-2's stabilization; disable to observe gradient explosion).
    pub normalize: bool,
    /// Hidden width of the decoder head.
    pub decoder_hidden: usize,
}

impl Default for GhnConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 32,
            t_passes: 1,
            s_max: 5,
            mlp_hidden: 32,
            normalize: true,
            decoder_hidden: 48,
        }
    }
}

impl GhnConfig {
    /// Small configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            hidden_dim: 8,
            t_passes: 1,
            s_max: 3,
            mlp_hidden: 8,
            normalize: true,
            decoder_hidden: 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_dimension() {
        assert_eq!(GhnConfig::default().hidden_dim, 32);
    }

    #[test]
    fn serde_round_trip() {
        let c = GhnConfig::default();
        let s = serde_json::to_string(&c).unwrap();
        let c2: GhnConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c2.hidden_dim, c.hidden_dim);
        assert_eq!(c2.s_max, c.s_max);
    }
}
