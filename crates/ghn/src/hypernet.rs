//! The weight-predicting hypernetwork — the *original* purpose of a GHN
//! (Zhang et al., ICLR 2019; Knyazev et al., NeurIPS 2021).
//!
//! PredictDDL "skips the last module in the original GHN and uses the
//! intermediate complexity vector" (§III-E). This module implements the
//! skipped last module so the repository contains the complete GHN: a
//! decoder conditioned on the final per-node states `h_v^T` emits each
//! parameterized node's weights `w_v^p`, and the whole pipeline is
//! meta-trained end-to-end through the *task loss of the predicted weights*.
//!
//! At laptop scale the target family is single-hidden-layer MLP classifiers
//! on a fixed synthetic 2-D task (standing in for "CNNs on CIFAR-10").
//! After meta-training, predicted parameters for **unseen** widths achieve a
//! markedly lower task loss than random initialization — the headline GHN-2
//! result in miniature.

use crate::config::GhnConfig;
use crate::model::{Ghn, Schedule};
use pddl_autodiff::{layers::Activation, Adam, Gradients, Mlp, Optimizer, ParamStore, Tape, Var};
use pddl_graph::{CompGraph, NodeAttrs, OpKind};
use pddl_tensor::{Matrix, Rng};

/// Maximum fan-in/fan-out of decodable Dense nodes.
pub const MAX_FAN: usize = 12;

/// A GHN plus the weight decoder (the "last module").
pub struct WeightHyperNet {
    pub ghn: Ghn,
    /// Decoder for flat weight blocks: node state → MAX_FAN² values.
    dec_w: Mlp,
    /// Decoder for bias blocks: node state → MAX_FAN values.
    dec_b: Mlp,
}

/// A target architecture in the miniature family: 2 → hidden → 2 MLP.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetArch {
    pub hidden: usize,
}

impl TargetArch {
    /// Builds the computational graph the GHN sees.
    pub fn graph(&self) -> CompGraph {
        assert!(self.hidden >= 1 && self.hidden <= MAX_FAN);
        let mut g = CompGraph::new(format!("mlp2-{}-2", self.hidden));
        let input = g.add_node(OpKind::Input, NodeAttrs::dense(2, 2), "in");
        let fc1 = g.chain(input, OpKind::Dense, NodeAttrs::dense(2, self.hidden), "fc1");
        let act = g.chain(fc1, OpKind::Tanh, NodeAttrs::elementwise(self.hidden, 1), "tanh");
        let fc2 = g.chain(act, OpKind::Dense, NodeAttrs::dense(self.hidden, 2), "fc2");
        let sm = g.chain(fc2, OpKind::Softmax, NodeAttrs::elementwise(2, 1), "softmax");
        let _ = g.chain(sm, OpKind::Output, NodeAttrs::elementwise(2, 1), "out");
        g
    }
}

/// The fixed synthetic task (the family's "CIFAR-10"): two noisy interleaved
/// arcs, not linearly separable, so predicted weights must be non-trivial.
pub fn task_dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = Rng::new(seed);
    let mut x = Matrix::zeros(n, 2);
    let mut y = Matrix::zeros(n, 2); // one-hot
    for i in 0..n {
        let class = i % 2;
        let t = rng.uniform(0.0, std::f32::consts::PI);
        let (cx, r, flip) = if class == 0 { (0.0, 1.0, 1.0) } else { (1.0, 1.0, -1.0) };
        x[(i, 0)] = cx + r * t.cos() + rng.normal() * 0.1;
        x[(i, 1)] = flip * (r * t.sin() - 0.25) + rng.normal() * 0.1;
        y[(i, class)] = 1.0;
    }
    (x, y)
}

impl WeightHyperNet {
    pub fn new(cfg: GhnConfig, rng: &mut Rng) -> Self {
        let mut ghn = Ghn::new(cfg, rng);
        let d = cfg.hidden_dim;
        let dec_w = Mlp::new(
            &mut ghn.ps,
            "hyper.dec_w",
            &[d, cfg.decoder_hidden, MAX_FAN * MAX_FAN],
            Activation::Relu,
            rng,
        );
        let dec_b = Mlp::new(
            &mut ghn.ps,
            "hyper.dec_b",
            &[d, cfg.decoder_hidden, MAX_FAN],
            Activation::Relu,
            rng,
        );
        Self { ghn, dec_w, dec_b }
    }

    /// Runs the target architecture's forward pass **through predicted
    /// weights** on the tape and returns the MSE task loss against one-hot
    /// labels. This is the differentiable path meta-training optimizes.
    pub fn task_loss_traced(
        &self,
        tape: &mut Tape,
        arch: &TargetArch,
        x: &Matrix,
        y: &Matrix,
    ) -> Var {
        let g = arch.graph();
        let sched = Schedule::new(&g, self.ghn.cfg.s_max);
        let states = self.ghn.node_states_traced(tape, &g, &sched);

        // Decode weights for the two Dense nodes.
        let mut dense_nodes = g
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == OpKind::Dense);
        let (fc1_id, fc1) = dense_nodes.next().expect("fc1");
        let (fc2_id, fc2) = dense_nodes.next().expect("fc2");

        // Decode a full MAX_FAN×MAX_FAN block and take the top-left fi×fo
        // submatrix, so weight (i, j) has a stable meaning across target
        // shapes (GHN-2's shape-consistent slicing convention).
        let decode = |tape: &mut Tape, state: Var, attrs: &NodeAttrs| -> (Var, Var) {
            let (fi, fo) = (attrs.c_in, attrs.c_out);
            let flat_w = self.dec_w.forward(tape, state);
            let w_full = tape.reshape(flat_w, MAX_FAN, MAX_FAN);
            let w_rows = tape.slice_rows(w_full, 0, fi);
            let w = tape.slice_cols(w_rows, 0, fo);
            let flat_b = self.dec_b.forward(tape, state);
            let b = tape.slice_cols(flat_b, 0, fo);
            (w, b)
        };
        let (w1, b1) = decode(tape, states[fc1_id], &fc1.attrs);
        let (w2, b2) = decode(tape, states[fc2_id], &fc2.attrs);

        // Target-network forward with the predicted parameters; each layer
        // is one fused affine+activation node.
        let xv = tape.constant(x.clone());
        let h1 = tape.affine_act(xv, w1, b1, pddl_tensor::Activation::Tanh);
        let probs = tape.affine_act(h1, w2, b2, pddl_tensor::Activation::Sigmoid);
        let yv = tape.constant(y.clone());
        tape.mse_loss(probs, yv)
    }

    /// Task loss of the predicted weights (no gradient).
    pub fn task_loss(&self, arch: &TargetArch, x: &Matrix, y: &Matrix) -> f32 {
        let mut tape = Tape::new(&self.ghn.ps);
        let loss = self.task_loss_traced(&mut tape, arch, x, y);
        tape.scalar(loss)
    }

    /// Meta-trains the GHN + decoder across the width family. Returns the
    /// loss trajectory.
    pub fn meta_train(
        &mut self,
        widths: &[usize],
        steps: usize,
        lr: f32,
        seed: u64,
    ) -> Vec<f32> {
        let (x, y) = task_dataset(96, seed);
        let mut rng = Rng::new(seed ^ 0xAB);
        let mut opt = Adam::new(lr);
        let mut losses = Vec::with_capacity(steps);
        for _ in 0..steps {
            let arch = TargetArch { hidden: *rng.pick(widths) };
            let (value, grads): (f32, Gradients) = {
                let mut tape = Tape::new(&self.ghn.ps);
                let loss = self.task_loss_traced(&mut tape, &arch, &x, &y);
                (tape.scalar(loss), tape.backward(loss))
            };
            let mut grads = grads;
            grads.clip_global_norm(5.0);
            opt.step(&mut self.ghn.ps, &grads);
            losses.push(value);
        }
        losses
    }

    /// Task loss of a randomly initialized target network of the same
    /// architecture (the baseline GHN-2 compares against).
    pub fn random_init_loss(arch: &TargetArch, x: &Matrix, y: &Matrix, seed: u64) -> f32 {
        let mut rng = Rng::new(seed);
        let mut ps = ParamStore::new();
        let w1 = ps.register("w1", Matrix::xavier(2, arch.hidden, &mut rng));
        let b1 = ps.register_bias("b1", arch.hidden);
        let w2 = ps.register("w2", Matrix::xavier(arch.hidden, 2, &mut rng));
        let b2 = ps.register_bias("b2", 2);
        let mut tape = Tape::new(&ps);
        let xv = tape.constant(x.clone());
        let w1v = tape.param(w1);
        let b1v = tape.param(b1);
        let h = tape.affine_act(xv, w1v, b1v, pddl_tensor::Activation::Tanh);
        let w2v = tape.param(w2);
        let b2v = tape.param(b2);
        let probs = tape.affine_act(h, w2v, b2v, pddl_tensor::Activation::Sigmoid);
        let yv = tape.constant(y.clone());
        let loss = tape.mse_loss(probs, yv);
        tape.scalar(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_graphs_validate() {
        for h in 1..=MAX_FAN {
            let g = TargetArch { hidden: h }.graph();
            assert_eq!(g.validate(), Ok(()), "width {h}");
            assert_eq!(g.num_layers(), 2);
        }
    }

    #[test]
    fn task_dataset_is_balanced_and_nontrivial() {
        let (x, y) = task_dataset(100, 1);
        assert_eq!(x.rows(), 100);
        let class0: f32 = y.col(0).iter().sum();
        assert!((class0 - 50.0).abs() < 1.0);
        // Not linearly separable: a zero-hidden "predict by x sign" rule
        // should misclassify a decent chunk. (Weak structural check: both
        // classes appear on both sides of x=0.5.)
        let mut sides = [[0; 2]; 2];
        for i in 0..100 {
            let side = (x[(i, 0)] > 0.5) as usize;
            let class = (y[(i, 1)] > 0.5) as usize;
            sides[side][class] += 1;
        }
        assert!(sides.iter().flatten().all(|&c| c > 0), "{sides:?}");
    }

    #[test]
    fn meta_training_reduces_task_loss() {
        let mut rng = Rng::new(2);
        let mut hyper = WeightHyperNet::new(GhnConfig::tiny(), &mut rng);
        let losses = hyper.meta_train(&[2, 4, 6], 120, 5e-3, 7);
        let head: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let tail: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(tail < head, "no improvement: {head} -> {tail}");
    }

    #[test]
    fn predicted_weights_beat_random_init_on_unseen_width() {
        let mut rng = Rng::new(3);
        let mut hyper = WeightHyperNet::new(GhnConfig::tiny(), &mut rng);
        hyper.meta_train(&[2, 4, 6, 8], 500, 5e-3, 11);
        let (x, y) = task_dataset(96, 11); // same task distribution
        // Width 5 was never seen during meta-training.
        let arch = TargetArch { hidden: 5 };
        let predicted = hyper.task_loss(&arch, &x, &y);
        let random_mean: f32 = (0..8)
            .map(|s| WeightHyperNet::random_init_loss(&arch, &x, &y, 100 + s))
            .sum::<f32>()
            / 8.0;
        assert!(
            predicted < 0.8 * random_mean,
            "predicted {predicted} not clearly better than random {random_mean}"
        );
    }
}
