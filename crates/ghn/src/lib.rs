//! GHN-2 — the Graph HyperNetwork at the heart of PredictDDL.
//!
//! Implements Section III-E of the paper and the underlying machinery from
//! Knyazev et al. (NeurIPS 2021) / Zhang et al. (ICLR 2019):
//!
//! * an **embedding layer** mapping one-hot node features `H₀` to
//!   `d`-dimensional states `H₁`;
//! * a **GatedGNN** that mimics the forward and backward passes of DNN
//!   execution: nodes are updated *sequentially* in topological order
//!   (`π = fw`) and reverse order (`π = bw`), `T` times, via
//!   `m_v = Σ_{u∈𝒩ᵥ} MLP(h_u)` and `h_v = GRU(h_v, m_v)` (Eq. 3);
//! * GHN-2's **virtual edges**: `m_v += Σ_{u: 1<s_vu≤s_max} MLP_sp(h_u)/s_vu`
//!   (Eq. 4);
//! * **operation-dependent normalization** of node states to keep deep
//!   graphs stable (the paper's enhancement (2));
//! * a **decoder**. The original GHN decodes per-node weights; PredictDDL
//!   "skips the last module ... and uses the intermediate complexity vector
//!   representation" — we keep a *graph-level* decoder as the meta-training
//!   objective and expose the pooled pre-decoder state as the embedding.
//!
//! ## Meta-training substitution (see DESIGN.md)
//!
//! The real GHN-2 is trained by back-propagating CIFAR-10 classification
//! loss through predicted weights of 10⁶ DARTS architectures — GPU-scale
//! work that also requires pixel data. PredictDDL only consumes the
//! intermediate embedding as a *complexity representation*, so we train the
//! identical network on a synthetic DARTS-style architecture distribution
//! ([`synth`]) with a surrogate objective ([`train`]): decoder heads must
//! recover normalized log-FLOPs, log-params, depth and the op-kind
//! histogram of each graph from its pooled embedding. The result preserves
//! the property PredictDDL relies on (Fig. 5): architectures of similar
//! complexity land close in cosine distance.

pub mod config;
pub mod embed;
pub mod hypernet;
pub mod model;
pub mod synth;
pub mod train;

pub use config::GhnConfig;
pub use embed::{cosine_similarity, EmbeddingSet};
pub use hypernet::WeightHyperNet;
pub use model::{Ghn, Schedule};
pub use synth::SynthGenerator;
pub use train::{GhnTrainer, TrainConfig, TrainReport};
