//! Embedding-space utilities: cosine similarity and the named embedding set
//! used by the Workload Embeddings Generator (paper §III-E, Fig. 5: "the
//! distance between a pair of vectors ... indicates the similarity of the
//! corresponding DNN architectures").

use serde::{Deserialize, Serialize};

/// Cosine similarity of two equal-length vectors; 0 for degenerate inputs.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine dimension mismatch");
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na.sqrt() * nb.sqrt())) as f32
    }
}

/// A collection of named architecture embeddings supporting nearest-match
/// lookup (PredictDDL "finds the closest match based on the cosine
/// similarity in case there is no exact match").
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EmbeddingSet {
    names: Vec<String>,
    vectors: Vec<Vec<f32>>,
}

impl EmbeddingSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an embedding.
    pub fn insert(&mut self, name: impl Into<String>, v: Vec<f32>) {
        let name = name.into();
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            self.vectors[i] = v;
        } else {
            self.names.push(name);
            self.vectors.push(v);
        }
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    pub fn get(&self, name: &str) -> Option<&[f32]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.vectors[i].as_slice())
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|s| s.as_str())
    }

    /// Returns the stored name with highest cosine similarity to `query`,
    /// along with the similarity. `None` on an empty set.
    pub fn nearest(&self, query: &[f32]) -> Option<(&str, f32)> {
        self.vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, cosine_similarity(query, v)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, s)| (self.names[i].as_str(), s))
    }

    /// Top-k most similar entries, most similar first.
    pub fn top_k(&self, query: &[f32], k: usize) -> Vec<(&str, f32)> {
        let mut scored: Vec<(&str, f32)> = self
            .names
            .iter()
            .zip(&self.vectors)
            .map(|(n, v)| (n.as_str(), cosine_similarity(query, v)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_is_one() {
        let v = vec![0.3, -1.0, 2.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_is_minus_one() {
        let a = [1.0, 2.0];
        let b = [-1.0, -2.0];
        assert!((cosine_similarity(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [0.5, 1.5, -0.25];
        let b: Vec<f32> = a.iter().map(|x| 7.0 * x).collect();
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_vector_yields_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn nearest_finds_best_match() {
        let mut set = EmbeddingSet::new();
        set.insert("a", vec![1.0, 0.0]);
        set.insert("b", vec![0.0, 1.0]);
        set.insert("c", vec![0.7, 0.7]);
        let (name, sim) = set.nearest(&[0.6, 0.8]).unwrap();
        assert_eq!(name, "c");
        assert!(sim > 0.9);
    }

    #[test]
    fn insert_replaces_existing() {
        let mut set = EmbeddingSet::new();
        set.insert("a", vec![1.0]);
        set.insert("a", vec![2.0]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.get("a").unwrap(), &[2.0]);
    }

    #[test]
    fn top_k_sorted_descending() {
        let mut set = EmbeddingSet::new();
        set.insert("x", vec![1.0, 0.0]);
        set.insert("y", vec![0.9, 0.1]);
        set.insert("z", vec![0.0, 1.0]);
        let top = set.top_k(&[1.0, 0.0], 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "x");
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn empty_set_has_no_nearest() {
        assert!(EmbeddingSet::new().nearest(&[1.0]).is_none());
    }

    #[test]
    fn serde_round_trip() {
        let mut set = EmbeddingSet::new();
        set.insert("m", vec![0.25, -0.5]);
        let s = serde_json::to_string(&set).unwrap();
        let set2: EmbeddingSet = serde_json::from_str(&s).unwrap();
        assert_eq!(set2.get("m").unwrap(), set.get("m").unwrap());
    }
}
