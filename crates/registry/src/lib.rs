//! Versioned on-disk checkpoint registry with crash-safe writes.
//!
//! PredictDDL's value proposition is amortization: train the GHN and the
//! latency regressor once, then reuse them across workloads and serving
//! sessions. That only holds if the trained artifacts survive crashes and
//! can be swapped into a live fleet without a restart. This crate provides
//! the storage half of that story:
//!
//! - **Atomic checkpoint writer** ([`atomic_write`], [`store::Registry::publish`]):
//!   every file lands via tempfile → fsync → rename, and a version is only
//!   *committed* once its `manifest.json` (written last) renames into place.
//! - **Versioned layout**: each checkpoint lives in `vNNNN/` under the
//!   registry root, alongside a [`Manifest`] carrying a format version,
//!   FNV-1a content hash and byte length per artifact, free-form label,
//!   and an optional golden probe set used by the serving layer to
//!   validate a candidate before hot-swapping it live.
//! - **Recovery on open**: [`store::Registry::open`] verifies every version
//!   (manifest parses, hashes and lengths match) and quarantines the ones
//!   that don't into `quarantine/`, so the newest *verifiable* version is
//!   always the one served — a torn or partial write can never win.
//! - **Retention**: keep the last K versions; pinned versions (e.g. the
//!   one currently live in a serving process) are never collected.
//! - **Deterministic crash simulation** ([`CrashPoint`], [`CrashPlan`],
//!   [`store::Registry::publish_crashing`]): seeded, reproducible torn/truncated
//!   write debris in the style of `pddl-faults`, so the recovery tier can
//!   assert "open() lands on the newest verifiable version" across many
//!   seeds without flaky timing games.
//!
//! The crate is plain `std` (it reuses `pddl-telemetry`'s hand-rolled JSON
//! parser for manifests), so its test suite runs under the offline harness
//! (`scripts/offline_check.sh test-registry`).
//!
//! # Example
//!
//! ```
//! use pddl_registry::{Registry, ProbeRecord};
//!
//! let dir = std::env::temp_dir().join(format!("pddl-registry-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let (reg, report) = Registry::open(&dir, 4).unwrap();
//! assert!(report.recovered.is_none());
//! let v = reg
//!     .publish(
//!         "first",
//!         &[("system.json".to_string(), b"{}".to_vec())],
//!         &[ProbeRecord::from_seconds("probe-0", 1.25)],
//!     )
//!     .unwrap();
//! assert_eq!(reg.latest(), Some(v));
//! assert_eq!(reg.read_artifact(v, "system.json").unwrap(), b"{}");
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod manifest;
pub mod store;
pub mod writer;

pub use manifest::{ArtifactEntry, Manifest, ProbeRecord, FORMAT_VERSION};
pub use store::{RecoveryReport, Registry, RegistryError};
pub use writer::{atomic_write, CrashPlan, CrashPoint};

/// FNV-1a 64-bit content hash — the same construction the router uses for
/// routing keys, chosen here for the manifest because it is trivially
/// reimplementable by any reader of the on-disk format.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::fnv1a;

    #[test]
    fn fnv1a_known_vectors() {
        // Offset basis for the empty input; standard FNV-1a test vector for "a".
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"acb"));
    }
}
