//! Crash-safe file writing and deterministic crash simulation.
//!
//! Every durable write in the registry goes through [`atomic_write`]:
//! write the full payload to a sibling tempfile, fsync it, rename it over
//! the destination, then fsync the parent directory so the rename itself
//! is durable. A reader can therefore never observe a half-written file —
//! it sees either the old content or the new content.
//!
//! For the recovery test tier, [`CrashPoint`] enumerates the distinct ways
//! a staged publish can be interrupted (torn tempfile, missing manifest,
//! truncated-but-committed artifact, latent bit flip, ...) and
//! [`CrashPlan`] derives one deterministically from a seed, in the same
//! seeded-schedule style as `pddl-faults`: the same seed always produces
//! the same debris, so "open() recovers in 100% of seeds" is a plain loop.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
///
/// The payload is written to `<path>.tmp`, flushed and fsynced, renamed
/// over `path`, and the parent directory is fsynced so the rename survives
/// a crash. On any error the tempfile may be left behind; registry
/// recovery sweeps stray `.tmp` files on open.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent(path)
}

/// Fsyncs the directory containing `path`, making a completed rename
/// durable. Missing parent (relative bare filename) is treated as the
/// current directory.
pub(crate) fn sync_parent(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    // Directory fsync is not supported on every platform; opening
    // read-only and syncing is the portable best effort.
    match File::open(parent) {
        Ok(d) => d.sync_all(),
        Err(e) => Err(e),
    }
}

pub(crate) fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    name.push_str(".tmp");
    path.with_file_name(name)
}

/// Where a simulated crash interrupts a staged publish.
///
/// Artifact indices refer to the artifact list passed to
/// [`crate::Registry::publish_crashing`]; offsets are clamped to the
/// artifact's length, so any seed-derived value is valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// The process dies mid-write of artifact `artifact`: its tempfile is
    /// truncated at `keep` bytes and never renamed. Earlier artifacts are
    /// committed, the manifest is never written.
    TornTmp {
        /// Index of the artifact being written when the crash hits.
        artifact: usize,
        /// Bytes of the artifact that made it to the tempfile.
        keep: usize,
    },
    /// All artifacts are committed but the process dies before the
    /// manifest is written — the version has no commit record.
    BeforeManifest,
    /// The manifest itself is torn: truncated at `keep` bytes yet renamed
    /// into place (models a file system that reorders data vs. metadata).
    TornManifest {
        /// Bytes of the manifest JSON that survive.
        keep: usize,
    },
    /// Artifact `artifact` is committed truncated at `keep` bytes while
    /// the manifest records the intended full length and hash — the
    /// classic torn write that only content verification catches.
    TornCommitted {
        /// Index of the torn artifact.
        artifact: usize,
        /// Bytes of that artifact that survive on disk.
        keep: usize,
    },
    /// The publish completes, then one bit of artifact `artifact` flips at
    /// byte `offset` (latent media corruption surfaced at next open).
    BitFlip {
        /// Index of the corrupted artifact.
        artifact: usize,
        /// Byte offset whose low bit is flipped.
        offset: usize,
    },
}

/// Seeded, deterministic chooser of a [`CrashPoint`] for a given artifact
/// list. Same seed + same artifacts ⇒ same crash, every run.
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    seed: u64,
}

impl CrashPlan {
    /// Creates a plan from a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Picks the crash point this plan injects for `artifacts`.
    pub fn pick(&self, artifacts: &[(String, Vec<u8>)]) -> CrashPoint {
        let mut s = self.seed;
        let kind = splitmix(&mut s) % 5;
        let n = artifacts.len().max(1);
        let artifact = (splitmix(&mut s) as usize) % n;
        let len = artifacts.get(artifact).map(|(_, b)| b.len()).unwrap_or(0);
        let cut = |s: &mut u64, len: usize| {
            if len == 0 {
                0
            } else {
                (splitmix(s) as usize) % len
            }
        };
        match kind {
            0 => CrashPoint::TornTmp {
                artifact,
                keep: cut(&mut s, len),
            },
            1 => CrashPoint::BeforeManifest,
            2 => CrashPoint::TornManifest {
                keep: cut(&mut s, 64),
            },
            3 => CrashPoint::TornCommitted {
                artifact,
                keep: cut(&mut s, len),
            },
            _ => CrashPoint::BitFlip {
                artifact,
                offset: cut(&mut s, len),
            },
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Writes `bytes` truncated at `keep` to `path` without the atomic dance —
/// the debris a torn write leaves behind.
pub(crate) fn write_torn(path: &Path, bytes: &[u8], keep: usize) -> io::Result<()> {
    let keep = keep.min(bytes.len());
    let mut f = File::create(path)?;
    f.write_all(&bytes[..keep])?;
    Ok(())
}

/// Flips the low bit of the byte at `offset` in `path` (clamped in-range).
pub(crate) fn flip_bit(path: &Path, offset: usize) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if len == 0 {
        return Ok(());
    }
    let off = (offset as u64).min(len - 1);
    let mut byte = [0u8; 1];
    f.seek(SeekFrom::Start(off))?;
    f.read_exact(&mut byte)?;
    byte[0] ^= 1;
    f.seek(SeekFrom::Start(off))?;
    f.write_all(&byte)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pddl-registry-writer-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_content() {
        let d = tmp_dir("replace");
        let p = d.join("x.json");
        atomic_write(&p, b"old").unwrap();
        atomic_write(&p, b"new").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"new");
        assert!(!tmp_path(&p).exists(), "tempfile cleaned by rename");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn crash_plan_is_deterministic() {
        let artifacts = vec![
            ("a".to_string(), vec![0u8; 100]),
            ("b".to_string(), vec![1u8; 50]),
        ];
        for seed in 0..64 {
            let a = CrashPlan::new(seed).pick(&artifacts);
            let b = CrashPlan::new(seed).pick(&artifacts);
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn crash_plan_covers_all_kinds() {
        let artifacts = vec![("a".to_string(), vec![0u8; 100])];
        let mut seen = [false; 5];
        for seed in 0..200 {
            match CrashPlan::new(seed).pick(&artifacts) {
                CrashPoint::TornTmp { .. } => seen[0] = true,
                CrashPoint::BeforeManifest => seen[1] = true,
                CrashPoint::TornManifest { .. } => seen[2] = true,
                CrashPoint::TornCommitted { .. } => seen[3] = true,
                CrashPoint::BitFlip { .. } => seen[4] = true,
            }
        }
        assert!(seen.iter().all(|&s| s), "200 seeds hit every kind: {seen:?}");
    }

    #[test]
    fn write_torn_truncates() {
        let d = tmp_dir("torn");
        let p = d.join("t.bin");
        write_torn(&p, b"0123456789", 4).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"0123");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let d = tmp_dir("flip");
        let p = d.join("f.bin");
        fs::write(&p, [0u8; 8]).unwrap();
        flip_bit(&p, 3).unwrap();
        let got = fs::read(&p).unwrap();
        let ones: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(got[3], 1);
        fs::remove_dir_all(&d).unwrap();
    }
}
