//! Checkpoint manifest: the commit record of a registry version.
//!
//! A version directory is only considered committed once `manifest.json`
//! has been atomically renamed into place, so the manifest doubles as the
//! commit marker and the verification record: it lists every artifact with
//! its byte length and FNV-1a hash, and carries the golden probe set the
//! serving layer replays before hot-swapping the version live.
//!
//! The JSON rendering is deterministic (fixed field order, hashes and f64
//! bit patterns as zero-padded hex) and pinned by the golden fixture
//! `tests/fixtures/registry_manifest.json`, so the on-disk format cannot
//! drift silently. Parsing goes through `pddl-telemetry`'s hand-rolled
//! [`JsonValue`] so the crate stays plain `std`.

use pddl_telemetry::{push_json_string, JsonValue};

/// On-disk manifest format version. Readers reject anything newer.
pub const FORMAT_VERSION: u32 = 1;

/// One artifact (named byte blob) recorded in a manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactEntry {
    /// File name within the version directory (e.g. `system.json`).
    pub name: String,
    /// Exact byte length of the artifact file.
    pub len: u64,
    /// FNV-1a 64-bit hash of the artifact bytes.
    pub fnv1a: u64,
}

/// One golden-probe expectation: a deterministic prediction recorded at
/// publish time, replayed at reload time to validate a candidate version.
///
/// The predicted seconds are stored as the raw `f64` bit pattern so the
/// round trip is exact; "bit-identical for an unchanged model" is then a
/// plain integer comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeRecord {
    /// Stable key describing the probe request (workload + cluster).
    pub key: String,
    /// `f64::to_bits` of the predicted iteration time in seconds.
    pub seconds_bits: u64,
}

impl ProbeRecord {
    /// Builds a record from a prediction in seconds.
    pub fn from_seconds(key: impl Into<String>, seconds: f64) -> Self {
        Self {
            key: key.into(),
            seconds_bits: seconds.to_bits(),
        }
    }

    /// The recorded prediction in seconds.
    pub fn seconds(&self) -> f64 {
        f64::from_bits(self.seconds_bits)
    }
}

/// Commit record for one registry version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// On-disk format version ([`FORMAT_VERSION`] at write time).
    pub format: u32,
    /// Registry version number this manifest commits (the `vNNNN` dir).
    pub version: u64,
    /// Unix timestamp (seconds) when the version was published.
    pub created_unix: u64,
    /// Free-form operator label (e.g. `"nightly-retrain"`).
    pub label: String,
    /// Inference storage precision the system was published for
    /// (`"f32"` or `"bf16"`). Manifests written before the field existed
    /// parse as `"f32"`.
    pub precision: String,
    /// Every artifact in the version directory, with length + hash.
    pub artifacts: Vec<ArtifactEntry>,
    /// Golden probe set for reload validation (may be empty).
    pub probes: Vec<ProbeRecord>,
}

impl Manifest {
    /// Looks up an artifact entry by name.
    pub fn artifact(&self, name: &str) -> Option<&ArtifactEntry> {
        self.artifacts.iter().find(|a| a.name == name)
    }

    /// Renders the deterministic on-disk JSON (trailing newline included).
    ///
    /// Field order is fixed and hashes/bit patterns are zero-padded
    /// lowercase hex, so equal manifests always produce byte-equal files —
    /// the golden fixture pins this shape.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": {},\n", self.format));
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"created_unix\": {},\n", self.created_unix));
        out.push_str("  \"label\": ");
        push_json_string(&mut out, &self.label);
        out.push_str(",\n  \"precision\": ");
        push_json_string(&mut out, &self.precision);
        out.push_str(",\n  \"artifacts\": [");
        for (i, a) in self.artifacts.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            push_json_string(&mut out, &a.name);
            out.push_str(&format!(
                ", \"len\": {}, \"fnv1a\": \"{:016x}\"}}",
                a.len, a.fnv1a
            ));
        }
        if !self.artifacts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"probes\": [");
        for (i, p) in self.probes.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"key\": ");
            push_json_string(&mut out, &p.key);
            out.push_str(&format!(", \"seconds_bits\": \"{:016x}\"}}", p.seconds_bits));
        }
        if !self.probes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a manifest previously rendered by [`Manifest::to_json`].
    pub fn from_json(input: &str) -> Result<Manifest, String> {
        let v = JsonValue::parse(input)?;
        let format = field_u64(&v, "format")? as u32;
        let version = field_u64(&v, "version")?;
        let created_unix = field_u64(&v, "created_unix")?;
        let label = v
            .get("label")
            .and_then(|l| l.as_str())
            .ok_or("manifest: missing string field `label`")?
            .to_string();
        // Absent in pre-precision manifests: those systems were published
        // (and must be served) at full precision.
        let precision = v
            .get("precision")
            .and_then(|p| p.as_str())
            .unwrap_or("f32")
            .to_string();
        let mut artifacts = Vec::new();
        for a in array_field(&v, "artifacts")? {
            let name = a
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or("manifest: artifact missing `name`")?
                .to_string();
            let len = field_u64(a, "len")?;
            let fnv1a = hex_field(a, "fnv1a")?;
            artifacts.push(ArtifactEntry { name, len, fnv1a });
        }
        let mut probes = Vec::new();
        for p in array_field(&v, "probes")? {
            let key = p
                .get("key")
                .and_then(|k| k.as_str())
                .ok_or("manifest: probe missing `key`")?
                .to_string();
            let seconds_bits = hex_field(p, "seconds_bits")?;
            probes.push(ProbeRecord { key, seconds_bits });
        }
        Ok(Manifest {
            format,
            version,
            created_unix,
            label,
            precision,
            artifacts,
            probes,
        })
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|f| f.as_u64())
        .ok_or_else(|| format!("manifest: missing numeric field `{key}`"))
}

fn array_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], String> {
    v.get(key)
        .and_then(|f| f.as_array())
        .ok_or_else(|| format!("manifest: missing array field `{key}`"))
}

fn hex_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    let s = v
        .get(key)
        .and_then(|f| f.as_str())
        .ok_or_else(|| format!("manifest: missing hex field `{key}`"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("manifest: bad hex in `{key}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            format: FORMAT_VERSION,
            version: 7,
            created_unix: 1_722_470_400,
            label: "nightly \"retrain\"".to_string(),
            precision: "bf16".to_string(),
            artifacts: vec![
                ArtifactEntry {
                    name: "system.json".into(),
                    len: 4096,
                    fnv1a: 0xdead_beef_cafe_f00d,
                },
                ArtifactEntry {
                    name: "cache.json".into(),
                    len: 12,
                    fnv1a: 1,
                },
            ],
            probes: vec![
                ProbeRecord::from_seconds("resnet/cifar10", 0.125),
                ProbeRecord::from_seconds("vgg/imagenet", 3.5),
            ],
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let back = Manifest::from_json(&m.to_json()).expect("parse");
        assert_eq!(back, m);
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn empty_lists_round_trip() {
        let m = Manifest {
            format: FORMAT_VERSION,
            version: 1,
            created_unix: 0,
            label: String::new(),
            precision: "f32".to_string(),
            artifacts: vec![],
            probes: vec![],
        };
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn probe_seconds_exact() {
        let p = ProbeRecord::from_seconds("k", 0.1 + 0.2);
        assert_eq!(p.seconds().to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn truncated_manifest_rejected() {
        let full = sample().to_json();
        for cut in [0, 1, full.len() / 2, full.len() - 2] {
            assert!(
                Manifest::from_json(&full[..cut]).is_err(),
                "cut at {cut} should not parse"
            );
        }
    }

    #[test]
    fn missing_precision_parses_as_f32() {
        // A manifest written before the precision field existed.
        let mut m = sample();
        m.precision = "f32".to_string();
        let legacy = m.to_json().replace("  \"precision\": \"f32\",\n", "");
        assert!(!legacy.contains("precision"));
        assert_eq!(Manifest::from_json(&legacy).unwrap(), m);
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(Manifest::from_json("{}").is_err());
        assert!(Manifest::from_json("{\"format\": 1}").is_err());
    }
}
