//! The versioned store: `vNNNN/` directories under a root, recovery on
//! open, retention, and pinning.
//!
//! ## Layout
//!
//! ```text
//! <root>/
//!   v0001/
//!     manifest.json      # commit record, written last
//!     system.json        # artifacts named by the publisher
//!     cache.json
//!   v0002/ ...
//!   quarantine/
//!     v0003-torn_manifest/   # versions that failed verification on open
//! ```
//!
//! ## Commit protocol
//!
//! [`Registry::publish`] claims the next version number by atomically
//! creating the `vNNNN` directory (`create_dir` is the mutual exclusion —
//! two concurrent writers can never claim the same number), commits each
//! artifact via tempfile → fsync → rename, then writes `manifest.json`
//! the same way. The manifest rename is the commit point: a crash at any
//! earlier step leaves a directory without a verifiable manifest, which
//! [`Registry::open`] quarantines.
//!
//! ## Recovery
//!
//! `open` verifies every version end-to-end (manifest parses, format is
//! supported, every artifact exists with the recorded length and FNV-1a
//! hash) and moves failures into `quarantine/` with a reason suffix.
//! Nothing is deleted during recovery — quarantined debris stays
//! inspectable. The newest surviving version is reported as `recovered`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use pddl_telemetry::{tlog, Level};

use crate::manifest::{ArtifactEntry, Manifest, ProbeRecord, FORMAT_VERSION};
use crate::writer::{self, atomic_write, sync_parent, CrashPoint};
use crate::fnv1a;

/// File name of the per-version commit record.
pub const MANIFEST_FILE: &str = "manifest.json";
/// Subdirectory receiving versions that failed verification.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Errors from registry operations.
#[derive(Debug)]
pub enum RegistryError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A version exists but fails verification (hash/length mismatch).
    Corrupt {
        /// The version that failed verification.
        version: u64,
        /// Human-readable mismatch description.
        reason: String,
    },
    /// The requested version is not present (or was quarantined).
    NoSuchVersion(u64),
    /// The version exists but does not contain the named artifact.
    NoSuchArtifact {
        /// Version that was consulted.
        version: u64,
        /// Artifact name that was requested.
        name: String,
    },
    /// The registry has no verifiable versions.
    Empty,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry io error: {e}"),
            RegistryError::Corrupt { version, reason } => {
                write!(f, "registry version v{version} corrupt: {reason}")
            }
            RegistryError::NoSuchVersion(v) => write!(f, "registry has no version v{v}"),
            RegistryError::NoSuchArtifact { version, name } => {
                write!(f, "registry version v{version} has no artifact `{name}`")
            }
            RegistryError::Empty => write!(f, "registry has no verifiable versions"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// What [`Registry::open`] found and repaired.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Newest verifiable version, if any — the one a serving process
    /// should load.
    pub recovered: Option<u64>,
    /// Versions moved to `quarantine/`, with the verification failure.
    pub quarantined: Vec<(u64, String)>,
    /// Stray `.tmp` files swept out of otherwise-valid version dirs.
    pub swept_tmp: usize,
}

struct State {
    versions: BTreeMap<u64, Manifest>,
    pinned: BTreeSet<u64>,
}

/// A versioned artifact store rooted at one directory.
///
/// All methods take `&self`; an `Arc<Registry>` can be shared between the
/// serving threads and a reload watcher. In-process publishes are
/// serialized per handle by an internal mutex; cross-handle (or
/// cross-process) publishers stay correct because the version number is
/// claimed via atomic directory creation.
pub struct Registry {
    root: PathBuf,
    retain: usize,
    state: Mutex<State>,
}

struct Metrics {
    publishes: &'static pddl_telemetry::Counter,
    quarantined: &'static pddl_telemetry::Counter,
    collected: &'static pddl_telemetry::Counter,
    verify_failures: &'static pddl_telemetry::Counter,
    versions: &'static pddl_telemetry::Gauge,
    latest: &'static pddl_telemetry::Gauge,
    publish_latency: &'static pddl_telemetry::Histogram,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        publishes: pddl_telemetry::counter("registry.publishes"),
        quarantined: pddl_telemetry::counter("registry.quarantined"),
        collected: pddl_telemetry::counter("registry.collected"),
        verify_failures: pddl_telemetry::counter("registry.verify_failures"),
        versions: pddl_telemetry::gauge("registry.versions"),
        latest: pddl_telemetry::gauge("registry.latest_version"),
        publish_latency: pddl_telemetry::histogram("registry.publish_latency"),
    })
}

impl Registry {
    /// Opens (creating if absent) the registry at `root`, verifying every
    /// version and quarantining the ones that fail.
    ///
    /// `retain` is the retention width: after each publish, only the
    /// newest `retain` versions (plus any pinned ones) are kept.
    /// `retain == 0` disables collection entirely.
    pub fn open(
        root: impl AsRef<Path>,
        retain: usize,
    ) -> Result<(Registry, RecoveryReport), RegistryError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let mut report = RecoveryReport::default();
        let mut versions = BTreeMap::new();
        let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(v) = parse_version_dir(&name) {
                candidates.push((v, entry.path()));
            }
        }
        candidates.sort();
        for (version, dir) in candidates {
            match verify_version(&dir, version, &mut report.swept_tmp) {
                Ok(manifest) => {
                    versions.insert(version, manifest);
                }
                Err(reason) => {
                    metrics().quarantined.inc();
                    tlog!(
                        Level::Warn,
                        "registry",
                        "quarantining unverifiable version",
                        version = version,
                        reason = reason.as_str(),
                    );
                    quarantine(&root, &dir, version, &reason)?;
                    report.quarantined.push((version, reason));
                }
            }
        }
        report.recovered = versions.keys().next_back().copied();
        let reg = Registry {
            root,
            retain,
            state: Mutex::new(State {
                versions,
                pinned: BTreeSet::new(),
            }),
        };
        reg.refresh_gauges();
        Ok((reg, report))
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Re-scans the root for versions published since [`Registry::open`]
    /// (e.g. by a separate retraining process), verifying each and
    /// quarantining failures exactly like open does. Returns the newly
    /// visible version numbers, ascending. Versions already known are left
    /// untouched.
    pub fn rescan(&self) -> Result<Vec<u64>, RegistryError> {
        let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
        {
            let st = self.lock();
            for entry in fs::read_dir(&self.root)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(v) = parse_version_dir(&name) {
                    if !st.versions.contains_key(&v) {
                        candidates.push((v, entry.path()));
                    }
                }
            }
        }
        candidates.sort();
        let mut swept = 0usize;
        let mut fresh = Vec::new();
        for (version, dir) in candidates {
            match verify_version(&dir, version, &mut swept) {
                Ok(manifest) => {
                    self.lock().versions.insert(version, manifest);
                    fresh.push(version);
                }
                Err(reason) => {
                    // A concurrent publisher may still be mid-write: its
                    // directory exists but the manifest hasn't landed yet.
                    // Leave it alone — only a *failed* publish becomes
                    // debris, and open() handles that on next restart.
                    tlog!(
                        Level::Debug,
                        "registry",
                        "rescan skipping unverifiable version",
                        version = version,
                        reason = reason.as_str(),
                    );
                }
            }
        }
        if !fresh.is_empty() {
            self.refresh_gauges();
        }
        Ok(fresh)
    }

    /// Newest verifiable version, if any.
    pub fn latest(&self) -> Option<u64> {
        self.lock().versions.keys().next_back().copied()
    }

    /// All verifiable versions, ascending.
    pub fn versions(&self) -> Vec<u64> {
        self.lock().versions.keys().copied().collect()
    }

    /// The manifest of `version`, if present.
    pub fn manifest(&self, version: u64) -> Option<Manifest> {
        self.lock().versions.get(&version).cloned()
    }

    /// Currently pinned versions, ascending.
    pub fn pinned(&self) -> Vec<u64> {
        self.lock().pinned.iter().copied().collect()
    }

    /// Pins `version` so retention never collects it (e.g. because a
    /// serving process has it live).
    pub fn pin(&self, version: u64) -> Result<(), RegistryError> {
        let mut st = self.lock();
        if !st.versions.contains_key(&version) {
            return Err(RegistryError::NoSuchVersion(version));
        }
        st.pinned.insert(version);
        Ok(())
    }

    /// Removes a pin; the version becomes collectible again.
    pub fn unpin(&self, version: u64) {
        self.lock().pinned.remove(&version);
    }

    /// Publishes a new version containing `artifacts`, stamped with the
    /// current wall-clock time. Returns the committed version number.
    pub fn publish(
        &self,
        label: &str,
        artifacts: &[(String, Vec<u8>)],
        probes: &[ProbeRecord],
    ) -> Result<u64, RegistryError> {
        self.publish_precision(label, "f32", artifacts, probes)
    }

    /// [`Registry::publish`] stamping an explicit inference-precision tag
    /// (`"f32"` / `"bf16"`) into the manifest, so reloaders can restore
    /// the serving precision the version was validated at.
    pub fn publish_precision(
        &self,
        label: &str,
        precision: &str,
        artifacts: &[(String, Vec<u8>)],
        probes: &[ProbeRecord],
    ) -> Result<u64, RegistryError> {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.publish_at_precision(now, label, precision, artifacts, probes)
    }

    /// [`Registry::publish`] with an explicit `created_unix` timestamp,
    /// for deterministic tests and golden fixtures.
    pub fn publish_at(
        &self,
        created_unix: u64,
        label: &str,
        artifacts: &[(String, Vec<u8>)],
        probes: &[ProbeRecord],
    ) -> Result<u64, RegistryError> {
        self.publish_at_precision(created_unix, label, "f32", artifacts, probes)
    }

    /// [`Registry::publish_at`] with the manifest precision tag.
    pub fn publish_at_precision(
        &self,
        created_unix: u64,
        label: &str,
        precision: &str,
        artifacts: &[(String, Vec<u8>)],
        probes: &[ProbeRecord],
    ) -> Result<u64, RegistryError> {
        let start = Instant::now();
        let (version, dir) = self.claim_version()?;
        let mut entries = Vec::with_capacity(artifacts.len());
        for (name, bytes) in artifacts {
            atomic_write(&dir.join(name), bytes)?;
            entries.push(ArtifactEntry {
                name: name.clone(),
                len: bytes.len() as u64,
                fnv1a: fnv1a(bytes),
            });
        }
        let manifest = Manifest {
            format: FORMAT_VERSION,
            version,
            created_unix,
            label: label.to_string(),
            precision: precision.to_string(),
            artifacts: entries,
            probes: probes.to_vec(),
        };
        atomic_write(&dir.join(MANIFEST_FILE), manifest.to_json().as_bytes())?;
        sync_parent(&dir)?;
        {
            let mut st = self.lock();
            st.versions.insert(version, manifest);
        }
        metrics().publishes.inc();
        metrics().publish_latency.record_duration(start.elapsed());
        self.collect()?;
        self.refresh_gauges();
        tlog!(
            Level::Info,
            "registry",
            "published checkpoint",
            version = version,
            label = label,
        );
        Ok(version)
    }

    /// Simulates a publish interrupted by `crash` (for the recovery test
    /// tier): performs the staged write exactly as [`Registry::publish`]
    /// would, but stops at — or corrupts according to — the crash point,
    /// leaving the corresponding on-disk debris. The in-memory state is
    /// *not* updated, modeling process death; reopen the registry to
    /// observe recovery. Returns the version number the doomed publish
    /// had claimed.
    pub fn publish_crashing(
        &self,
        label: &str,
        artifacts: &[(String, Vec<u8>)],
        crash: CrashPoint,
    ) -> Result<u64, RegistryError> {
        let (version, dir) = self.claim_version()?;
        let mut entries = Vec::with_capacity(artifacts.len());
        for (i, (name, bytes)) in artifacts.iter().enumerate() {
            match crash {
                CrashPoint::TornTmp { artifact, keep } if artifact == i => {
                    writer::write_torn(&writer::tmp_path(&dir.join(name)), bytes, keep)?;
                    return Ok(version);
                }
                CrashPoint::TornCommitted { artifact, keep } if artifact == i => {
                    // Torn data under a completed rename: the manifest
                    // below records the intended length + hash.
                    writer::write_torn(&dir.join(name), bytes, keep)?;
                }
                _ => atomic_write(&dir.join(name), bytes)?,
            }
            entries.push(ArtifactEntry {
                name: name.clone(),
                len: bytes.len() as u64,
                fnv1a: fnv1a(bytes),
            });
        }
        if crash == CrashPoint::BeforeManifest {
            return Ok(version);
        }
        let manifest = Manifest {
            format: FORMAT_VERSION,
            version,
            created_unix: 0,
            label: label.to_string(),
            precision: "f32".to_string(),
            artifacts: entries,
            probes: Vec::new(),
        };
        let json = manifest.to_json();
        if let CrashPoint::TornManifest { keep } = crash {
            writer::write_torn(&dir.join(MANIFEST_FILE), json.as_bytes(), keep)?;
            return Ok(version);
        }
        atomic_write(&dir.join(MANIFEST_FILE), json.as_bytes())?;
        if let CrashPoint::BitFlip { artifact, offset } = crash {
            if let Some((name, _)) = artifacts.get(artifact) {
                writer::flip_bit(&dir.join(name), offset)?;
            }
        }
        Ok(version)
    }

    /// Reads an artifact from `version`, verifying its recorded length
    /// and FNV-1a hash before returning the bytes.
    pub fn read_artifact(&self, version: u64, name: &str) -> Result<Vec<u8>, RegistryError> {
        let manifest = self
            .manifest(version)
            .ok_or(RegistryError::NoSuchVersion(version))?;
        let entry = manifest
            .artifact(name)
            .ok_or_else(|| RegistryError::NoSuchArtifact {
                version,
                name: name.to_string(),
            })?;
        let bytes = fs::read(self.version_dir(version).join(name))?;
        if bytes.len() as u64 != entry.len || fnv1a(&bytes) != entry.fnv1a {
            metrics().verify_failures.inc();
            return Err(RegistryError::Corrupt {
                version,
                reason: format!(
                    "artifact `{name}`: len {} hash {:016x}, manifest says len {} hash {:016x}",
                    bytes.len(),
                    fnv1a(&bytes),
                    entry.len,
                    entry.fnv1a
                ),
            });
        }
        Ok(bytes)
    }

    /// Applies retention: keeps the newest `retain` versions plus every
    /// pinned version, removes the rest. Returns the collected versions.
    /// No-op when `retain == 0`.
    pub fn collect(&self) -> Result<Vec<u64>, RegistryError> {
        if self.retain == 0 {
            return Ok(Vec::new());
        }
        let doomed: Vec<u64> = {
            let st = self.lock();
            let keep: BTreeSet<u64> = st
                .versions
                .keys()
                .rev()
                .take(self.retain)
                .copied()
                .chain(st.pinned.iter().copied())
                .collect();
            st.versions
                .keys()
                .filter(|v| !keep.contains(v))
                .copied()
                .collect()
        };
        for v in &doomed {
            fs::remove_dir_all(self.version_dir(*v))?;
            self.lock().versions.remove(v);
            metrics().collected.inc();
        }
        if !doomed.is_empty() {
            self.refresh_gauges();
        }
        Ok(doomed)
    }

    fn version_dir(&self, version: u64) -> PathBuf {
        self.root.join(format!("v{version:04}"))
    }

    /// Claims the next version number by atomically creating its
    /// directory. Retries past concurrently-claimed numbers, so two
    /// racing publishers always get distinct, monotonically increasing
    /// versions.
    fn claim_version(&self) -> Result<(u64, PathBuf), RegistryError> {
        let mut next = self.scan_max()?.max(self.latest().unwrap_or(0)) + 1;
        loop {
            let dir = self.version_dir(next);
            match fs::create_dir(&dir) {
                Ok(()) => return Ok((next, dir)),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    next += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Highest version number present on disk, including uncommitted
    /// debris and quarantined versions — version numbers are never
    /// reused even after the directory fails verification.
    fn scan_max(&self) -> Result<u64, RegistryError> {
        let mut max = 0;
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if let Some(v) = parse_version_dir(&entry.file_name().to_string_lossy()) {
                max = max.max(v);
            }
        }
        if let Ok(entries) = fs::read_dir(self.root.join(QUARANTINE_DIR)) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                // Quarantined dirs are named `vNNNN-<reason>`.
                let prefix = name.split('-').next().unwrap_or("");
                if let Some(v) = parse_version_dir(prefix) {
                    max = max.max(v);
                }
            }
        }
        Ok(max)
    }

    fn refresh_gauges(&self) {
        let st = self.lock();
        metrics().versions.set(st.versions.len() as i64);
        metrics()
            .latest
            .set(st.versions.keys().next_back().copied().unwrap_or(0) as i64);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn parse_version_dir(name: &str) -> Option<u64> {
    let digits = name.strip_prefix('v')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Full verification of one version directory; returns its manifest or
/// the reason it fails.
fn verify_version(dir: &Path, version: u64, swept_tmp: &mut usize) -> Result<Manifest, String> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let raw = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("manifest_unreadable: {e}"))?;
    let manifest = Manifest::from_json(&raw).map_err(|e| format!("manifest_invalid: {e}"))?;
    if manifest.format > FORMAT_VERSION {
        return Err(format!("format_unsupported: {}", manifest.format));
    }
    if manifest.version != version {
        return Err(format!(
            "version_mismatch: dir v{version}, manifest v{}",
            manifest.version
        ));
    }
    for entry in &manifest.artifacts {
        let bytes =
            fs::read(dir.join(&entry.name)).map_err(|e| format!("artifact_missing: {e}"))?;
        if bytes.len() as u64 != entry.len {
            return Err(format!(
                "artifact_truncated: `{}` has {} bytes, manifest says {}",
                entry.name,
                bytes.len(),
                entry.len
            ));
        }
        if fnv1a(&bytes) != entry.fnv1a {
            return Err(format!("artifact_hash_mismatch: `{}`", entry.name));
        }
    }
    // Valid version: sweep any stray tempfiles a past failed writer left.
    if let Ok(entries) = fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") && fs::remove_file(e.path()).is_ok() {
                *swept_tmp += 1;
            }
        }
    }
    Ok(manifest)
}

/// Moves an unverifiable version directory into `quarantine/` with a
/// short reason suffix. Never deletes anything.
fn quarantine(root: &Path, dir: &Path, version: u64, reason: &str) -> Result<(), RegistryError> {
    let qdir = root.join(QUARANTINE_DIR);
    fs::create_dir_all(&qdir)?;
    let short: String = reason
        .split(':')
        .next()
        .unwrap_or("unknown")
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let mut target = qdir.join(format!("v{version:04}-{short}"));
    let mut suffix = 1;
    while target.exists() {
        suffix += 1;
        target = qdir.join(format!("v{version:04}-{short}-{suffix}"));
    }
    fs::rename(dir, &target)?;
    // Marker file so an operator can see the full failure without logs.
    let mut f = File::create(target.join("QUARANTINE_REASON"))?;
    writeln!(f, "{reason}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn unique_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "pddl-registry-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn arts(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("part{i}.bin"),
                    (0..64u8).map(|b| b.wrapping_add(i as u8)).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn publish_and_reopen() {
        let root = unique_root("roundtrip");
        let (reg, _) = Registry::open(&root, 0).unwrap();
        let v1 = reg.publish("one", &arts(2), &[]).unwrap();
        let v2 = reg.publish("two", &arts(2), &[]).unwrap();
        assert_eq!((v1, v2), (1, 2));
        drop(reg);
        let (reg, report) = Registry::open(&root, 0).unwrap();
        assert_eq!(report.recovered, Some(2));
        assert!(report.quarantined.is_empty());
        assert_eq!(reg.versions(), vec![1, 2]);
        assert_eq!(reg.read_artifact(1, "part0.bin").unwrap(), arts(2)[0].1);
        assert_eq!(reg.manifest(2).unwrap().label, "two");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn every_crash_point_is_recovered_from() {
        let artifacts = arts(3);
        let crashes = [
            CrashPoint::TornTmp {
                artifact: 1,
                keep: 10,
            },
            CrashPoint::BeforeManifest,
            CrashPoint::TornManifest { keep: 20 },
            CrashPoint::TornCommitted {
                artifact: 2,
                keep: 5,
            },
            CrashPoint::BitFlip {
                artifact: 0,
                offset: 7,
            },
        ];
        for crash in crashes {
            let root = unique_root("crash");
            let (reg, _) = Registry::open(&root, 0).unwrap();
            let good = reg.publish("good", &artifacts, &[]).unwrap();
            let doomed = reg.publish_crashing("doomed", &artifacts, crash).unwrap();
            assert!(doomed > good);
            drop(reg);
            let (reg, report) = Registry::open(&root, 0).unwrap();
            assert_eq!(
                report.recovered,
                Some(good),
                "{crash:?} must not mask the last good version"
            );
            assert_eq!(reg.versions(), vec![good], "{crash:?}");
            // TornTmp and BeforeManifest leave a dir with no manifest;
            // the rest leave a manifest that fails verification. All are
            // quarantined, never deleted.
            assert_eq!(report.quarantined.len(), 1, "{crash:?}");
            assert_eq!(report.quarantined[0].0, doomed);
            let q = root.join(QUARANTINE_DIR);
            assert_eq!(fs::read_dir(&q).unwrap().count(), 1, "{crash:?}");
            // Version numbers are never reused past quarantined debris.
            let next = reg.publish("after", &artifacts, &[]).unwrap();
            assert!(next > doomed, "{crash:?}: {next} <= {doomed}");
            fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn read_artifact_detects_post_open_corruption() {
        let root = unique_root("latent");
        let (reg, _) = Registry::open(&root, 0).unwrap();
        let v = reg.publish("x", &arts(1), &[]).unwrap();
        // Corrupt after open: verification happens again at read time.
        writer::flip_bit(&root.join(format!("v{v:04}")).join("part0.bin"), 3).unwrap();
        match reg.read_artifact(v, "part0.bin") {
            Err(RegistryError::Corrupt { version, .. }) => assert_eq!(version, v),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rescan_picks_up_external_publishes() {
        let root = unique_root("rescan");
        let (reg, _) = Registry::open(&root, 4).unwrap();
        reg.publish("a", &arts(1), &[]).unwrap();

        // A second handle over the same root models an external retrainer
        // process publishing behind our back.
        let (other, _) = Registry::open(&root, 4).unwrap();
        let v2 = other.publish("b", &arts(2), &[]).unwrap();

        assert_eq!(reg.latest(), Some(1), "first handle has not seen v2 yet");
        assert_eq!(reg.rescan().unwrap(), vec![v2]);
        assert_eq!(reg.latest(), Some(v2));
        assert!(reg.read_artifact(v2, "part1.bin").is_ok());
        assert_eq!(reg.rescan().unwrap(), Vec::<u64>::new(), "idempotent");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn retention_keeps_last_k_and_pinned() {
        let root = unique_root("retain");
        let (reg, _) = Registry::open(&root, 2).unwrap();
        let v1 = reg.publish("a", &arts(1), &[]).unwrap();
        reg.pin(v1).unwrap();
        for label in ["b", "c", "d", "e"] {
            reg.publish(label, &arts(1), &[]).unwrap();
        }
        // Keep newest 2 (v4, v5) plus pinned v1.
        assert_eq!(reg.versions(), vec![1, 4, 5]);
        assert!(root.join("v0001").exists());
        assert!(!root.join("v0002").exists());
        reg.unpin(v1);
        reg.publish("f", &arts(1), &[]).unwrap();
        assert_eq!(reg.versions(), vec![5, 6]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn pin_missing_version_fails() {
        let root = unique_root("pinmiss");
        let (reg, _) = Registry::open(&root, 0).unwrap();
        assert!(matches!(
            reg.pin(9),
            Err(RegistryError::NoSuchVersion(9))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn concurrent_publishers_get_unique_monotonic_versions() {
        let root = unique_root("concurrent");
        let (reg, _) = Registry::open(&root, 0).unwrap();
        let reg = Arc::new(reg);
        let mut handles = Vec::new();
        for t in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..8 {
                    let before = reg.latest().unwrap_or(0);
                    let v = reg
                        .publish(&format!("t{t}-{i}"), &arts(1), &[])
                        .unwrap();
                    assert!(v > before, "published {v} not above {before}");
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let deduped: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(deduped.len(), all.len(), "duplicate version numbers");
        assert_eq!(all, (1..=32).collect::<Vec<u64>>());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn seeded_crash_plans_always_recover() {
        // The acceptance loop in miniature: for every seed, the derived
        // crash leaves debris that open() must route around.
        let artifacts = arts(2);
        for seed in 0..32 {
            let root = unique_root("seeded");
            let (reg, _) = Registry::open(&root, 0).unwrap();
            let good = reg.publish("good", &artifacts, &[]).unwrap();
            let crash = crate::CrashPlan::new(seed).pick(&artifacts);
            reg.publish_crashing("doomed", &artifacts, crash).unwrap();
            drop(reg);
            let (reg, report) = Registry::open(&root, 0).unwrap();
            assert_eq!(report.recovered, Some(good), "seed {seed} ({crash:?})");
            assert_eq!(reg.versions(), vec![good], "seed {seed} ({crash:?})");
            fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn probes_survive_round_trip() {
        let root = unique_root("probes");
        let (reg, _) = Registry::open(&root, 0).unwrap();
        let probes = vec![
            ProbeRecord::from_seconds("w0", 1.5),
            ProbeRecord::from_seconds("w1", 0.001953125),
        ];
        let v = reg.publish("p", &arts(1), &probes).unwrap();
        drop(reg);
        let (reg, _) = Registry::open(&root, 0).unwrap();
        assert_eq!(reg.manifest(v).unwrap().probes, probes);
        fs::remove_dir_all(&root).unwrap();
    }
}
