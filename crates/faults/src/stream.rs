//! `Read`/`Write` wrappers that apply a [`FaultSchedule`] to any inner
//! transport.

use crate::plan::FaultPlan;
use crate::rng::FaultRng;
use pddl_telemetry::Counter;
use std::io::{Read, Write};
use std::sync::OnceLock;
use std::time::Duration;

/// Which half of a stream a schedule drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Faults injected into reads.
    Read,
    /// Faults injected into writes.
    Write,
}

/// One injected fault, recorded in the schedule's log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Slept for this many milliseconds before the operation.
    Delay(u64),
    /// The operation failed with `ConnectionReset`; the stream is dead.
    Reset,
    /// Only this many bytes of the write were sent before the stream died.
    TruncatedWrite(usize),
    /// This many bytes of the payload were corrupted.
    Garbage(usize),
    /// The write was swallowed whole (claimed successful, nothing sent).
    DroppedWrite,
}

/// An injected fault together with the operation index it fired on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// 0-based index of the read/write operation on this schedule.
    pub op: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// Fault-injection metric handles, resolved once.
struct Metrics {
    delays: &'static Counter,
    resets: &'static Counter,
    truncated_writes: &'static Counter,
    garbage: &'static Counter,
    dropped_writes: &'static Counter,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        delays: pddl_telemetry::counter("faults.injected_delays"),
        resets: pddl_telemetry::counter("faults.injected_resets"),
        truncated_writes: pddl_telemetry::counter("faults.truncated_writes"),
        garbage: pddl_telemetry::counter("faults.garbage_injections"),
        dropped_writes: pddl_telemetry::counter("faults.dropped_writes"),
    })
}

/// The per-direction fault decision stream: a PRNG plus the plan's
/// probabilities, an operation counter, and a log of everything injected.
#[derive(Clone, Debug)]
pub struct FaultSchedule {
    plan: FaultPlan,
    rng: FaultRng,
    op: u64,
    dead: bool,
    log: Vec<FaultEvent>,
}

/// The decision drawn for one operation (before applicability filtering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    None,
    Delay(u64),
    Reset,
    Truncate,
    Garbage,
    Drop,
}

impl FaultSchedule {
    /// A schedule driven by `rng` under `plan`'s probabilities. Prefer
    /// [`FaultPlan::schedule`], which derives the RNG deterministically.
    pub fn new(plan: FaultPlan, rng: FaultRng) -> Self {
        Self { plan, rng, op: 0, dead: false, log: Vec::new() }
    }

    /// Everything injected so far, in operation order.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// True once a reset or truncation has killed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    #[cfg(test)]
    pub(crate) fn draw_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Draws the decision for the next operation. Exactly two RNG draws per
    /// call (decision + parameter), so the decision sequence is independent
    /// of which faults end up applicable to the direction.
    fn decide(&mut self) -> Decision {
        let r = self.rng.next_f64();
        let aux = self.rng.next_u64();
        let p = &self.plan;
        let mut edge = p.p_delay;
        if r < edge {
            return Decision::Delay(1 + aux % p.max_delay_ms.max(1));
        }
        edge += p.p_reset;
        if r < edge {
            return Decision::Reset;
        }
        edge += p.p_truncate;
        if r < edge {
            return Decision::Truncate;
        }
        edge += p.p_garbage;
        if r < edge {
            return Decision::Garbage;
        }
        edge += p.p_drop;
        if r < edge {
            return Decision::Drop;
        }
        Decision::None
    }

    fn record(&mut self, kind: FaultKind) {
        self.log.push(FaultEvent { op: self.op, kind });
    }

    fn reset_error(&mut self) -> std::io::Error {
        self.dead = true;
        std::io::Error::new(std::io::ErrorKind::ConnectionReset, "injected connection reset")
    }

    /// Corrupts up to 4 bytes of `data` in place; returns how many.
    fn corrupt(&mut self, data: &mut [u8]) -> usize {
        if data.is_empty() {
            return 0;
        }
        let n = 1 + self.rng.below(4.min(data.len() as u64));
        for _ in 0..n {
            let i = self.rng.below(data.len() as u64) as usize;
            data[i] = self.rng.byte();
        }
        n as usize
    }
}

/// A fault-injecting [`Read`] wrapper.
pub struct FaultyRead<R> {
    inner: R,
    sched: FaultSchedule,
}

impl<R: Read> FaultyRead<R> {
    /// Wraps `inner` under `sched` (usually
    /// `plan.schedule(conn, Direction::Read)`).
    pub fn new(inner: R, sched: FaultSchedule) -> Self {
        Self { inner, sched }
    }

    /// The faults injected so far on this half.
    pub fn log(&self) -> &[FaultEvent] {
        self.sched.log()
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let m = metrics();
        if self.sched.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "stream killed by injected fault",
            ));
        }
        let decision = self.sched.decide();
        match decision {
            Decision::Delay(ms) => {
                self.sched.record(FaultKind::Delay(ms));
                m.delays.inc();
                std::thread::sleep(Duration::from_millis(ms));
            }
            Decision::Reset => {
                self.sched.record(FaultKind::Reset);
                m.resets.inc();
                let e = self.sched.reset_error();
                self.sched.op += 1;
                return Err(e);
            }
            _ => {}
        }
        let n = self.inner.read(buf)?;
        if decision == Decision::Garbage && n > 0 {
            let corrupted = self.sched.corrupt(&mut buf[..n]);
            self.sched.record(FaultKind::Garbage(corrupted));
            m.garbage.inc();
        }
        self.sched.op += 1;
        Ok(n)
    }
}

/// A fault-injecting [`Write`] wrapper.
pub struct FaultyWrite<W> {
    inner: W,
    sched: FaultSchedule,
}

impl<W: Write> FaultyWrite<W> {
    /// Wraps `inner` under `sched` (usually
    /// `plan.schedule(conn, Direction::Write)`).
    pub fn new(inner: W, sched: FaultSchedule) -> Self {
        Self { inner, sched }
    }

    /// The faults injected so far on this half.
    pub fn log(&self) -> &[FaultEvent] {
        self.sched.log()
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let m = metrics();
        if self.sched.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "stream killed by injected fault",
            ));
        }
        let decision = self.sched.decide();
        let result = match decision {
            Decision::Delay(ms) => {
                self.sched.record(FaultKind::Delay(ms));
                m.delays.inc();
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.write(buf)
            }
            Decision::Reset => {
                self.sched.record(FaultKind::Reset);
                m.resets.inc();
                Err(self.sched.reset_error())
            }
            Decision::Truncate if !buf.is_empty() => {
                // Send a strict prefix, then kill the stream: the peer sees
                // a frame cut off mid-line followed by a reset.
                let keep = (self.sched.rng.below(buf.len() as u64) as usize).min(buf.len() - 1);
                self.sched.record(FaultKind::TruncatedWrite(keep));
                m.truncated_writes.inc();
                let r = if keep > 0 { self.inner.write_all(&buf[..keep]) } else { Ok(()) };
                let _ = self.inner.flush();
                self.sched.dead = true;
                match r {
                    // Claim partial progress; the very next write fails.
                    Ok(()) => Ok(keep.max(1)),
                    Err(e) => Err(e),
                }
            }
            Decision::Garbage if !buf.is_empty() => {
                let mut copy = buf.to_vec();
                let corrupted = self.sched.corrupt(&mut copy);
                self.sched.record(FaultKind::Garbage(corrupted));
                m.garbage.inc();
                self.inner.write_all(&copy).map(|()| buf.len())
            }
            Decision::Drop => {
                self.sched.record(FaultKind::DroppedWrite);
                m.dropped_writes.inc();
                Ok(buf.len())
            }
            _ => self.inner.write(buf),
        };
        self.sched.op += 1;
        result
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.sched.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "stream killed by injected fault",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hostile_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            p_delay: 0.05,
            max_delay_ms: 1,
            p_reset: 0.1,
            p_truncate: 0.1,
            p_garbage: 0.2,
            p_drop: 0.2,
        }
    }

    /// Drives a write schedule through a fixed op sequence; returns the log.
    fn drive_writes(plan: &FaultPlan, conn: u64, ops: usize) -> Vec<FaultEvent> {
        let mut w = FaultyWrite::new(Vec::new(), plan.schedule(conn, Direction::Write));
        for i in 0..ops {
            let payload = vec![b'a' + (i % 26) as u8; 16];
            let _ = w.write(&payload);
        }
        w.log().to_vec()
    }

    #[test]
    fn same_seed_reproduces_fault_sequence_exactly() {
        let plan = hostile_plan(0xFEED);
        let a = drive_writes(&plan, 3, 200);
        let b = drive_writes(&plan, 3, 200);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "hostile plan injected nothing in 200 ops");
    }

    #[test]
    fn different_seeds_differ() {
        let a = drive_writes(&hostile_plan(1), 0, 200);
        let b = drive_writes(&hostile_plan(2), 0, 200);
        assert_ne!(a, b);
    }

    #[test]
    fn reset_kills_read_stream() {
        let plan = FaultPlan { p_reset: 1.0, p_delay: 0.0, p_truncate: 0.0, p_garbage: 0.0, p_drop: 0.0, ..FaultPlan::default() };
        let mut r = FaultyRead::new(std::io::Cursor::new(vec![1u8; 64]), plan.schedule(0, Direction::Read));
        let mut buf = [0u8; 16];
        let e = r.read(&mut buf).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset);
        let e2 = r.read(&mut buf).unwrap_err();
        assert_eq!(e2.kind(), std::io::ErrorKind::ConnectionReset);
        assert_eq!(r.log(), &[FaultEvent { op: 0, kind: FaultKind::Reset }]);
    }

    #[test]
    fn dropped_write_claims_success_but_sends_nothing() {
        let plan = FaultPlan { p_drop: 1.0, p_delay: 0.0, p_reset: 0.0, p_truncate: 0.0, p_garbage: 0.0, ..FaultPlan::default() };
        let mut w = FaultyWrite::new(Vec::new(), plan.schedule(0, Direction::Write));
        assert_eq!(w.write(b"hello\n").expect("claimed ok"), 6);
        assert!(w.inner.is_empty());
    }

    #[test]
    fn truncated_write_sends_strict_prefix_then_dies() {
        let plan = FaultPlan { p_truncate: 1.0, p_delay: 0.0, p_reset: 0.0, p_garbage: 0.0, p_drop: 0.0, ..FaultPlan::default() };
        let mut w = FaultyWrite::new(Vec::new(), plan.schedule(0, Direction::Write));
        let payload = b"0123456789abcdef";
        let _ = w.write(payload).expect("first write reports progress");
        assert!(w.inner.len() < payload.len());
        let e = w.write(payload).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn garbage_corrupts_read_bytes() {
        let plan = FaultPlan { p_garbage: 1.0, p_delay: 0.0, p_reset: 0.0, p_truncate: 0.0, p_drop: 0.0, ..FaultPlan::default() };
        let original = vec![0u8; 256];
        let mut r = FaultyRead::new(std::io::Cursor::new(original.clone()), plan.schedule(0, Direction::Read));
        let mut buf = vec![0xAAu8; 256];
        let n = r.read(&mut buf).expect("read ok");
        assert!(n > 0);
        assert_ne!(&buf[..n], &original[..n], "garbage fault left payload intact");
    }

    #[test]
    fn clean_plan_is_transparent() {
        let plan = FaultPlan { p_delay: 0.0, p_reset: 0.0, p_truncate: 0.0, p_garbage: 0.0, p_drop: 0.0, ..FaultPlan::default() };
        let mut w = FaultyWrite::new(Vec::new(), plan.schedule(0, Direction::Write));
        w.write_all(b"abc").expect("write");
        w.flush().expect("flush");
        assert_eq!(w.inner, b"abc");
        let mut r = FaultyRead::new(std::io::Cursor::new(b"xyz".to_vec()), plan.schedule(0, Direction::Read));
        let mut out = Vec::new();
        r.read_to_end(&mut out).expect("read");
        assert_eq!(out, b"xyz");
        assert!(r.log().is_empty() && w.log().is_empty());
    }
}
