//! The fault *plan*: a seed plus per-operation fault probabilities, parsed
//! from a compact spec string so the same chaos schedule can be named on a
//! CLI flag, an env var, or in a test.

use crate::rng::FaultRng;
use crate::stream::{Direction, FaultSchedule};

/// Environment variable holding the active fault-plan spec. When set (and
/// parseable), the controller and collector wrap every accepted connection
/// in [`crate::FaultyRead`]/[`crate::FaultyWrite`].
pub const FAULT_PLAN_ENV: &str = "PDDL_FAULT_PLAN";

/// A seed-deterministic schedule of wire faults.
///
/// Probabilities are per read/write operation on a wrapped stream and are
/// consulted in a fixed order (delay, reset, truncate, garbage, drop), so
/// the injected-fault sequence is a pure function of `(seed, connection,
/// direction, operation index)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Base seed; every connection derives its own stream from it.
    pub seed: u64,
    /// Probability of an injected delay before the operation.
    pub p_delay: f64,
    /// Upper bound on an injected delay, milliseconds (uniform in
    /// `[1, max]`).
    pub max_delay_ms: u64,
    /// Probability of a simulated connection reset (the operation fails
    /// with `ConnectionReset` and the stream is dead thereafter).
    pub p_reset: f64,
    /// Probability of a truncated write: a prefix is written, then the
    /// stream dies (reads are unaffected by this fault).
    pub p_truncate: f64,
    /// Probability of garbage-byte corruption of the data read or written.
    pub p_garbage: f64,
    /// Probability that a write is silently swallowed (claimed successful,
    /// nothing sent) — a dropped response frame.
    pub p_drop: f64,
}

impl Default for FaultPlan {
    /// A moderately hostile default: every fault class enabled at a few
    /// percent, delays capped at 5 ms.
    fn default() -> Self {
        Self {
            seed: 0,
            p_delay: 0.05,
            max_delay_ms: 5,
            p_reset: 0.02,
            p_truncate: 0.02,
            p_garbage: 0.03,
            p_drop: 0.03,
        }
    }
}

impl FaultPlan {
    /// Parses a spec like
    /// `seed=42,delay=0.05:5,reset=0.02,truncate=0.02,garbage=0.03,drop=0.03`.
    ///
    /// Every key is optional (missing keys keep the [`Default`] value);
    /// `delay` takes `prob` or `prob:max_ms`. Probabilities must lie in
    /// `[0, 1]` and sum to at most 1.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry '{part}' is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault-plan '{key}': '{v}' is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault-plan '{key}': {p} outside [0, 1]"));
                }
                Ok(p)
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault-plan seed '{value}' is not a u64"))?;
                }
                "delay" => match value.split_once(':') {
                    Some((p, ms)) => {
                        plan.p_delay = prob(p.trim())?;
                        plan.max_delay_ms = ms
                            .trim()
                            .parse()
                            .map_err(|_| format!("fault-plan delay bound '{ms}' is not a u64"))?;
                    }
                    None => plan.p_delay = prob(value.trim())?,
                },
                "reset" => plan.p_reset = prob(value.trim())?,
                "truncate" => plan.p_truncate = prob(value.trim())?,
                "garbage" => plan.p_garbage = prob(value.trim())?,
                "drop" => plan.p_drop = prob(value.trim())?,
                other => return Err(format!("unknown fault-plan key '{other}'")),
            }
        }
        let total = plan.p_delay + plan.p_reset + plan.p_truncate + plan.p_garbage + plan.p_drop;
        if total > 1.0 {
            return Err(format!("fault probabilities sum to {total:.3} > 1"));
        }
        Ok(plan)
    }

    /// Renders the plan back into the spec syntax accepted by
    /// [`FaultPlan::parse`] (useful for logging a reproducible schedule).
    pub fn to_spec(&self) -> String {
        format!(
            "seed={},delay={}:{},reset={},truncate={},garbage={},drop={}",
            self.seed,
            self.p_delay,
            self.max_delay_ms,
            self.p_reset,
            self.p_truncate,
            self.p_garbage,
            self.p_drop,
        )
    }

    /// Reads [`FAULT_PLAN_ENV`]. `Ok(None)` when unset or empty; `Err` on
    /// a present-but-unparseable spec so misconfigurations surface instead
    /// of silently disabling chaos.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// The deterministic fault schedule for one direction of one
    /// connection. Connections are numbered by the server in accept order;
    /// the two directions of a connection evolve independently, so the
    /// sequence of injected faults per direction depends only on
    /// `(seed, conn, dir)` and the operation count — not on how reads and
    /// writes interleave.
    pub fn schedule(&self, conn: u64, dir: Direction) -> FaultSchedule {
        let dir_salt = match dir {
            Direction::Read => 0x52_45_41_44,  // "READ"
            Direction::Write => 0x57_52_49_54, // "WRIT"
        };
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(conn.wrapping_mul(0xD134_2543_DE82_EF95))
            ^ dir_salt;
        FaultSchedule::new(*self, FaultRng::new(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("seed=42,delay=0.1:7,reset=0.01,truncate=0.02,garbage=0.03,drop=0.04")
            .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.max_delay_ms, 7);
        assert!((p.p_delay - 0.1).abs() < 1e-12);
        assert!((p.p_drop - 0.04).abs() < 1e-12);
    }

    #[test]
    fn parse_partial_keeps_defaults() {
        let p = FaultPlan::parse("seed=7").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.max_delay_ms, FaultPlan::default().max_delay_ms);
    }

    #[test]
    fn spec_round_trips() {
        let p = FaultPlan::parse("seed=9,delay=0.25:3,reset=0.125,garbage=0.0625").unwrap();
        let q = FaultPlan::parse(&p.to_spec()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("reset=1.5").is_err());
        assert!(FaultPlan::parse("unknown=1").is_err());
        assert!(FaultPlan::parse("reset=0.5,drop=0.6").is_err());
    }

    #[test]
    fn schedules_differ_by_conn_and_dir() {
        let p = FaultPlan { seed: 1, ..FaultPlan::default() };
        let mut a = p.schedule(0, Direction::Read);
        let mut b = p.schedule(1, Direction::Read);
        let mut c = p.schedule(0, Direction::Write);
        let sa: Vec<_> = (0..64).map(|_| a.draw_u64()).collect();
        let sb: Vec<_> = (0..64).map(|_| b.draw_u64()).collect();
        let sc: Vec<_> = (0..64).map(|_| c.draw_u64()).collect();
        assert_ne!(sa, sb);
        assert_ne!(sa, sc);
    }
}
