//! xoshiro256** — the workhorse PRNG of the fault layer. Chosen over the
//! workspace's `pddl_tensor::Rng` so this crate stays leaf-level (telemetry
//! only) and any transport crate can wear it without a tensor dependency.

/// xoshiro256** seeded through SplitMix64, as recommended by the xoshiro
/// authors so that low-entropy seeds (0, 1, 2 …) still produce well-mixed
/// initial state.
#[derive(Clone, Debug)]
pub struct FaultRng {
    s: [u64; 4],
}

impl FaultRng {
    /// Seeds the generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift range reduction (Lemire); the slight modulo bias of
        // plain `%` would be invisible here, but this is branch-free too.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// One random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultRng::new(1);
        let mut b = FaultRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = FaultRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = FaultRng::new(9);
        for n in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(n) < n);
            }
        }
        assert_eq!(r.below(0), 0);
    }
}
