//! # pddl-faults
//!
//! Deterministic fault injection for the PredictDDL wire layer.
//!
//! A [`FaultPlan`] is a seed plus per-operation probabilities for five
//! fault classes — delays, connection resets, truncated writes,
//! garbage-byte corruption, and silently dropped writes. From a plan, each
//! connection derives an independent, fully deterministic [`FaultSchedule`]
//! per direction; [`FaultyRead`]/[`FaultyWrite`] apply that schedule to any
//! `Read`/`Write` transport.
//!
//! Determinism is the point: the same `(plan seed, connection number,
//! direction)` triple reproduces the same injected-fault sequence
//! byte-for-byte, so a soak-test failure log names everything needed to
//! replay it (see `TESTING.md`).
//!
//! The controller and the cluster resource collector consult
//! [`FaultPlan::from_env`] (`PDDL_FAULT_PLAN`) when they start serving and
//! wrap every accepted connection when a plan is set, so integration tests
//! and the CLI can run identical chaos schedules.
//!
//! Every injected fault is counted in `pddl-telemetry`
//! (`faults.injected_delays`, `faults.injected_resets`,
//! `faults.truncated_writes`, `faults.garbage_injections`,
//! `faults.dropped_writes`) and is therefore visible in the controller's
//! `{"op":"stats"}` snapshot.
//!
//! Built on `std` plus `pddl-telemetry` only, so every transport crate in
//! the workspace can wear it without weight.

#![warn(missing_docs)]

mod plan;
mod rng;
mod stream;

pub use plan::{FaultPlan, FAULT_PLAN_ENV};
pub use rng::FaultRng;
pub use stream::{Direction, FaultEvent, FaultKind, FaultSchedule, FaultyRead, FaultyWrite};
