//! Trace-generation utility: dumps the execution trace the offline trainer
//! consumes as JSON lines, for inspection or external tooling.
//!
//! ```text
//! tracegen [--models resnet18,vgg16] [--datasets cifar10] \
//!          [--max-servers 20] [--epochs 10] [--out trace.jsonl]
//! ```

use pddl_ddlsim::trace::{generate_trace, trace_to_jsonl, TraceConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = TraceConfig::default();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--models" if i + 1 < args.len() => {
                cfg.models = args[i + 1].split(',').map(|s| s.trim().to_string()).collect();
                i += 2;
            }
            "--datasets" if i + 1 < args.len() => {
                let keep: Vec<String> =
                    args[i + 1].split(',').map(|s| s.trim().to_lowercase()).collect();
                cfg.dataset_clusters.retain(|(d, _)| keep.contains(d));
                i += 2;
            }
            "--max-servers" if i + 1 < args.len() => {
                let n: usize = match args[i + 1].parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--max-servers must be a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
                cfg.server_counts = (1..=n).collect();
                i += 2;
            }
            "--epochs" if i + 1 < args.len() => {
                cfg.epochs = args[i + 1].parse().unwrap_or(cfg.epochs);
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if cfg.dataset_clusters.is_empty() {
        eprintln!("no datasets selected");
        return ExitCode::FAILURE;
    }
    let records = generate_trace(&cfg);
    eprintln!("generated {} records", records.len());
    let jsonl = trace_to_jsonl(&records);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, jsonl) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{jsonl}"),
    }
    ExitCode::SUCCESS
}
