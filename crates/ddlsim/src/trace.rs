//! Execution-trace generation — the stand-in for the paper's 2,000 data
//! points collected "by training each DL model by using 1–20 high-end
//! servers" (§IV-A2).

use crate::simulate::{SimConfig, Simulator};
use crate::workload::Workload;
use pddl_cluster::{ClusterState, ServerClass};
use pddl_zoo::model_names;
use serde::{Deserialize, Serialize};

/// One collected measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    pub workload: Workload,
    /// Server class the cluster was built from.
    pub server_class: ServerClass,
    pub num_servers: usize,
    /// Measured wall-clock training time, seconds (noisy).
    pub time_secs: f64,
    /// Noise-free expectation (kept for diagnostics; predictors never see it).
    pub expected_secs: f64,
}

impl TraceRecord {
    /// Rebuilds the cluster this record was measured on.
    pub fn cluster(&self) -> ClusterState {
        ClusterState::homogeneous(self.server_class, self.num_servers)
    }
}

/// Trace-generation parameters.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Models to include (defaults to the full 31-model zoo).
    pub models: Vec<String>,
    /// (dataset, server class) pairs. The paper trains CIFAR-10 workloads on
    /// the GPU servers and Tiny-ImageNet on CPU servers (§IV-B2 discussion).
    pub dataset_clusters: Vec<(String, ServerClass)>,
    /// Cluster sizes to sweep.
    pub server_counts: Vec<usize>,
    /// Per-worker batch sizes to sweep.
    pub batch_sizes: Vec<usize>,
    /// Epochs per training run.
    pub epochs: usize,
    pub sim: SimConfig,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            models: model_names().iter().map(|s| s.to_string()).collect(),
            dataset_clusters: vec![
                ("cifar10".into(), ServerClass::GpuP100),
                ("tiny-imagenet".into(), ServerClass::CpuE5_2630),
            ],
            server_counts: (1..=20).collect(),
            batch_sizes: vec![64, 128],
            epochs: 10,
            sim: SimConfig::default(),
        }
    }
}

impl TraceConfig {
    /// Smaller sweep for fast tests.
    pub fn small() -> Self {
        Self {
            models: vec!["resnet18".into(), "vgg16".into(), "squeezenet1_1".into()],
            dataset_clusters: vec![("cifar10".into(), ServerClass::GpuP100)],
            server_counts: vec![1, 2, 4, 8],
            batch_sizes: vec![128],
            epochs: 2,
            sim: SimConfig::default(),
        }
    }
}

/// Generates the full execution trace, fanning configurations out across
/// the [`pddl_par`] work pool (order-preserving, so the trace is identical
/// to a serial sweep). Configurations that fail (e.g. OOM at small cluster
/// sizes) are skipped, exactly as failed testbed runs would be.
pub fn generate_trace(cfg: &TraceConfig) -> Vec<TraceRecord> {
    let sim = Simulator::new(cfg.sim);
    let mut jobs = Vec::new();
    for model in &cfg.models {
        for (dataset, class) in &cfg.dataset_clusters {
            for &n in &cfg.server_counts {
                for &b in &cfg.batch_sizes {
                    jobs.push((model.clone(), dataset.clone(), *class, n, b));
                }
            }
        }
    }
    pddl_par::par_filter_map(&jobs, |(model, dataset, class, n, b)| {
        let w = Workload::new(model, dataset, *b, cfg.epochs);
        let cluster = ClusterState::homogeneous(*class, *n);
        let expected = sim.expected_time(&w, &cluster).ok()?;
        let time = sim.measure(&w, &cluster, 0).ok()?;
        Some(TraceRecord {
            workload: w,
            server_class: *class,
            num_servers: *n,
            time_secs: time,
            expected_secs: expected,
        })
    })
}

/// Serializes a trace to JSON lines.
pub fn trace_to_jsonl(records: &[TraceRecord]) -> String {
    records
        .iter()
        .map(|r| serde_json::to_string(r).expect("trace serializes"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parses a JSON-lines trace.
pub fn trace_from_jsonl(s: &str) -> Result<Vec<TraceRecord>, serde_json::Error> {
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_trace_generates_all_configs() {
        let t = generate_trace(&TraceConfig::small());
        // 3 models × 1 dataset × 4 sizes × 1 batch = 12.
        assert_eq!(t.len(), 12);
        assert!(t.iter().all(|r| r.time_secs > 0.0));
    }

    #[test]
    fn full_trace_matches_paper_scale() {
        // The paper's trace has 2,000 points from 31 models × 1–20 servers.
        let cfg = TraceConfig::default();
        let t = generate_trace(&cfg);
        assert!(
            (1800..=2600).contains(&t.len()),
            "expected a paper-scale trace, got {}",
            t.len()
        );
    }

    #[test]
    fn trace_round_trips_jsonl() {
        let t = generate_trace(&TraceConfig::small());
        let s = trace_to_jsonl(&t);
        let t2 = trace_from_jsonl(&s).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn records_rebuild_their_cluster() {
        let t = generate_trace(&TraceConfig::small());
        let r = &t[0];
        let c = r.cluster();
        assert_eq!(c.num_servers(), r.num_servers);
    }

    #[test]
    fn noise_keeps_measurements_near_expectation() {
        let t = generate_trace(&TraceConfig::small());
        for r in &t {
            let ratio = r.time_secs / r.expected_secs;
            assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
        }
    }
}
