//! Closed-form cost components of one training iteration.

/// Ring all-reduce time for `param_count` f32 gradients across `n` workers:
/// `2(n−1)/n · bytes / bandwidth + 2(n−1) · latency` (bandwidth-optimal ring,
/// the algorithm NCCL/Gloo use and PyTorch DDP rides on).
pub fn ring_allreduce_secs(param_count: u64, n: usize, min_bw_bps: f64, latency_s: f64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let bytes = param_count as f64 * 4.0;
    let steps = 2.0 * (n as f64 - 1.0);
    steps / n as f64 * bytes / min_bw_bps + steps * latency_s
}

/// Per-worker NFS read time for one iteration. All `n` clients share one
/// NFS server; client-side caching and read-ahead soften the contention, so
/// the effective per-client share degrades as `n^0.7` rather than `n`.
pub fn nfs_load_secs(bytes_per_worker_iter: f64, n: usize, nfs_bps: f64) -> f64 {
    let share = nfs_bps / (n.max(1) as f64).powf(0.7);
    bytes_per_worker_iter / share
}

/// Forward+backward compute time for one worker's micro-batch. The factor 3
/// is the standard fwd:bwd ≈ 1:2 rule.
pub fn compute_secs(
    flops_per_example: f64,
    batch_per_worker: usize,
    peak_flops: f64,
    efficiency: f64,
) -> f64 {
    assert!(peak_flops > 0.0 && efficiency > 0.0, "degenerate device");
    3.0 * flops_per_example * batch_per_worker as f64 / (peak_flops * efficiency)
}

/// Job startup overhead: process launch, NCCL/Gloo rendezvous, dataset
/// indexing. Grows mildly with cluster size.
pub fn startup_secs(n: usize) -> f64 {
    8.0 + 1.5 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_zero_for_single_worker() {
        assert_eq!(ring_allreduce_secs(25_000_000, 1, 1.25e9, 50e-6), 0.0);
    }

    #[test]
    fn allreduce_approaches_2x_bytes_over_bw() {
        // As n → ∞ the bandwidth term → 2·bytes/bw.
        let bytes = 25_000_000u64;
        let bw = 1.25e9;
        let t = ring_allreduce_secs(bytes, 1000, bw, 0.0);
        let bound = 2.0 * bytes as f64 * 4.0 / bw;
        assert!((t - bound).abs() / bound < 0.01);
    }

    #[test]
    fn allreduce_monotone_in_params() {
        let a = ring_allreduce_secs(1_000_000, 8, 1.25e9, 50e-6);
        let b = ring_allreduce_secs(100_000_000, 8, 1.25e9, 50e-6);
        assert!(b > a);
    }

    #[test]
    fn latency_term_grows_with_n() {
        let a = ring_allreduce_secs(1000, 2, 1e12, 50e-6);
        let b = ring_allreduce_secs(1000, 16, 1e12, 50e-6);
        assert!(b > a);
    }

    #[test]
    fn nfs_contention_sublinear() {
        let one = nfs_load_secs(1e6, 1, 1.25e9);
        let ten = nfs_load_secs(1e6, 10, 1.25e9);
        assert!(ten > one);
        assert!(ten < 10.0 * one, "contention should be sublinear");
    }

    #[test]
    fn compute_scales_inversely_with_efficiency() {
        let fast = compute_secs(1e9, 32, 9.3e12, 0.6);
        let slow = compute_secs(1e9, 32, 9.3e12, 0.1);
        assert!((slow / fast - 6.0).abs() < 1e-9);
    }

    #[test]
    fn startup_grows_with_cluster() {
        assert!(startup_secs(16) > startup_secs(1));
    }
}
