//! The unit of prediction: "we define a DL workload as the training of any
//! DNN model in any computing cluster using any dataset" (§I).

use pddl_zoo::dataset::{dataset_by_name, DatasetDesc};
use pddl_zoo::{build_model, ModelSpec};
use pddl_graph::CompGraph;
use serde::{Deserialize, Serialize};

/// A deep-learning training workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Model-zoo name (e.g. `"resnet18"`).
    pub model: String,
    /// Dataset name (e.g. `"cifar10"`).
    pub dataset: String,
    /// Per-worker mini-batch size (the PyTorch DDP convention: the global
    /// batch is `batch_size × num_workers`, so adding servers is weak
    /// scaling).
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Workload {
    pub fn new(model: &str, dataset: &str, batch_size: usize, epochs: usize) -> Self {
        Self { model: model.into(), dataset: dataset.into(), batch_size, epochs }
    }

    /// Standard evaluation workload shape used throughout the benches:
    /// per-worker batch 128, 10 epochs.
    pub fn standard(model: &str, dataset: &str) -> Self {
        Self::new(model, dataset, 128, 10)
    }

    /// Resolves the dataset descriptor.
    pub fn dataset_desc(&self) -> Option<&'static DatasetDesc> {
        dataset_by_name(&self.dataset)
    }

    /// Builds the model's computational graph for this workload's dataset.
    pub fn build_graph(&self) -> Option<CompGraph> {
        let ds = self.dataset_desc()?;
        build_model(&self.model, ds)
    }

    /// Builds the analytic model spec.
    pub fn model_spec(&self) -> Option<ModelSpec> {
        self.build_graph().map(|g| ModelSpec::from_graph(&g))
    }

    /// Stable identifier for registries and caches.
    pub fn key(&self) -> String {
        format!("{}@{}/b{}/e{}", self.model, self.dataset, self.batch_size, self.epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_known_workload() {
        let w = Workload::standard("resnet18", "cifar10");
        assert!(w.dataset_desc().is_some());
        let g = w.build_graph().unwrap();
        assert_eq!(g.name, "resnet18");
    }

    #[test]
    fn unknown_model_unresolvable() {
        let w = Workload::standard("nosuchnet", "cifar10");
        assert!(w.build_graph().is_none());
    }

    #[test]
    fn unknown_dataset_unresolvable() {
        let w = Workload::standard("resnet18", "imagenet21k");
        assert!(w.dataset_desc().is_none());
        assert!(w.build_graph().is_none());
    }

    #[test]
    fn key_distinguishes_configs() {
        let a = Workload::new("vgg16", "cifar10", 128, 10);
        let b = Workload::new("vgg16", "cifar10", 256, 10);
        assert_ne!(a.key(), b.key());
    }
}
