//! Architecture- and hardware-dependent efficiency model.
//!
//! Real accelerators never hit peak FLOPS; the achieved fraction depends on
//! the architecture's kernel mix. The model combines:
//!
//! * a **roofline** term in arithmetic intensity (FLOPs per activation
//!   element): memory-bound nets (depthwise, tiny layers) utilize poorly;
//! * a **grouped-convolution penalty**: depthwise/grouped kernels have low
//!   data reuse and fragment into many small launches;
//! * a **branching penalty**: concat/sum-heavy graphs (DenseNet, Inception)
//!   pay kernel-launch and memory-layout overhead;
//! * a **per-worker batch term**: small local batches underfill the device.
//!
//! Coefficients were chosen so achieved efficiency lands in the 5–60% band
//! reported for CNNs on P100-class GPUs and wide Xeon CPUs.

use pddl_zoo::ModelSpec;

/// Device type for efficiency purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Device {
    Gpu,
    Cpu,
}

/// Fraction of peak FLOPS the workload achieves on the device, in (0, 1).
pub fn efficiency(spec: &ModelSpec, device: Device, batch_per_worker: usize) -> f64 {
    let (base, knee, batch_half) = match device {
        // GPUs need much higher arithmetic intensity to leave the
        // memory-bound regime, and bigger batches to saturate SMs.
        Device::Gpu => (0.62, 220.0, 10.0),
        Device::Cpu => (0.48, 25.0, 2.0),
    };
    let ai = spec.arithmetic_intensity();
    let roofline = ai / (ai + knee);
    let grouped = 1.0 / (1.0 + 3.0 * spec.grouped_flop_fraction);
    let branching = 1.0 / (1.0 + 2.0 * spec.branching_fraction);
    let b = batch_per_worker.max(1) as f64;
    let batch = b / (b + batch_half);
    (base * roofline * grouped * branching * batch).clamp(0.005, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_zoo::{build_model, CIFAR10};

    fn spec(name: &str) -> ModelSpec {
        ModelSpec::from_graph(&build_model(name, &CIFAR10).unwrap())
    }

    #[test]
    fn efficiency_in_unit_interval() {
        for name in pddl_zoo::model_names() {
            let s = spec(name);
            for d in [Device::Gpu, Device::Cpu] {
                for b in [1, 32, 128] {
                    let e = efficiency(&s, d, b);
                    assert!((0.0..1.0).contains(&e), "{name} {d:?} b{b}: {e}");
                }
            }
        }
    }

    #[test]
    fn gemm_heavy_beats_depthwise_on_gpu() {
        let vgg = efficiency(&spec("vgg16"), Device::Gpu, 128);
        let mbv3 = efficiency(&spec("mobilenet_v3_small"), Device::Gpu, 128);
        assert!(
            vgg > 2.0 * mbv3,
            "VGG should utilize the GPU far better: vgg={vgg:.3} mbv3={mbv3:.3}"
        );
    }

    #[test]
    fn bigger_batches_help() {
        let s = spec("resnet50");
        let small = efficiency(&s, Device::Gpu, 2);
        let large = efficiency(&s, Device::Gpu, 64);
        assert!(large > small);
    }

    #[test]
    fn cpu_less_intensity_sensitive() {
        let s = spec("mobilenet_v2");
        let gpu = efficiency(&s, Device::Gpu, 64);
        let cpu = efficiency(&s, Device::Cpu, 64);
        // Depthwise nets lose relatively more on GPU than CPU.
        let s2 = spec("vgg16");
        let gpu2 = efficiency(&s2, Device::Gpu, 64);
        let cpu2 = efficiency(&s2, Device::Cpu, 64);
        assert!(gpu2 / gpu > cpu2 / cpu);
    }

    #[test]
    fn efficiency_spread_is_wide() {
        // The architecture effect must be large enough that black-box
        // predictors visibly fail: >3× spread across the zoo on GPU.
        let effs: Vec<f64> = pddl_zoo::model_names()
            .iter()
            .map(|n| efficiency(&spec(n), Device::Gpu, 128))
            .collect();
        let max = effs.iter().cloned().fold(0.0, f64::max);
        let min = effs.iter().cloned().fold(1.0, f64::min);
        assert!(max / min > 3.0, "spread {:.2} ({min:.3}..{max:.3})", max / min);
    }
}
