//! Distributed data-parallel (DDP) training-time simulator.
//!
//! This crate is the substitution for the paper's CloudLab testbed (see
//! DESIGN.md §1): it produces `(workload, cluster) → training time` samples
//! with the same qualitative structure that PyTorch DDP on real hardware
//! exhibits, so every downstream experiment exercises the same code paths it
//! would against real measurements.
//!
//! Per-iteration cost model:
//!
//! ```text
//! t_iter  = max(straggler compute, pipelined data loading) + allreduce
//! compute = 3 · F(arch) · b_worker / (peak_flops(server) · eff(arch, server))
//! allreduce = ring: 2(n−1)/n · 4·P / min_bw  +  2(n−1) · latency
//! loading = b_worker · bytes_per_example / nfs_share(n)
//! T_total = epochs · ceil(|D| / (b·n)) · t_iter · noise + startup(n)
//! ```
//!
//! `eff(arch, server)` is the architecture-dependent hardware efficiency —
//! a roofline arithmetic-intensity term plus penalties for depthwise/grouped
//! convolutions and branch-heavy topologies. It is the component a black-box
//! predictor cannot observe, a `#layers/#params` gray box sees only
//! coarsely, and the GHN embedding captures (the paper's causal story for
//! Figs. 1, 2, 6, 9).

pub mod cost;
pub mod efficiency;
pub mod simulate;
pub mod trace;
pub mod workload;

pub use simulate::{SimConfig, Simulator};
pub use trace::{generate_trace, TraceConfig, TraceRecord};
pub use workload::Workload;
