//! The simulator itself: workload × cluster → training time.

use crate::cost::{compute_secs, nfs_load_secs, ring_allreduce_secs, startup_secs};
use crate::efficiency::{efficiency, Device};
use crate::workload::Workload;
use pddl_cluster::equations::available_flops;
use pddl_cluster::{ClusterState, ServerStatus};
use pddl_tensor::Rng;
use pddl_telemetry::{Counter, Histogram};
use pddl_zoo::ModelSpec;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Simulator metric handles, resolved once. The simulator is the trace
/// generator's hot loop (run on the work pool), so everything here must stay
/// lock-free: counters and the latency histogram are relaxed atomics.
struct Metrics {
    simulations: &'static Counter,
    iterations_simulated: &'static Counter,
    oom_rejections: &'static Counter,
    simulate_latency: &'static Histogram,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        simulations: pddl_telemetry::counter("ddlsim.simulations"),
        iterations_simulated: pddl_telemetry::counter("ddlsim.iterations_simulated"),
        oom_rejections: pddl_telemetry::counter("ddlsim.oom_rejections"),
        simulate_latency: pddl_telemetry::histogram("ddlsim.simulate_latency"),
    })
}

/// Simulator parameters (the "physics" of the synthetic testbed).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// NFS server aggregate throughput, bytes/s (datasets live on NFS,
    /// §IV-A3).
    pub nfs_bps: f64,
    /// Per-hop network latency, seconds.
    pub latency_s: f64,
    /// Log-space σ of the multiplicative run-to-run noise.
    pub noise_sigma: f32,
    /// Base seed for measurement noise.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self { nfs_bps: 1.25e9, latency_s: 50e-6, noise_sigma: 0.03, seed: 0xC10C }
    }
}

/// Fraction of straggler compute that can hide all-reduce time (DDP
/// gradient-bucket overlap with the backward pass).
const COMM_OVERLAP: f64 = 0.66;

/// Deterministic, seedable training-time simulator.
#[derive(Clone, Debug)]
pub struct Simulator {
    pub cfg: SimConfig,
}

/// Simulation failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    UnknownModel(String),
    UnknownDataset(String),
    EmptyCluster,
    /// Model + activations do not fit in device memory on some server.
    OutOfMemory { hostname: String },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownModel(m) => write!(f, "unknown model {m}"),
            SimError::UnknownDataset(d) => write!(f, "unknown dataset {d}"),
            SimError::EmptyCluster => write!(f, "cluster has no servers"),
            SimError::OutOfMemory { hostname } => write!(f, "OOM on {hostname}"),
        }
    }
}

impl std::error::Error for SimError {}

impl Simulator {
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    /// Noise-free expected training time in seconds.
    pub fn expected_time(&self, w: &Workload, cluster: &ClusterState) -> Result<f64, SimError> {
        let (spec, ds) = self.resolve(w)?;
        self.expected_time_with_spec(w, &spec, ds, cluster)
    }

    /// One noisy "measurement", as a real testbed run would produce.
    /// `run_id` distinguishes repeated runs of the same configuration.
    pub fn measure(
        &self,
        w: &Workload,
        cluster: &ClusterState,
        run_id: u64,
    ) -> Result<f64, SimError> {
        let expected = self.expected_time(w, cluster)?;
        let mut rng = Rng::new(
            self.cfg.seed ^ hash_str(&w.key()) ^ (cluster.num_servers() as u64) << 32 ^ run_id,
        );
        Ok(expected * rng.lognormal_factor(self.cfg.noise_sigma) as f64)
    }

    fn resolve(&self, w: &Workload) -> Result<(ModelSpec, &'static pddl_zoo::DatasetDesc), SimError> {
        let ds = w
            .dataset_desc()
            .ok_or_else(|| SimError::UnknownDataset(w.dataset.clone()))?;
        let g = w
            .build_graph()
            .ok_or_else(|| SimError::UnknownModel(w.model.clone()))?;
        Ok((ModelSpec::from_graph(&g), ds))
    }

    /// Core cost model with a pre-resolved spec (hot path for the trace
    /// generator, which reuses specs across cluster sizes).
    pub fn expected_time_with_spec(
        &self,
        w: &Workload,
        spec: &ModelSpec,
        ds: &pddl_zoo::DatasetDesc,
        cluster: &ClusterState,
    ) -> Result<f64, SimError> {
        let m = metrics();
        let timer = m.simulate_latency.start_timer();
        let n = cluster.num_servers();
        if n == 0 {
            return Err(SimError::EmptyCluster);
        }
        let batch_per_worker = w.batch_size.max(1);
        self.check_memory(spec, batch_per_worker, ds, cluster).inspect_err(|e| {
            if matches!(e, SimError::OutOfMemory { .. }) {
                m.oom_rejections.inc();
            }
        })?;

        // Straggler: iteration time is gated by the slowest worker.
        let mut worst_compute = 0.0f64;
        for s in &cluster.servers {
            let (peak, device) = device_of(s);
            let eff = efficiency(spec, device, batch_per_worker);
            let t = compute_secs(spec.flops_per_example, batch_per_worker, peak, eff);
            worst_compute = worst_compute.max(t);
        }

        let load = nfs_load_secs(
            batch_per_worker as f64 * ds.bytes_per_example(),
            n,
            self.cfg.nfs_bps,
        );
        let allreduce =
            ring_allreduce_secs(spec.params, n, cluster.min_net_bps(), self.cfg.latency_s);
        // PyTorch DDP buckets gradients and overlaps all-reduce with the
        // backward pass; roughly the backward two-thirds of compute can
        // hide communication.
        let exposed_comm = (allreduce - COMM_OVERLAP * worst_compute).max(0.0);

        // Data loading overlaps compute (DataLoader prefetch); the exposed
        // all-reduce remainder synchronizes at iteration end.
        let t_iter = worst_compute.max(load) + exposed_comm;
        let global_batch = batch_per_worker * n;
        let iters_per_epoch = ds.num_examples.div_ceil(global_batch);
        m.simulations.inc();
        m.iterations_simulated.add((w.epochs * iters_per_epoch) as u64);
        timer.observe();
        Ok(w.epochs as f64 * iters_per_epoch as f64 * t_iter + startup_secs(n))
    }

    /// Device-memory feasibility: parameters + optimizer state + activations
    /// must fit on the training device.
    fn check_memory(
        &self,
        spec: &ModelSpec,
        batch_per_worker: usize,
        _ds: &pddl_zoo::DatasetDesc,
        cluster: &ClusterState,
    ) -> Result<(), SimError> {
        // params + grads + momentum (3×) + activations per batch element.
        let bytes =
            spec.params as f64 * 4.0 * 3.0 + spec.activation_elems as f64 * 4.0 * batch_per_worker as f64;
        for s in &cluster.servers {
            let capacity = if s.spec.is_gpu() {
                s.spec.gpu_mem_bytes as f64
            } else {
                pddl_cluster::equations::available_ram(&s.spec, s.cpu_util)
            };
            if bytes > capacity {
                return Err(SimError::OutOfMemory { hostname: s.spec.hostname.clone() });
            }
        }
        Ok(())
    }
}

fn device_of(s: &ServerStatus) -> (f64, Device) {
    if s.spec.is_gpu() && s.free_gpus() > 0 {
        (s.free_gpus() as f64 * s.spec.gpu_flops, Device::Gpu)
    } else {
        (available_flops(&s.spec, s.cpu_util).max(1e9), Device::Cpu)
    }
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a; stable across runs (unlike `DefaultHasher` guarantees).
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_cluster::ServerClass;

    fn sim() -> Simulator {
        Simulator::new(SimConfig::default())
    }

    fn gpu_cluster(n: usize) -> ClusterState {
        ClusterState::homogeneous(ServerClass::GpuP100, n)
    }

    fn cpu_cluster(n: usize) -> ClusterState {
        ClusterState::homogeneous(ServerClass::CpuE5_2630, n)
    }

    #[test]
    fn training_time_positive_and_finite() {
        let t = sim()
            .expected_time(&Workload::standard("resnet18", "cifar10"), &gpu_cluster(4))
            .unwrap();
        assert!(t.is_finite() && t > 0.0, "{t}");
    }

    #[test]
    fn more_servers_usually_faster_then_plateaus() {
        let s = sim();
        let w = Workload::standard("resnet18", "cifar10");
        let t1 = s.expected_time(&w, &gpu_cluster(1)).unwrap();
        let t4 = s.expected_time(&w, &gpu_cluster(4)).unwrap();
        let t16 = s.expected_time(&w, &gpu_cluster(16)).unwrap();
        assert!(t4 < t1, "scaling broken: {t1} -> {t4}");
        // Sub-linear: 16 servers cannot be 16× faster (communication).
        assert!(t1 / t16 < 16.0, "{t1} -> {t16}");
    }

    #[test]
    fn communication_bound_model_scales_worse() {
        // AlexNet's 61M-parameter (FC-heavy) gradient all-reduce with tiny
        // per-iteration compute erodes scaling far more than compute-bound
        // VGG-16, whose backward pass hides its communication.
        let s = sim();
        let comm_bound = Workload::standard("alexnet", "cifar10");
        let compute_bound = Workload::standard("vgg16", "cifar10");
        let speedup = |w: &Workload| {
            s.expected_time(w, &gpu_cluster(1)).unwrap()
                / s.expected_time(w, &gpu_cluster(8)).unwrap()
        };
        assert!(
            speedup(&compute_bound) > speedup(&comm_bound),
            "vgg {:.2} vs alexnet {:.2}",
            speedup(&compute_bound),
            speedup(&comm_bound)
        );
    }

    #[test]
    fn gpu_much_faster_than_cpu() {
        let s = sim();
        let w = Workload::standard("vgg16", "cifar10");
        let tg = s.expected_time(&w, &gpu_cluster(4)).unwrap();
        let tc = s.expected_time(&w, &cpu_cluster(4)).unwrap();
        assert!(tc > 3.0 * tg, "gpu {tg}, cpu {tc}");
    }

    #[test]
    fn heavier_model_takes_longer() {
        let s = sim();
        let small = s
            .expected_time(&Workload::standard("squeezenet1_1", "cifar10"), &gpu_cluster(4))
            .unwrap();
        let big = s
            .expected_time(&Workload::standard("vgg16", "cifar10"), &gpu_cluster(4))
            .unwrap();
        assert!(big > 3.0 * small, "small {small}, big {big}");
    }

    #[test]
    fn heterogeneous_cluster_gated_by_straggler() {
        let s = sim();
        let w = Workload::standard("resnet18", "tiny-imagenet");
        let fast = cpu_cluster(4);
        let mut mixed = cpu_cluster(3);
        mixed.servers.push(ServerStatus::idle(
            pddl_cluster::ServerSpec::preset(ServerClass::CpuE5_2650, "slow"),
        ));
        let t_fast = s.expected_time(&w, &fast).unwrap();
        let t_mixed = s.expected_time(&w, &mixed).unwrap();
        assert!(t_mixed > t_fast, "straggler ignored: {t_fast} vs {t_mixed}");
    }

    #[test]
    fn measurement_noise_is_small_and_reproducible() {
        let s = sim();
        let w = Workload::standard("resnet18", "cifar10");
        let c = gpu_cluster(2);
        let expected = s.expected_time(&w, &c).unwrap();
        let m1 = s.measure(&w, &c, 0).unwrap();
        let m2 = s.measure(&w, &c, 0).unwrap();
        let m3 = s.measure(&w, &c, 1).unwrap();
        assert_eq!(m1, m2, "same run id must reproduce");
        assert_ne!(m1, m3, "different runs must differ");
        assert!((m1 / expected - 1.0).abs() < 0.25);
    }

    #[test]
    fn errors_are_reported() {
        let s = sim();
        assert!(matches!(
            s.expected_time(&Workload::standard("nope", "cifar10"), &gpu_cluster(1)),
            Err(SimError::UnknownModel(_))
        ));
        assert!(matches!(
            s.expected_time(&Workload::standard("resnet18", "nope"), &gpu_cluster(1)),
            Err(SimError::UnknownDataset(_))
        ));
        assert!(matches!(
            s.expected_time(
                &Workload::standard("resnet18", "cifar10"),
                &ClusterState::default()
            ),
            Err(SimError::EmptyCluster)
        ));
    }

    #[test]
    fn huge_batch_oom_on_gpu() {
        let s = sim();
        // 12 GB P100: wide_resnet101 with an absurd per-worker batch OOMs;
        // a sane batch fits.
        let big = Workload::new("wide_resnet101_2", "tiny-imagenet", 4_000, 1);
        assert!(matches!(
            s.expected_time(&big, &gpu_cluster(1)),
            Err(SimError::OutOfMemory { .. })
        ));
        let ok = Workload::new("wide_resnet101_2", "tiny-imagenet", 32, 1);
        assert!(s.expected_time(&ok, &gpu_cluster(1)).is_ok());
    }

    #[test]
    fn epoch_time_plausible_for_resnet18_cifar() {
        // Sanity anchor: ResNet-18 on one P100, batch 128: the real epoch
        // time is tens of seconds; the simulator should land within an
        // order of magnitude.
        let s = sim();
        let w = Workload::new("resnet18", "cifar10", 128, 1);
        let t = s.expected_time(&w, &gpu_cluster(1)).unwrap();
        assert!(t > 3.0 && t < 300.0, "epoch time {t}s implausible");
    }
}
