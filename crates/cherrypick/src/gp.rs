//! Gaussian-process regression with an RBF kernel.
//!
//! Minimal but correct: posterior mean/variance via Cholesky of
//! `K + σ²I`. Targets are internally centered; hyperparameters are fixed
//! per search (CherryPick's GP likewise uses simple fixed kernels).

use pddl_tensor::linalg::{cholesky, solve_spd};
use pddl_tensor::Matrix;

/// GP with RBF kernel `σ_f² exp(−‖a−b‖² / (2ℓ²))` and noise `σ_n²`.
#[derive(Clone, Debug)]
pub struct GaussianProcess {
    pub lengthscale: f32,
    pub signal_var: f32,
    pub noise_var: f32,
    x: Vec<Vec<f32>>,
    alpha: Vec<f32>,
    chol: Option<Matrix>,
    y_mean: f32,
}

impl GaussianProcess {
    pub fn new(lengthscale: f32, signal_var: f32, noise_var: f32) -> Self {
        assert!(lengthscale > 0.0 && signal_var > 0.0 && noise_var > 0.0);
        Self {
            lengthscale,
            signal_var,
            noise_var,
            x: Vec::new(),
            alpha: Vec::new(),
            chol: None,
            y_mean: 0.0,
        }
    }

    fn kernel(&self, a: &[f32], b: &[f32]) -> f32 {
        let d2: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.signal_var * (-d2 / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Fits the posterior on observations `(x_i, y_i)`.
    pub fn fit(&mut self, x: &[Vec<f32>], y: &[f32]) {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "GP needs at least one observation");
        let n = x.len();
        self.y_mean = y.iter().sum::<f32>() / n as f32;
        let yc: Vec<f32> = y.iter().map(|v| v - self.y_mean).collect();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.kernel(&x[i], &x[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += self.noise_var;
        }
        self.alpha = solve_spd(&k, &yc).expect("K + σ²I is SPD");
        self.chol = cholesky(&k);
        self.x = x.to_vec();
    }

    /// Posterior mean and variance at a query point.
    pub fn predict(&self, q: &[f32]) -> (f32, f32) {
        assert!(!self.x.is_empty(), "predict before fit");
        let kstar: Vec<f32> = self.x.iter().map(|xi| self.kernel(xi, q)).collect();
        let mean = self.y_mean
            + kstar
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f32>();
        // var = k(q,q) − k*ᵀ (K+σ²I)⁻¹ k*, via forward-substitution on L.
        let var = match &self.chol {
            Some(l) => {
                let n = self.x.len();
                let mut v = vec![0.0f64; n];
                for i in 0..n {
                    let mut s = kstar[i] as f64;
                    for j in 0..i {
                        s -= l[(i, j)] as f64 * v[j];
                    }
                    v[i] = s / l[(i, i)] as f64;
                }
                let reduction: f64 = v.iter().map(|x| x * x).sum();
                (self.kernel(q, q) as f64 - reduction).max(1e-9) as f32
            }
            None => self.signal_var,
        };
        (mean, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(f: impl Fn(f32) -> f32, xs: &[f32]) -> (Vec<Vec<f32>>, Vec<f32>) {
        (
            xs.iter().map(|&x| vec![x]).collect(),
            xs.iter().map(|&x| f(x)).collect(),
        )
    }

    #[test]
    fn interpolates_observations() {
        let (x, y) = obs(|v| v.sin(), &[-2.0, -1.0, 0.0, 1.0, 2.0]);
        let mut gp = GaussianProcess::new(1.0, 1.0, 1e-4);
        gp.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            let (m, _) = gp.predict(xi);
            assert!((m - yi).abs() < 0.05, "at {xi:?}: {m} vs {yi}");
        }
    }

    #[test]
    fn variance_shrinks_near_observations() {
        let (x, y) = obs(|v| v, &[0.0, 2.0]);
        let mut gp = GaussianProcess::new(0.7, 1.0, 1e-4);
        gp.fit(&x, &y);
        let (_, var_at) = gp.predict(&[0.0]);
        let (_, var_far) = gp.predict(&[10.0]);
        assert!(var_at < 0.01, "{var_at}");
        assert!(var_far > 0.5, "{var_far}");
    }

    #[test]
    fn reverts_to_mean_far_away() {
        let (x, y) = obs(|_| 5.0, &[0.0, 1.0]);
        let mut gp = GaussianProcess::new(0.5, 1.0, 1e-4);
        gp.fit(&x, &y);
        let (m, _) = gp.predict(&[100.0]);
        assert!((m - 5.0).abs() < 1e-3, "{m}");
    }

    #[test]
    fn smooth_between_points() {
        let (x, y) = obs(|v| v * v, &[-2.0, -1.0, 0.0, 1.0, 2.0]);
        let mut gp = GaussianProcess::new(1.0, 4.0, 1e-4);
        gp.fit(&x, &y);
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 0.25).abs() < 0.3, "{m}");
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn unfitted_panics() {
        let gp = GaussianProcess::new(1.0, 1.0, 1e-4);
        let _ = gp.predict(&[0.0]);
    }
}
