//! Acquisition function: expected improvement for minimization.

/// Standard normal PDF.
fn phi(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the erf identity (Abramowitz–Stegun 7.1.26
/// polynomial approximation, |err| < 1.5e-7 — plenty for acquisition
/// ranking).
fn big_phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement of a candidate with posterior `(mean, var)` over the
/// current best (lowest) observed value, for minimization:
/// `EI = (best − μ) Φ(z) + σ φ(z)`, `z = (best − μ)/σ`.
pub fn expected_improvement(mean: f32, var: f32, best: f32) -> f32 {
    let sigma = (var.max(0.0) as f64).sqrt();
    if sigma < 1e-12 {
        return (best as f64 - mean as f64).max(0.0) as f32;
    }
    let improve = best as f64 - mean as f64;
    let z = improve / sigma;
    (improve * big_phi(z) + sigma * phi(z)).max(0.0) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-5);
        assert!((erf(3.0) - 0.9999779).abs() < 1e-5);
    }

    #[test]
    fn ei_zero_when_certain_and_worse() {
        // Mean far above best with no uncertainty → no improvement.
        assert_eq!(expected_improvement(10.0, 0.0, 5.0), 0.0);
    }

    #[test]
    fn ei_positive_when_certain_and_better() {
        let ei = expected_improvement(3.0, 0.0, 5.0);
        assert!((ei - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ei_grows_with_uncertainty() {
        let low = expected_improvement(6.0, 0.01, 5.0);
        let high = expected_improvement(6.0, 4.0, 5.0);
        assert!(high > low);
    }

    #[test]
    fn ei_prefers_lower_mean_at_equal_variance() {
        let better = expected_improvement(4.0, 1.0, 5.0);
        let worse = expected_improvement(6.0, 1.0, 5.0);
        assert!(better > worse);
    }
}
