//! The CherryPick search loop over cluster configurations.
//!
//! Goal (NSDI'17 §3): find a near-optimal cloud configuration for a given
//! workload with as few *probe runs* as possible. Each probe actually runs
//! the workload once (here: one simulator call, charged in testbed
//! seconds); the GP models the objective over the configuration space and
//! expected improvement picks the next probe. The search restarts from zero
//! for every new workload — the reusability gap PredictDDL closes.

use crate::acquisition::expected_improvement;
use crate::gp::GaussianProcess;
use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{Simulator, Workload};

/// A candidate configuration: server class × count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfigPoint {
    pub class: ServerClass,
    pub servers: usize,
}

impl ConfigPoint {
    /// GP feature encoding: [log2 servers, is_gpu].
    fn features(&self) -> Vec<f32> {
        vec![
            (self.servers as f32).log2(),
            matches!(self.class, ServerClass::GpuP100) as u8 as f32,
        ]
    }

    pub fn cluster(&self) -> ClusterState {
        ClusterState::homogeneous(self.class, self.servers)
    }
}

/// Search result.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Best configuration found.
    pub best: ConfigPoint,
    /// Objective at the best config (seconds, or cost — see objective).
    pub best_value: f64,
    /// Number of probe runs performed.
    pub probes: usize,
    /// Total simulated seconds spent probing (the search cost the paper
    /// contrasts with PredictDDL's zero-run inference).
    pub probe_cost_secs: f64,
    /// Probe history: (config, objective value).
    pub history: Vec<(ConfigPoint, f64)>,
}

/// CherryPick searcher.
pub struct CherryPick {
    /// Stop when max EI falls below this fraction of the best value.
    pub ei_threshold: f32,
    /// Hard probe budget.
    pub max_probes: usize,
    /// Initial (seed) probes before the GP drives the search.
    pub init_probes: usize,
}

impl Default for CherryPick {
    fn default() -> Self {
        Self { ei_threshold: 0.02, max_probes: 10, init_probes: 3 }
    }
}

impl CherryPick {
    /// Runs the search for one workload over the candidate space.
    /// `objective` maps a measured runtime + config to the quantity to
    /// minimize (runtime, or a $-cost like CherryPick's own objective).
    pub fn search(
        &self,
        sim: &Simulator,
        w: &Workload,
        candidates: &[ConfigPoint],
        objective: impl Fn(f64, &ConfigPoint) -> f64,
    ) -> SearchOutcome {
        assert!(!candidates.is_empty());
        assert!(self.init_probes >= 1);
        let mut history: Vec<(ConfigPoint, f64)> = Vec::new();
        let mut probe_cost = 0.0f64;
        let probe = |cfg: &ConfigPoint,
                         history: &mut Vec<(ConfigPoint, f64)>,
                         probe_cost: &mut f64| {
            let run_id = history.len() as u64;
            let secs = sim
                .measure(w, &cfg.cluster(), run_id)
                .unwrap_or(f64::INFINITY);
            *probe_cost += if secs.is_finite() { secs } else { 0.0 };
            history.push((*cfg, objective(secs, cfg)));
        };

        // Seed probes: spread across the candidate range.
        let n = candidates.len();
        for i in 0..self.init_probes.min(n) {
            let idx = i * (n - 1) / (self.init_probes.max(2) - 1).max(1);
            probe(&candidates[idx], &mut history, &mut probe_cost);
        }

        // BO loop.
        while history.len() < self.max_probes {
            let xs: Vec<Vec<f32>> = history.iter().map(|(c, _)| c.features()).collect();
            let ys: Vec<f32> = history
                .iter()
                .map(|(_, v)| (v.max(1e-6)).log10() as f32)
                .collect();
            let mut gp = GaussianProcess::new(1.0, 1.0, 1e-3);
            gp.fit(&xs, &ys);
            let best_log = ys.iter().cloned().fold(f32::INFINITY, f32::min);

            let mut best_cand: Option<(ConfigPoint, f32)> = None;
            for c in candidates {
                if history.iter().any(|(h, _)| h == c) {
                    continue;
                }
                let (m, v) = gp.predict(&c.features());
                let ei = expected_improvement(m, v, best_log);
                if best_cand.is_none_or(|(_, b)| ei > b) {
                    best_cand = Some((*c, ei));
                }
            }
            match best_cand {
                Some((c, ei)) if ei > self.ei_threshold => {
                    probe(&c, &mut history, &mut probe_cost)
                }
                _ => break, // converged or exhausted
            }
        }

        let (best, best_value) = history
            .iter()
            .cloned()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("non-empty history");
        SearchOutcome {
            best,
            best_value,
            probes: history.len(),
            probe_cost_secs: probe_cost,
            history,
        }
    }
}

/// Default candidate grid over one server class.
pub fn candidate_grid(class: ServerClass, max_servers: usize) -> Vec<ConfigPoint> {
    (1..=max_servers)
        .map(|servers| ConfigPoint { class, servers })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pddl_ddlsim::SimConfig;

    fn sim() -> Simulator {
        Simulator::new(SimConfig::default())
    }

    #[test]
    fn finds_near_optimal_runtime_config() {
        let sim = sim();
        let w = Workload::new("resnet50", "cifar10", 128, 2);
        let candidates = candidate_grid(ServerClass::GpuP100, 20);
        let cp = CherryPick::default();
        let out = cp.search(&sim, &w, &candidates, |secs, _| secs);
        // Ground truth optimum by exhaustive sweep.
        let exact = candidates
            .iter()
            .map(|c| sim.expected_time(&w, &c.cluster()).unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            out.best_value <= exact * 1.15,
            "found {:.1}s vs optimum {:.1}s",
            out.best_value,
            exact
        );
        assert!(out.probes <= 10);
    }

    #[test]
    fn probes_fewer_configs_than_exhaustive() {
        let sim = sim();
        let w = Workload::new("vgg16", "cifar10", 128, 2);
        let candidates = candidate_grid(ServerClass::GpuP100, 20);
        let out = CherryPick::default().search(&sim, &w, &candidates, |secs, _| secs);
        assert!(out.probes < candidates.len() / 2, "{} probes", out.probes);
    }

    #[test]
    fn cost_objective_prefers_fewer_servers() {
        // $-cost: servers × hours. Scaling vgg16 beyond the knee costs more
        // than it saves, so the cost optimum uses fewer servers than the
        // runtime optimum.
        let sim = sim();
        let w = Workload::new("vgg16", "cifar10", 128, 2);
        let candidates = candidate_grid(ServerClass::GpuP100, 20);
        let cp = CherryPick { max_probes: 12, ..Default::default() };
        let runtime = cp.search(&sim, &w, &candidates, |secs, _| secs);
        let cost = cp.search(&sim, &w, &candidates, |secs, c| secs * c.servers as f64);
        assert!(
            cost.best.servers <= runtime.best.servers,
            "cost {} vs runtime {}",
            cost.best.servers,
            runtime.best.servers
        );
    }

    #[test]
    fn search_cost_is_real_seconds() {
        let sim = sim();
        let w = Workload::new("resnet18", "cifar10", 128, 2);
        let candidates = candidate_grid(ServerClass::GpuP100, 16);
        let out = CherryPick::default().search(&sim, &w, &candidates, |secs, _| secs);
        assert!(out.probe_cost_secs > 0.0);
        // Probing is expensive: at least `probes × fastest run`.
        assert!(out.probe_cost_secs >= out.best_value * out.probes as f64 * 0.5);
    }
}
