//! CherryPick (Alipourfard et al., NSDI 2017) — the second black-box
//! baseline the paper names (§V-A): "identifies the best cloud
//! configurations for big data analytics workloads using non-parametric
//! Bayesian optimization with a smaller search cost than Ernest, however
//! ... CherryPick is sensitive to workload changes, and requires retraining
//! the prediction model."
//!
//! Implemented from scratch:
//! * [`gp`] — Gaussian-process regression (RBF kernel + noise) via the
//!   workspace Cholesky;
//! * [`acquisition`] — expected improvement;
//! * [`search`] — the CherryPick loop: probe a config (one real run),
//!   update the GP, pick the next config by EI, stop when EI falls below a
//!   threshold. Like Ernest, every new workload restarts the search from
//!   zero — which is exactly the reusability gap PredictDDL closes.

pub mod acquisition;
pub mod gp;
pub mod search;

pub use acquisition::expected_improvement;
pub use gp::GaussianProcess;
pub use search::{CherryPick, ConfigPoint, SearchOutcome};
