//! `BENCH_serve.json` — the serving-capacity benchmark report.
//!
//! `pddl-loadgen` (src/bin/loadgen.rs) measures the bounded controller
//! under a low-rate phase (expected: zero sheds) and a saturation phase
//! (expected: nonzero sheds) and renders one [`ServeReport`] as the first
//! point on the repository's perf trajectory. The JSON is rendered by
//! hand — deterministic field order, fixed float precision, no serde on
//! the hot path — so the shape can be pinned mechanically: the golden
//! schema test (`crates/bench/tests/bench_schema.rs`) compares
//! [`schema_paths`] of a rendered report against
//! `tests/fixtures/bench_serve_schema.json`, and future PRs diff
//! trajectory files without parsing ambiguity.
//!
//! Units are encoded in the field names: `*_us` are microseconds, `*_rps`
//! are requests per second, `*_ms` milliseconds. Telemetry entries carry
//! the exact `pddl-telemetry` counter/gauge names so a report can be
//! cross-checked against a live `{"op":"stats"}` snapshot.
//!
//! The same conventions apply to [`TensorReport`] / `BENCH_tensor.json`
//! (the GEMM-core benchmark written by `pddl-tensorbench`, pinned by
//! `tests/fixtures/bench_tensor_schema.json`), to [`ShardReport`] /
//! `BENCH_shard.json` (the sharded-fleet benchmark written by
//! `pddl-loadgen --transport fleet`, pinned by
//! `tests/fixtures/bench_shard_schema.json`), and to [`SchedReport`] /
//! `BENCH_sched.json` (the prediction-driven-scheduling benchmark
//! written by `pddl-schedbench`, pinned by
//! `tests/fixtures/bench_sched_schema.json` — deterministic, not
//! wall-clock: the same seed reproduces the file byte for byte).

use pddl_telemetry::JsonValue;

/// Exact latency percentiles over one phase's completed requests, in
/// microseconds. Percentiles are computed from the full sorted sample
/// (nearest-rank), not a sketch — loadgen keeps every latency.
#[derive(Clone, Debug, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Slowest completed request.
    pub max_us: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
}

/// Nearest-rank percentile (`p` in `[0, 1]`) over an ascending-sorted slice.
pub fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Summarizes a latency sample (sorts in place).
pub fn summarize(latencies_us: &mut [u64]) -> LatencySummary {
    latencies_us.sort_unstable();
    if latencies_us.is_empty() {
        return LatencySummary::default();
    }
    let sum: u128 = latencies_us.iter().map(|&v| v as u128).sum();
    LatencySummary {
        p50_us: percentile(latencies_us, 0.50),
        p95_us: percentile(latencies_us, 0.95),
        p99_us: percentile(latencies_us, 0.99),
        max_us: *latencies_us.last().unwrap(),
        mean_us: (sum / latencies_us.len() as u128) as u64,
    }
}

/// Typed breakdown of *why* requests were rejected during a phase. The
/// four buckets mirror [`pddl_cluster::retry::ShedReason`] — every shed
/// and expiry lands in exactly one, so `queue_full + deadline +
/// connection_limit + draining <= shed + expired + failed` (transport
/// deaths carry no reason).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShedReasons {
    /// Admission queue was full (`SubmitError::Full` / `queue_full`).
    pub queue_full: u64,
    /// Expired waiting in the queue past the request deadline.
    pub deadline: u64,
    /// Rejected at accept because the connection cap was reached.
    pub connection_limit: u64,
    /// Rejected because the pool was shutting down.
    pub draining: u64,
}

/// One load phase: a client fleet driven at `target_rps` (0 = unpaced,
/// i.e. saturation) with every request outcome accounted for —
/// `completed + shed + expired + failed == requests`.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Phase label: `low_rate` or `saturate`.
    pub name: String,
    /// Aggregate offered rate across the fleet (0 = as fast as possible).
    pub target_rps: f64,
    /// Wall-clock length of the phase.
    pub duration_secs: f64,
    /// Round trips attempted.
    pub requests: u64,
    /// Requests answered with a real prediction.
    pub completed: u64,
    /// Requests shed at admission (`queue_full` / `connection_limit`).
    pub shed: u64,
    /// Typed reasons behind the sheds and expiries.
    pub shed_reasons: ShedReasons,
    /// Requests expired in the queue (`deadline`).
    pub expired: u64,
    /// Requests that failed for any other reason (transport death).
    pub failed: u64,
    /// Client-side retries performed (resilient clients only).
    pub retries: u64,
    /// Completed requests per second of phase wall-clock.
    pub throughput_rps: f64,
    /// Latency of completed requests.
    pub latency: LatencySummary,
}

/// Per-pipeline-stage latency summary read from the `trace.stage.*`
/// histograms after the run — the serving pipeline as the flight recorder
/// saw it, in microseconds (histograms record nanoseconds; the report
/// divides by 1000).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageSummary {
    /// Spans recorded for this stage across the whole run.
    pub count: u64,
    /// Median stage latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile stage latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile stage latency, microseconds.
    pub p99_us: u64,
}

/// Tracing-overhead measurement from dedicated closed-loop bursts on the
/// serving core, interleaving rounds with every request carrying a trace
/// context against rounds with tracing fully off. `overhead_ratio` is the
/// median of the per-round `untraced / traced` throughput ratios, so 1.0
/// means free and 1.05 means tracing costs 5% throughput — the committed
/// baseline is gated at ≤ 1.05 by the bench schema tier.
#[derive(Clone, Copy, Debug, Default)]
pub struct TracingSummary {
    /// Median completed requests/second with per-request trace contexts.
    pub traced_rps: f64,
    /// Median completed requests/second with tracing off.
    pub untraced_rps: f64,
    /// Median per-round `untraced_rps / traced_rps` (0 when the bursts
    /// did not run). Not exactly the quotient of the two medians above.
    pub overhead_ratio: f64,
}

/// bf16 frozen-weight inference vs f32 on the serving embed path: the
/// benchmark workload's GHN embed latency at each precision plus the
/// worst relative prediction delta observed when the live system is
/// flipped to bf16. The schema tier pins `latency_ratio >= 0.75` (bf16
/// may cost at most ~33% over f32) and `max_rel_prediction_err <= 1e-2`
/// on the committed baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrecisionSummary {
    /// Median f32 `embed_with_schedule` latency, microseconds.
    pub f32_embed_us: f64,
    /// Median bf16 (frozen-weight) embed latency, microseconds.
    pub bf16_embed_us: f64,
    /// `f32_embed_us / bf16_embed_us` — >1 means bf16 is faster.
    pub latency_ratio: f64,
    /// `|bf16_seconds - f32_seconds| / max(|f32_seconds|, 1)` on the
    /// benchmark prediction.
    pub max_rel_prediction_err: f64,
}

/// The full benchmark report — rendered to `BENCH_serve.json`.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// `inproc` (ServePool driven directly) or `tcp` (full wire stack).
    pub transport: String,
    /// Worker threads in the serving pool.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_depth: usize,
    /// Concurrent load-generating clients.
    pub clients: usize,
    /// Requests attempted per client per phase.
    pub requests_per_client: usize,
    /// Queue-wait deadline, milliseconds.
    pub deadline_ms: u64,
    /// Overload pacing hint, milliseconds.
    pub retry_after_ms: u64,
    /// The measured phases, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Per-stage latency summaries keyed by flight-recorder stage name
    /// (`queue_wait`, `embed_cache`, `ghn_embed`, `regress`, `serialize`),
    /// in render order.
    pub stages: Vec<(String, StageSummary)>,
    /// Tracing-overhead burst results.
    pub tracing: TracingSummary,
    /// bf16-vs-f32 embed latency and prediction-delta measurement.
    pub precision: PrecisionSummary,
    /// Final values of the serving-side telemetry series, keyed by their
    /// exact registry names (e.g. `controller.requests_shed`).
    pub telemetry: Vec<(String, u64)>,
}

fn fnum(v: f64) -> String {
    // Fixed precision keeps renders byte-stable across runs of the same
    // measurements and diffs small across trajectory points.
    format!("{v:.3}")
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl ServeReport {
    /// Renders the report as pretty-printed JSON with a fixed field
    /// order. This exact shape is pinned by the golden schema test.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"serve\",\n");
        // v2: per-phase shed_reasons, per-stage percentiles, tracing block.
        // v3: precision block (bf16 frozen-weight embed vs f32).
        out.push_str("  \"version\": 3,\n");
        out.push_str(&format!("  \"transport\": \"{}\",\n", escape(&self.transport)));
        out.push_str("  \"config\": {\n");
        out.push_str(&format!("    \"workers\": {},\n", self.workers));
        out.push_str(&format!("    \"queue_depth\": {},\n", self.queue_depth));
        out.push_str(&format!("    \"clients\": {},\n", self.clients));
        out.push_str(&format!(
            "    \"requests_per_client\": {},\n",
            self.requests_per_client
        ));
        out.push_str(&format!("    \"deadline_ms\": {},\n", self.deadline_ms));
        out.push_str(&format!("    \"retry_after_ms\": {}\n", self.retry_after_ms));
        out.push_str("  },\n");
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", escape(&p.name)));
            out.push_str(&format!("      \"target_rps\": {},\n", fnum(p.target_rps)));
            out.push_str(&format!(
                "      \"duration_secs\": {},\n",
                fnum(p.duration_secs)
            ));
            out.push_str(&format!("      \"requests\": {},\n", p.requests));
            out.push_str(&format!("      \"completed\": {},\n", p.completed));
            out.push_str(&format!("      \"shed\": {},\n", p.shed));
            out.push_str("      \"shed_reasons\": {\n");
            out.push_str(&format!(
                "        \"queue_full\": {},\n",
                p.shed_reasons.queue_full
            ));
            out.push_str(&format!("        \"deadline\": {},\n", p.shed_reasons.deadline));
            out.push_str(&format!(
                "        \"connection_limit\": {},\n",
                p.shed_reasons.connection_limit
            ));
            out.push_str(&format!("        \"draining\": {}\n", p.shed_reasons.draining));
            out.push_str("      },\n");
            out.push_str(&format!("      \"expired\": {},\n", p.expired));
            out.push_str(&format!("      \"failed\": {},\n", p.failed));
            out.push_str(&format!("      \"retries\": {},\n", p.retries));
            out.push_str(&format!(
                "      \"throughput_rps\": {},\n",
                fnum(p.throughput_rps)
            ));
            out.push_str("      \"latency_us\": {\n");
            out.push_str(&format!("        \"p50\": {},\n", p.latency.p50_us));
            out.push_str(&format!("        \"p95\": {},\n", p.latency.p95_us));
            out.push_str(&format!("        \"p99\": {},\n", p.latency.p99_us));
            out.push_str(&format!("        \"max\": {},\n", p.latency.max_us));
            out.push_str(&format!("        \"mean\": {}\n", p.latency.mean_us));
            out.push_str("      }\n");
            out.push_str(if i + 1 == self.phases.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"stages\": {\n");
        for (i, (name, s)) in self.stages.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {{\n", escape(name)));
            out.push_str(&format!("      \"count\": {},\n", s.count));
            out.push_str(&format!("      \"p50_us\": {},\n", s.p50_us));
            out.push_str(&format!("      \"p95_us\": {},\n", s.p95_us));
            out.push_str(&format!("      \"p99_us\": {}\n", s.p99_us));
            out.push_str(if i + 1 == self.stages.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  },\n");
        out.push_str("  \"tracing\": {\n");
        out.push_str(&format!("    \"traced_rps\": {},\n", fnum(self.tracing.traced_rps)));
        out.push_str(&format!(
            "    \"untraced_rps\": {},\n",
            fnum(self.tracing.untraced_rps)
        ));
        out.push_str(&format!(
            "    \"overhead_ratio\": {}\n",
            fnum(self.tracing.overhead_ratio)
        ));
        out.push_str("  },\n");
        out.push_str("  \"precision\": {\n");
        out.push_str(&format!(
            "    \"f32_embed_us\": {},\n",
            fnum(self.precision.f32_embed_us)
        ));
        out.push_str(&format!(
            "    \"bf16_embed_us\": {},\n",
            fnum(self.precision.bf16_embed_us)
        ));
        out.push_str(&format!(
            "    \"latency_ratio\": {},\n",
            fnum(self.precision.latency_ratio)
        ));
        out.push_str(&format!(
            "    \"max_rel_prediction_err\": {:.6}\n",
            self.precision.max_rel_prediction_err
        ));
        out.push_str("  },\n");
        out.push_str("  \"telemetry\": {\n");
        for (i, (name, value)) in self.telemetry.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {}", escape(name), value));
            out.push_str(if i + 1 == self.telemetry.len() { "\n" } else { ",\n" });
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// One GEMM shape measured five ways: the reference transpose+dot
/// kernel, the blocked packed kernel run serially, the blocked kernel
/// with the work pool enabled, the blocked kernel pinned to the scalar
/// microkernel, and the blocked kernel over bf16-frozen weights. Times
/// are the median of the run's reps.
#[derive(Clone, Debug)]
pub struct GemmCase {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// `matmul_reference` median, microseconds.
    pub reference_us: f64,
    /// Blocked kernel, serial (caller-owned pack buffer), microseconds.
    pub blocked_us: f64,
    /// Blocked kernel over the global work pool, microseconds.
    pub pooled_us: f64,
    /// Blocked kernel forced onto the scalar microkernel, microseconds.
    pub scalar_us: f64,
    /// Blocked kernel over `PackedBf16` weights, microseconds.
    pub bf16_us: f64,
    /// `reference_us / blocked_us`.
    pub speedup_blocked: f64,
    /// `reference_us / pooled_us`.
    pub speedup_pooled: f64,
    /// `scalar_us / blocked_us` — what the dispatched SIMD microkernel
    /// buys over the portable fallback (1.0 when the host is scalar).
    pub speedup_simd: f64,
    /// `blocked_us / bf16_us` — bf16 weight traffic vs f32 at the same
    /// backend.
    pub speedup_bf16: f64,
    /// Blocked-kernel throughput, `2·m·n·k / blocked_us / 1e3` GFLOP/s.
    pub gflops_blocked: f64,
}

/// End-to-end GHN inference: one `embed_with_schedule` call on a real zoo
/// architecture, scalar reference loops vs the batched GEMM path vs the
/// batched path over bf16-frozen weights.
#[derive(Clone, Debug)]
pub struct EmbedE2e {
    pub model: String,
    pub nodes: usize,
    pub reference_us: f64,
    pub batched_us: f64,
    /// Batched path with the GHN frozen to bf16, microseconds.
    pub bf16_us: f64,
    pub speedup: f64,
    /// `batched_us / bf16_us`.
    pub speedup_bf16: f64,
}

/// End-to-end GHN meta-training cost on the current (fused) tape.
#[derive(Clone, Debug)]
pub struct TrainE2e {
    pub num_graphs: usize,
    pub epochs: usize,
    pub total_us: f64,
    pub us_per_epoch: f64,
}

/// The GEMM-core benchmark report — rendered to `BENCH_tensor.json`.
#[derive(Clone, Debug)]
pub struct TensorReport {
    /// Worker threads the pooled measurements ran with.
    pub threads: usize,
    /// Repetitions per measurement (medians are reported).
    pub reps: usize,
    /// Microkernel backend the run dispatched to (`avx2+fma`, `neon`,
    /// `scalar`) — `pddl_tensor::backend().name()` at measurement time.
    pub kernel: String,
    pub gemm: Vec<GemmCase>,
    pub embed_graph: EmbedE2e,
    pub train_epoch: TrainE2e,
    /// Final tensor/par telemetry counters, keyed by registry name.
    pub telemetry: Vec<(String, u64)>,
}

impl TensorReport {
    /// Renders pretty-printed JSON with a fixed field order; the shape is
    /// pinned by the golden schema test like [`ServeReport::render`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"tensor\",\n");
        out.push_str("  \"version\": 2,\n");
        out.push_str("  \"config\": {\n");
        out.push_str(&format!("    \"threads\": {},\n", self.threads));
        out.push_str(&format!("    \"reps\": {},\n", self.reps));
        out.push_str(&format!("    \"kernel\": \"{}\"\n", escape(&self.kernel)));
        out.push_str("  },\n");
        out.push_str("  \"gemm\": [\n");
        for (i, c) in self.gemm.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"m\": {},\n", c.m));
            out.push_str(&format!("      \"k\": {},\n", c.k));
            out.push_str(&format!("      \"n\": {},\n", c.n));
            out.push_str(&format!("      \"reference_us\": {},\n", fnum(c.reference_us)));
            out.push_str(&format!("      \"blocked_us\": {},\n", fnum(c.blocked_us)));
            out.push_str(&format!("      \"pooled_us\": {},\n", fnum(c.pooled_us)));
            out.push_str(&format!("      \"scalar_us\": {},\n", fnum(c.scalar_us)));
            out.push_str(&format!("      \"bf16_us\": {},\n", fnum(c.bf16_us)));
            out.push_str(&format!(
                "      \"speedup_blocked\": {},\n",
                fnum(c.speedup_blocked)
            ));
            out.push_str(&format!(
                "      \"speedup_pooled\": {},\n",
                fnum(c.speedup_pooled)
            ));
            out.push_str(&format!("      \"speedup_simd\": {},\n", fnum(c.speedup_simd)));
            out.push_str(&format!("      \"speedup_bf16\": {},\n", fnum(c.speedup_bf16)));
            out.push_str(&format!(
                "      \"gflops_blocked\": {}\n",
                fnum(c.gflops_blocked)
            ));
            out.push_str(if i + 1 == self.gemm.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"embed_graph\": {\n");
        out.push_str(&format!("    \"model\": \"{}\",\n", escape(&self.embed_graph.model)));
        out.push_str(&format!("    \"nodes\": {},\n", self.embed_graph.nodes));
        out.push_str(&format!(
            "    \"reference_us\": {},\n",
            fnum(self.embed_graph.reference_us)
        ));
        out.push_str(&format!(
            "    \"batched_us\": {},\n",
            fnum(self.embed_graph.batched_us)
        ));
        out.push_str(&format!("    \"bf16_us\": {},\n", fnum(self.embed_graph.bf16_us)));
        out.push_str(&format!("    \"speedup\": {},\n", fnum(self.embed_graph.speedup)));
        out.push_str(&format!(
            "    \"speedup_bf16\": {}\n",
            fnum(self.embed_graph.speedup_bf16)
        ));
        out.push_str("  },\n");
        out.push_str("  \"train_epoch\": {\n");
        out.push_str(&format!("    \"num_graphs\": {},\n", self.train_epoch.num_graphs));
        out.push_str(&format!("    \"epochs\": {},\n", self.train_epoch.epochs));
        out.push_str(&format!("    \"total_us\": {},\n", fnum(self.train_epoch.total_us)));
        out.push_str(&format!(
            "    \"us_per_epoch\": {}\n",
            fnum(self.train_epoch.us_per_epoch)
        ));
        out.push_str("  },\n");
        out.push_str("  \"telemetry\": {\n");
        for (i, (name, value)) in self.telemetry.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {}", escape(name), value));
            out.push_str(if i + 1 == self.telemetry.len() { "\n" } else { ",\n" });
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// One point on the fleet-scaling curve: the same saturating client
/// fleet (scaled with the shard count) driven through the consistent-hash
/// ring at a given fleet size.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Fleet size this point was measured at.
    pub shards: usize,
    /// Concurrent clients driving the fleet.
    pub clients: usize,
    /// Round trips attempted.
    pub requests: u64,
    /// Requests answered with a real prediction.
    pub completed: u64,
    /// Requests shed at admission (clients back off and retry).
    pub shed: u64,
    /// Wall-clock length of the point.
    pub duration_secs: f64,
    /// Completed requests per second of wall-clock.
    pub throughput_rps: f64,
    /// `throughput_rps / single-shard throughput_rps` — the headline
    /// fleet-scaling number (1.0 by construction on the first point).
    pub speedup_vs_1: f64,
}

/// The measured cost of one ring resize, counted over a fixed synthetic
/// keyspace: consistent hashing promises `moved_fraction` stays near
/// `1/to_shards` (only the new shard's arcs move) instead of the
/// `1 - 1/to_shards` a modulo router would pay.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceStep {
    /// Fleet size before the resize.
    pub from_shards: usize,
    /// Fleet size after the resize.
    pub to_shards: usize,
    /// Keys sampled.
    pub keys: u64,
    /// Keys whose owning shard changed.
    pub moved: u64,
    /// `moved / keys`.
    pub moved_fraction: f64,
    /// The bound the schema tier pins: `1/to_shards` plus vnode-variance
    /// slack. `moved_fraction` must stay at or below it.
    pub bound_fraction: f64,
}

/// Exactly-once accounting for the shard-death phase: a shard is killed
/// mid-load, clients observe the typed re-route signal, refresh
/// membership, and retry on the survivor ring. Every request must end
/// completed (exactly once) or shed — `duplicates` and `unanswered`
/// are hard zeros on the committed baseline.
#[derive(Clone, Copy, Debug)]
pub struct KillSummary {
    /// Fleet size before the kill.
    pub shards: usize,
    /// Id of the shard killed mid-load.
    pub killed_shard: u64,
    /// Round trips attempted across the phase.
    pub requests: u64,
    /// Requests answered with a real prediction, exactly once each.
    pub completed: u64,
    /// Requests that hit the dead shard and were re-routed to a survivor.
    pub rerouted: u64,
    /// Requests shed by survivor admission control (typed, retried-out).
    pub shed: u64,
    /// Requests answered more than once — must be zero.
    pub duplicates: u64,
    /// Requests never answered at all — must be zero.
    pub unanswered: u64,
    /// Membership epoch at phase start.
    pub epoch_before: u64,
    /// Membership epoch after the kill converged (one bump per death).
    pub epoch_after: u64,
}

/// The sharded-fleet benchmark report — rendered to `BENCH_shard.json`
/// by `pddl-loadgen --transport fleet`.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Worker threads per shard pool.
    pub workers_per_shard: usize,
    /// Admission queue capacity per shard.
    pub queue_depth: usize,
    /// Clients per shard in the scaling fleet (total = this × shards).
    pub clients_per_shard: usize,
    /// Requests attempted per client per point.
    pub requests_per_client: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: u32,
    /// Floor per-request service time, microseconds — models a shard
    /// whose capacity is accelerator/IO-bound rather than host-CPU-bound,
    /// so fleet scaling is measurable on a single-core runner.
    pub service_us: u64,
    /// Distinct workloads (ring keys) in the request mix.
    pub keyspace: usize,
    /// The scaling curve, ascending fleet sizes, first entry is the
    /// single-shard baseline.
    pub scaling: Vec<ScalingPoint>,
    /// Ring-resize costs over the synthetic keyspace.
    pub rebalance: Vec<RebalanceStep>,
    /// The shard-death phase.
    pub kill: KillSummary,
    /// Final values of fleet-side telemetry series, keyed by their exact
    /// registry names.
    pub telemetry: Vec<(String, u64)>,
}

impl ShardReport {
    /// Renders pretty-printed JSON with a fixed field order; the shape is
    /// pinned by the golden schema test like [`ServeReport::render`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"shard\",\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str("  \"config\": {\n");
        out.push_str(&format!("    \"workers_per_shard\": {},\n", self.workers_per_shard));
        out.push_str(&format!("    \"queue_depth\": {},\n", self.queue_depth));
        out.push_str(&format!("    \"clients_per_shard\": {},\n", self.clients_per_shard));
        out.push_str(&format!(
            "    \"requests_per_client\": {},\n",
            self.requests_per_client
        ));
        out.push_str(&format!("    \"vnodes\": {},\n", self.vnodes));
        out.push_str(&format!("    \"service_us\": {},\n", self.service_us));
        out.push_str(&format!("    \"keyspace\": {}\n", self.keyspace));
        out.push_str("  },\n");
        out.push_str("  \"scaling\": [\n");
        for (i, p) in self.scaling.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"shards\": {},\n", p.shards));
            out.push_str(&format!("      \"clients\": {},\n", p.clients));
            out.push_str(&format!("      \"requests\": {},\n", p.requests));
            out.push_str(&format!("      \"completed\": {},\n", p.completed));
            out.push_str(&format!("      \"shed\": {},\n", p.shed));
            out.push_str(&format!("      \"duration_secs\": {},\n", fnum(p.duration_secs)));
            out.push_str(&format!(
                "      \"throughput_rps\": {},\n",
                fnum(p.throughput_rps)
            ));
            out.push_str(&format!("      \"speedup_vs_1\": {}\n", fnum(p.speedup_vs_1)));
            out.push_str(if i + 1 == self.scaling.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"rebalance\": [\n");
        for (i, r) in self.rebalance.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"from_shards\": {},\n", r.from_shards));
            out.push_str(&format!("      \"to_shards\": {},\n", r.to_shards));
            out.push_str(&format!("      \"keys\": {},\n", r.keys));
            out.push_str(&format!("      \"moved\": {},\n", r.moved));
            out.push_str(&format!(
                "      \"moved_fraction\": {},\n",
                fnum(r.moved_fraction)
            ));
            out.push_str(&format!(
                "      \"bound_fraction\": {}\n",
                fnum(r.bound_fraction)
            ));
            out.push_str(if i + 1 == self.rebalance.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"kill\": {\n");
        out.push_str(&format!("    \"shards\": {},\n", self.kill.shards));
        out.push_str(&format!("    \"killed_shard\": {},\n", self.kill.killed_shard));
        out.push_str(&format!("    \"requests\": {},\n", self.kill.requests));
        out.push_str(&format!("    \"completed\": {},\n", self.kill.completed));
        out.push_str(&format!("    \"rerouted\": {},\n", self.kill.rerouted));
        out.push_str(&format!("    \"shed\": {},\n", self.kill.shed));
        out.push_str(&format!("    \"duplicates\": {},\n", self.kill.duplicates));
        out.push_str(&format!("    \"unanswered\": {},\n", self.kill.unanswered));
        out.push_str(&format!("    \"epoch_before\": {},\n", self.kill.epoch_before));
        out.push_str(&format!("    \"epoch_after\": {}\n", self.kill.epoch_after));
        out.push_str("  },\n");
        out.push_str("  \"telemetry\": {\n");
        for (i, (name, value)) in self.telemetry.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {}", escape(name), value));
            out.push_str(if i + 1 == self.telemetry.len() { "\n" } else { ",\n" });
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// One policy's aggregate outcome on the burst scenario — the
/// missed-deadline/utilization comparison the sched benchmark is
/// committed to demonstrate.
#[derive(Clone, Debug)]
pub struct PolicyRow {
    /// Policy name (`fifo`, `sjf_predicted`, `deadline_aware`,
    /// `autoscale_predicted`).
    pub policy: String,
    /// Jobs submitted (== completed: the scenario runs to drain).
    pub submitted: u64,
    pub completed: u64,
    /// Jobs carrying a deadline SLO.
    pub deadlines_total: u64,
    pub deadlines_missed: u64,
    /// `100 × deadlines_missed / deadlines_total`.
    pub missed_pct: f64,
    /// Busy server-seconds / available capacity-seconds.
    pub utilization: f64,
    /// Mean queue wait, seconds.
    pub mean_wait_secs: f64,
    /// 99th-percentile queue wait, seconds.
    pub p99_wait_secs: f64,
    /// Deepest the waiting queue ever got.
    pub peak_queue: u64,
}

/// One point of the committed frozen-vs-online accuracy curve (mean
/// relative prediction error per launch-time bucket).
#[derive(Clone, Copy, Debug)]
pub struct AccuracyPoint {
    /// Bucket end, seconds of simulation time.
    pub t_end_secs: f64,
    /// Mean `|pred/actual − 1|` of the continually-refit predictor.
    pub online_err: f64,
    /// Same for the frozen fit-once baseline.
    pub frozen_err: f64,
    /// Jobs launched in the bucket.
    pub jobs: u64,
}

/// The mid-run cost-shift scenario: one engine run whose runtime model
/// shifts by `factor` at `at_fraction` of the arrival horizon, with the
/// online predictor refitting through the shift while a frozen clone of
/// the same bootstrap fit degrades.
#[derive(Clone, Debug)]
pub struct ShiftScenario {
    /// Policy the shift run used.
    pub policy: String,
    /// Runtime multiplier applied at the shift point.
    pub factor: f64,
    /// Shift position within the arrival horizon (0..1).
    pub at_fraction: f64,
    /// Page–Hinkley fires during the run (expected: exactly 1).
    pub drift_events: u64,
    /// Window refits performed by the online model.
    pub refits: u64,
    /// Observations folded into the online model.
    pub updates: u64,
    /// Mean relative error before the shift, online predictor.
    pub pre_shift_online: f64,
    pub pre_shift_frozen: f64,
    /// Mean relative error after the shift (recovery transient excluded).
    pub post_shift_online: f64,
    pub post_shift_frozen: f64,
    /// `post_shift_online / pre_shift_online` — pinned ≤ 1.5.
    pub recovery_ratio: f64,
    /// `post_shift_frozen / post_shift_online` — pinned ≥ 3.
    pub frozen_vs_online: f64,
    /// The full accuracy-over-time curve.
    pub curve: Vec<AccuracyPoint>,
}

/// The prediction-driven-scheduling benchmark report — rendered to
/// `BENCH_sched.json` by `pddl-schedbench`. Unlike the wall-clock
/// benchmarks above, every number here is **bit-deterministic** for the
/// committed seed: re-running the binary must reproduce the file exactly.
#[derive(Clone, Debug)]
pub struct SchedReport {
    /// Jobs per scenario run.
    pub jobs: usize,
    /// Server-pool size.
    pub servers: usize,
    /// The seed every scenario derives from.
    pub seed: u64,
    /// Burst-scenario policy comparison, fixed policy order.
    pub burst: Vec<PolicyRow>,
    /// The cost-shift scenario.
    pub shift: ShiftScenario,
    /// Final values of the scheduling/refit telemetry series, keyed by
    /// their exact registry names.
    pub telemetry: Vec<(String, u64)>,
}

impl SchedReport {
    /// Renders pretty-printed JSON with a fixed field order; the shape is
    /// pinned by the golden schema test like [`ServeReport::render`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"sched\",\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str("  \"config\": {\n");
        out.push_str(&format!("    \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("    \"servers\": {},\n", self.servers));
        out.push_str(&format!("    \"seed\": {}\n", self.seed));
        out.push_str("  },\n");
        out.push_str("  \"burst\": [\n");
        for (i, p) in self.burst.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"policy\": \"{}\",\n", escape(&p.policy)));
            out.push_str(&format!("      \"submitted\": {},\n", p.submitted));
            out.push_str(&format!("      \"completed\": {},\n", p.completed));
            out.push_str(&format!("      \"deadlines_total\": {},\n", p.deadlines_total));
            out.push_str(&format!(
                "      \"deadlines_missed\": {},\n",
                p.deadlines_missed
            ));
            out.push_str(&format!("      \"missed_pct\": {},\n", fnum(p.missed_pct)));
            out.push_str(&format!("      \"utilization\": {},\n", fnum(p.utilization)));
            out.push_str(&format!(
                "      \"mean_wait_secs\": {},\n",
                fnum(p.mean_wait_secs)
            ));
            out.push_str(&format!(
                "      \"p99_wait_secs\": {},\n",
                fnum(p.p99_wait_secs)
            ));
            out.push_str(&format!("      \"peak_queue\": {}\n", p.peak_queue));
            out.push_str(if i + 1 == self.burst.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"shift\": {\n");
        let s = &self.shift;
        out.push_str(&format!("    \"policy\": \"{}\",\n", escape(&s.policy)));
        out.push_str(&format!("    \"factor\": {},\n", fnum(s.factor)));
        out.push_str(&format!("    \"at_fraction\": {},\n", fnum(s.at_fraction)));
        out.push_str(&format!("    \"drift_events\": {},\n", s.drift_events));
        out.push_str(&format!("    \"refits\": {},\n", s.refits));
        out.push_str(&format!("    \"updates\": {},\n", s.updates));
        out.push_str(&format!(
            "    \"pre_shift_online\": {},\n",
            fnum(s.pre_shift_online)
        ));
        out.push_str(&format!(
            "    \"pre_shift_frozen\": {},\n",
            fnum(s.pre_shift_frozen)
        ));
        out.push_str(&format!(
            "    \"post_shift_online\": {},\n",
            fnum(s.post_shift_online)
        ));
        out.push_str(&format!(
            "    \"post_shift_frozen\": {},\n",
            fnum(s.post_shift_frozen)
        ));
        out.push_str(&format!(
            "    \"recovery_ratio\": {},\n",
            fnum(s.recovery_ratio)
        ));
        out.push_str(&format!(
            "    \"frozen_vs_online\": {},\n",
            fnum(s.frozen_vs_online)
        ));
        out.push_str("    \"curve\": [\n");
        for (i, c) in s.curve.iter().enumerate() {
            out.push_str("      {\n");
            out.push_str(&format!("        \"t_end_secs\": {},\n", fnum(c.t_end_secs)));
            out.push_str(&format!("        \"online_err\": {},\n", fnum(c.online_err)));
            out.push_str(&format!("        \"frozen_err\": {},\n", fnum(c.frozen_err)));
            out.push_str(&format!("        \"jobs\": {}\n", c.jobs));
            out.push_str(if i + 1 == s.curve.len() { "      }\n" } else { "      },\n" });
        }
        out.push_str("    ]\n");
        out.push_str("  },\n");
        out.push_str("  \"telemetry\": {\n");
        for (i, (name, value)) in self.telemetry.iter().enumerate() {
            out.push_str(&format!("    \"{}\": {}", escape(name), value));
            out.push_str(if i + 1 == self.telemetry.len() { "\n" } else { ",\n" });
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// Flattens a JSON document into its sorted set of key paths — the
/// *schema* of the document, independent of values. Array elements
/// contribute `[]`-suffixed paths (all elements are visited, so a phase
/// missing a field is caught). `telemetry` keys are data, not schema, so
/// they are summarized as a single `telemetry.*` path with a count-free
/// wildcard.
pub fn schema_paths(doc: &JsonValue) -> Vec<String> {
    let mut paths = Vec::new();
    walk(doc, "", &mut paths);
    paths.sort();
    paths.dedup();
    paths
}

fn walk(v: &JsonValue, prefix: &str, out: &mut Vec<String>) {
    match v {
        JsonValue::Object(fields) => {
            for (k, child) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                // Telemetry keys are metric names (data, varies by run);
                // the schema pins only that the object exists.
                if path == "telemetry" {
                    out.push("telemetry.*".to_string());
                    continue;
                }
                walk(child, &path, out);
            }
        }
        JsonValue::Array(items) => {
            let path = format!("{prefix}[]");
            if items.is_empty() {
                out.push(path.clone());
            }
            for item in items {
                walk(item, &path, out);
            }
        }
        _ => out.push(prefix.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            transport: "inproc".into(),
            workers: 2,
            queue_depth: 4,
            clients: 8,
            requests_per_client: 50,
            deadline_ms: 5000,
            retry_after_ms: 25,
            phases: vec![
                PhaseReport {
                    name: "low_rate".into(),
                    target_rps: 50.0,
                    duration_secs: 1.0,
                    requests: 400,
                    completed: 400,
                    shed: 0,
                    shed_reasons: ShedReasons::default(),
                    expired: 0,
                    failed: 0,
                    retries: 0,
                    throughput_rps: 400.0,
                    latency: LatencySummary {
                        p50_us: 100,
                        p95_us: 200,
                        p99_us: 300,
                        max_us: 400,
                        mean_us: 120,
                    },
                },
                PhaseReport {
                    name: "saturate".into(),
                    target_rps: 0.0,
                    duration_secs: 0.5,
                    requests: 400,
                    completed: 300,
                    shed: 100,
                    shed_reasons: ShedReasons { queue_full: 100, ..Default::default() },
                    expired: 0,
                    failed: 0,
                    retries: 0,
                    throughput_rps: 600.0,
                    latency: LatencySummary::default(),
                },
            ],
            stages: vec![
                ("queue_wait".into(), StageSummary { count: 700, p50_us: 40, p95_us: 90, p99_us: 120 }),
                ("regress".into(), StageSummary { count: 700, p50_us: 5, p95_us: 9, p99_us: 12 }),
            ],
            tracing: TracingSummary {
                traced_rps: 950.0,
                untraced_rps: 1000.0,
                overhead_ratio: 1.053,
            },
            precision: PrecisionSummary {
                f32_embed_us: 4000.0,
                bf16_embed_us: 3900.0,
                latency_ratio: 1.026,
                max_rel_prediction_err: 0.0012,
            },
            telemetry: vec![
                ("controller.requests_shed".into(), 100),
                ("controller.queue_depth_peak".into(), 4),
            ],
        }
    }

    #[test]
    fn render_parses_back() {
        let doc = JsonValue::parse(&sample().render()).expect("valid JSON");
        assert_eq!(doc.get("benchmark").and_then(|v| v.as_str()), Some("serve"));
        assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(3));
        let tracing = doc.get("tracing").expect("tracing block");
        assert_eq!(tracing.get("overhead_ratio").and_then(|v| v.as_f64()), Some(1.053));
        let precision = doc.get("precision").expect("precision block");
        assert_eq!(
            precision.get("max_rel_prediction_err").and_then(|v| v.as_f64()),
            Some(0.0012)
        );
        let qw = doc.get("stages").and_then(|s| s.get("queue_wait")).expect("queue_wait");
        assert_eq!(qw.get("p95_us").and_then(|v| v.as_u64()), Some(90));
        let sat = doc.get("phases").and_then(|p| p.as_array()).unwrap()[1]
            .get("shed_reasons")
            .expect("shed_reasons");
        assert_eq!(sat.get("queue_full").and_then(|v| v.as_u64()), Some(100));
        let phases = doc.get("phases").expect("phases");
        match phases {
            JsonValue::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("phases not an array: {other:?}"),
        }
    }

    fn sample_tensor() -> TensorReport {
        TensorReport {
            threads: 1,
            reps: 5,
            kernel: "avx2+fma".into(),
            gemm: vec![GemmCase {
                m: 128,
                k: 128,
                n: 128,
                reference_us: 700.0,
                blocked_us: 180.0,
                pooled_us: 180.0,
                scalar_us: 410.0,
                bf16_us: 170.0,
                speedup_blocked: 3.9,
                speedup_pooled: 3.9,
                speedup_simd: 2.28,
                speedup_bf16: 1.06,
                gflops_blocked: 23.0,
            }],
            embed_graph: EmbedE2e {
                model: "resnet18".into(),
                nodes: 70,
                reference_us: 9000.0,
                batched_us: 4000.0,
                bf16_us: 3900.0,
                speedup: 2.25,
                speedup_bf16: 1.03,
            },
            train_epoch: TrainE2e {
                num_graphs: 8,
                epochs: 2,
                total_us: 1.5e6,
                us_per_epoch: 7.5e5,
            },
            telemetry: vec![
                ("tensor.gemm_calls".into(), 1234),
                ("tensor.gemm_flops".into(), 4_000_000),
            ],
        }
    }

    #[test]
    fn tensor_render_parses_back() {
        let doc = JsonValue::parse(&sample_tensor().render()).expect("valid JSON");
        assert_eq!(doc.get("benchmark").and_then(|v| v.as_str()), Some("tensor"));
        assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(
            doc.get("config").and_then(|c| c.get("kernel")).and_then(|v| v.as_str()),
            Some("avx2+fma")
        );
        let gemm = doc.get("gemm").expect("gemm");
        match gemm {
            JsonValue::Array(items) => assert_eq!(items.len(), 1),
            other => panic!("gemm not an array: {other:?}"),
        }
        assert!(doc.get("embed_graph").is_some());
        assert!(doc.get("train_epoch").is_some());
    }

    fn sample_shard() -> ShardReport {
        ShardReport {
            workers_per_shard: 1,
            queue_depth: 4,
            clients_per_shard: 4,
            requests_per_client: 50,
            vnodes: 64,
            service_us: 1500,
            keyspace: 64,
            scaling: vec![
                ScalingPoint {
                    shards: 1,
                    clients: 4,
                    requests: 200,
                    completed: 200,
                    shed: 0,
                    duration_secs: 0.4,
                    throughput_rps: 500.0,
                    speedup_vs_1: 1.0,
                },
                ScalingPoint {
                    shards: 4,
                    clients: 16,
                    requests: 800,
                    completed: 800,
                    shed: 12,
                    duration_secs: 0.45,
                    throughput_rps: 1780.0,
                    speedup_vs_1: 3.56,
                },
            ],
            rebalance: vec![RebalanceStep {
                from_shards: 3,
                to_shards: 4,
                keys: 10_000,
                moved: 2_480,
                moved_fraction: 0.248,
                bound_fraction: 0.375,
            }],
            kill: KillSummary {
                shards: 4,
                killed_shard: 2,
                requests: 800,
                completed: 800,
                rerouted: 190,
                shed: 3,
                duplicates: 0,
                unanswered: 0,
                epoch_before: 1,
                epoch_after: 2,
            },
            telemetry: vec![("controller.requests_shed".into(), 15)],
        }
    }

    #[test]
    fn shard_render_parses_back() {
        let doc = JsonValue::parse(&sample_shard().render()).expect("valid JSON");
        assert_eq!(doc.get("benchmark").and_then(|v| v.as_str()), Some("shard"));
        let scaling = doc.get("scaling").and_then(|v| v.as_array()).expect("scaling");
        assert_eq!(scaling.len(), 2);
        assert_eq!(scaling[1].get("shards").and_then(|v| v.as_u64()), Some(4));
        let kill = doc.get("kill").expect("kill block");
        assert_eq!(kill.get("duplicates").and_then(|v| v.as_u64()), Some(0));
        let rb = doc.get("rebalance").and_then(|v| v.as_array()).expect("rebalance");
        assert_eq!(rb[0].get("to_shards").and_then(|v| v.as_u64()), Some(4));
        // Schema paths must be value-independent here too.
        let a = schema_paths(&doc);
        let mut other = sample_shard();
        other.kill.rerouted = 7;
        let b = schema_paths(&JsonValue::parse(&other.render()).unwrap());
        assert_eq!(a, b);
    }

    fn sample_sched() -> SchedReport {
        let row = |policy: &str, missed: u64| PolicyRow {
            policy: policy.into(),
            submitted: 12_000,
            completed: 12_000,
            deadlines_total: 8_400,
            deadlines_missed: missed,
            missed_pct: 100.0 * missed as f64 / 8_400.0,
            utilization: 0.61,
            mean_wait_secs: 14.2,
            p99_wait_secs: 240.0,
            peak_queue: 310,
        };
        SchedReport {
            jobs: 12_000,
            servers: 32,
            seed: 91,
            burst: vec![row("fifo", 910), row("deadline_aware", 260)],
            shift: ShiftScenario {
                policy: "fifo".into(),
                factor: 2.5,
                at_fraction: 0.5,
                drift_events: 1,
                refits: 1,
                updates: 20_000,
                pre_shift_online: 0.041,
                pre_shift_frozen: 0.042,
                post_shift_online: 0.047,
                post_shift_frozen: 1.47,
                recovery_ratio: 1.15,
                frozen_vs_online: 31.3,
                curve: vec![
                    AccuracyPoint { t_end_secs: 100.0, online_err: 0.04, frozen_err: 0.04, jobs: 800 },
                    AccuracyPoint { t_end_secs: 200.0, online_err: 0.05, frozen_err: 1.5, jobs: 820 },
                ],
            },
            telemetry: vec![
                ("sched.jobs_launched".into(), 60_000),
                ("refit.drift_events".into(), 1),
            ],
        }
    }

    #[test]
    fn sched_render_parses_back() {
        let doc = JsonValue::parse(&sample_sched().render()).expect("valid JSON");
        assert_eq!(doc.get("benchmark").and_then(|v| v.as_str()), Some("sched"));
        let burst = doc.get("burst").and_then(|v| v.as_array()).expect("burst");
        assert_eq!(burst.len(), 2);
        assert_eq!(burst[0].get("policy").and_then(|v| v.as_str()), Some("fifo"));
        let shift = doc.get("shift").expect("shift block");
        assert_eq!(shift.get("drift_events").and_then(|v| v.as_u64()), Some(1));
        let curve = shift.get("curve").and_then(|v| v.as_array()).expect("curve");
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[1].get("jobs").and_then(|v| v.as_u64()), Some(820));
        // Schema paths must be value-independent for the golden pin.
        let a = schema_paths(&doc);
        let mut other = sample_sched();
        other.shift.refits = 9;
        other.burst[1].peak_queue = 1;
        let b = schema_paths(&JsonValue::parse(&other.render()).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn summarize_orders_and_averages() {
        let mut xs = vec![30, 10, 20];
        let s = summarize(&mut xs);
        assert_eq!(s.p50_us, 20);
        assert_eq!(s.max_us, 30);
        assert_eq!(s.mean_us, 20);
    }

    #[test]
    fn schema_paths_are_stable_and_value_independent() {
        let a = schema_paths(&JsonValue::parse(&sample().render()).unwrap());
        let mut other = sample();
        other.phases[0].completed = 1; // values must not change the schema
        other.telemetry.push(("controller.requests_expired".into(), 0));
        let b = schema_paths(&JsonValue::parse(&other.render()).unwrap());
        assert_eq!(a, b, "schema must not depend on values or telemetry keys");
        assert!(a.contains(&"phases[].latency_us.p50".to_string()));
        assert!(a.contains(&"config.queue_depth".to_string()));
        assert!(a.contains(&"telemetry.*".to_string()));
    }
}
