//! `pddl-tensorbench` — the GEMM-core benchmark behind `BENCH_tensor.json`.
//!
//! Measures the blocked packed GEMM ([`pddl_tensor::gemm`]) against the
//! reference transpose+dot kernel across shapes spanning the workloads
//! this repository actually runs — GHN message/GRU products from 1×32 row
//! vectors up to 128×128 hidden batches, and the regressor design-matrix
//! sizes — plus two end-to-end numbers: a real zoo architecture through
//! `embed_with_schedule` (scalar reference loops vs the batched path) and
//! the wall-clock of GHN meta-training epochs on the fused tape.
//!
//! Since the microkernel layer dispatches at runtime, every shape is also
//! timed with the kernel pinned to the portable scalar fallback
//! (`speedup_simd` is what the dispatched AVX2/NEON microkernel buys) and
//! over bf16-frozen weights (`speedup_bf16`), and the embed e2e is re-run
//! with the GHN frozen to bf16. The backend the run dispatched to is
//! stamped into `config.kernel`.
//!
//! Every measurement is the median of `--reps` timed calls after one
//! warmup; the kernels themselves are deterministic, so run-to-run noise
//! is scheduling, not math. The report schema is pinned by
//! `crates/bench/tests/bench_schema.rs` against
//! `tests/fixtures/bench_tensor_schema.json`.
//!
//! ```text
//! pddl-tensorbench [--quick] [--reps 7] [--out BENCH_tensor.json] [--compare]
//! ```
//!
//! `--quick` shrinks reps and drops the largest shapes — the CI smoke
//! mode; the committed baseline is produced by a full run. `--compare`
//! additionally prints a per-shape backend-comparison table (blocked vs
//! forced-scalar vs bf16) to stdout.

use pddl_bench::report::{EmbedE2e, GemmCase, TensorReport, TrainE2e};
use pddl_ghn::{Ghn, GhnConfig, GhnTrainer, Schedule, SynthGenerator, TrainConfig};
use pddl_par::WorkPool;
use pddl_tensor::{Matrix, PackBuffer, PackedBf16, Precision, Rng};
use pddl_zoo::{build_model, dataset::dataset_by_name};
use std::time::Instant;

/// Shapes spanning the repo's hot GEMMs: GHN row-vector gates (m=1),
/// message batches, meta-training batches, and regressor designs
/// (tall-skinny with a small feature count).
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 32, 32),
    (1, 64, 64),
    (8, 32, 32),
    (16, 64, 64),
    (32, 32, 32),
    (64, 64, 64),
    (128, 128, 128),
    (300, 13, 13),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let compare = args.iter().any(|a| a == "--compare");
    let reps: usize = flag_value(&args, "--reps").unwrap_or(if quick { 3 } else { 7 });
    let out = flag_value::<String>(&args, "--out").unwrap_or_else(|| "BENCH_tensor.json".into());

    let pool = WorkPool::global();
    let kernel = pddl_tensor::backend().name().to_string();
    let shapes: Vec<(usize, usize, usize)> = if quick {
        SHAPES.iter().copied().filter(|&(m, _, _)| m <= 64).collect()
    } else {
        SHAPES.to_vec()
    };

    let mut rng = Rng::new(0xBE7C);
    let mut gemm = Vec::with_capacity(shapes.len());
    for &(m, k, n) in &shapes {
        let a = Matrix::rand_normal(m, k, 1.0, &mut rng);
        let b = Matrix::rand_normal(k, n, 1.0, &mut rng);
        let b_bf16 = PackedBf16::from_matrix(&b);
        let zero_bias = Matrix::zeros(1, n);
        let mut pack = PackBuffer::new();

        let reference_us = median_us(reps, || {
            std::hint::black_box(a.matmul_reference(&b));
        });
        let blocked_us = median_us(reps, || {
            std::hint::black_box(a.matmul_with(&b, &mut pack));
        });
        let pooled_us = median_us(reps, || {
            std::hint::black_box(a.matmul_pooled(&b, &pool));
        });
        // Same blocked kernel, pinned to the portable scalar microkernel:
        // isolates the dispatched SIMD win from the blocking/packing win.
        pddl_tensor::set_force_scalar(true);
        let scalar_us = median_us(reps, || {
            std::hint::black_box(a.matmul_with(&b, &mut pack));
        });
        pddl_tensor::set_force_scalar(false);
        // bf16 weights through the Nn fused entry point (zero bias makes
        // it the plain product); widening happens inside the pack.
        let bf16_us = median_us(reps, || {
            std::hint::black_box(a.matmul_bias_bf16(&b_bf16, &zero_bias));
        });
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        eprintln!(
            "gemm {m}x{k}·{k}x{n}: ref {reference_us:.1}us blocked {blocked_us:.1}us \
             pooled {pooled_us:.1}us scalar {scalar_us:.1}us bf16 {bf16_us:.1}us ({:.2}x)",
            reference_us / blocked_us
        );
        gemm.push(GemmCase {
            m,
            k,
            n,
            reference_us,
            blocked_us,
            pooled_us,
            scalar_us,
            bf16_us,
            speedup_blocked: reference_us / blocked_us,
            speedup_pooled: reference_us / pooled_us,
            speedup_simd: scalar_us / blocked_us,
            speedup_bf16: blocked_us / bf16_us,
            gflops_blocked: flops / blocked_us / 1e3,
        });
    }

    // End-to-end inference: a real architecture through the GatedGNN,
    // then the same GHN frozen to bf16.
    let model = "resnet18";
    let ds = dataset_by_name("cifar10").expect("cifar10 registered");
    let graph = build_model(model, ds).expect("resnet18 in the zoo");
    let ghn = Ghn::new(GhnConfig::default(), &mut rng);
    let sched = Schedule::new(&graph, ghn.cfg.s_max);
    let embed_reps = if quick { 2 } else { reps.min(5) };
    let reference_us = median_us(embed_reps, || {
        std::hint::black_box(ghn.embed_with_schedule_reference(&graph, &sched));
    });
    let batched_us = median_us(embed_reps, || {
        std::hint::black_box(ghn.embed_with_schedule(&graph, &sched));
    });
    let mut ghn_bf16 = ghn.clone();
    ghn_bf16.set_precision(Precision::Bf16);
    let bf16_us = median_us(embed_reps, || {
        std::hint::black_box(ghn_bf16.embed_with_schedule(&graph, &sched));
    });
    eprintln!(
        "embed_graph {model} ({} nodes): ref {reference_us:.0}us batched {batched_us:.0}us \
         bf16 {bf16_us:.0}us ({:.2}x)",
        graph.num_nodes(),
        reference_us / batched_us
    );
    let embed_graph = EmbedE2e {
        model: model.to_string(),
        nodes: graph.num_nodes(),
        reference_us,
        batched_us,
        bf16_us,
        speedup: reference_us / batched_us,
        speedup_bf16: batched_us / bf16_us,
    };

    // End-to-end meta-training on the fused tape (no slow-path twin
    // exists for the trainer; this is the trajectory number future PRs
    // diff against).
    let mut cfg = TrainConfig::tiny();
    cfg.epochs = if quick { 1 } else { 2 };
    let mut gen = SynthGenerator::new(ds.clone(), 0x7E57);
    let mut train_ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
    let trainer = GhnTrainer::new(cfg);
    let start = Instant::now();
    let report = trainer.train(&mut train_ghn, &mut gen);
    let total_us = start.elapsed().as_secs_f64() * 1e6;
    eprintln!(
        "train {} graphs x {} epochs: {:.0}us (final loss {:.4})",
        report.num_graphs,
        cfg.epochs,
        total_us,
        report.final_loss
    );
    let train_epoch = TrainE2e {
        num_graphs: report.num_graphs,
        epochs: cfg.epochs,
        total_us,
        us_per_epoch: total_us / cfg.epochs as f64,
    };

    let snap = pddl_telemetry::snapshot();
    let telemetry: Vec<(String, u64)> = ["tensor.gemm_calls", "tensor.gemm_flops", "par.items"]
        .iter()
        .filter_map(|name| snap.counter(name).map(|v| (name.to_string(), v)))
        .collect();

    let report = TensorReport {
        threads: pool.threads(),
        reps,
        kernel,
        gemm,
        embed_graph,
        train_epoch,
        telemetry,
    };
    if compare {
        print_compare(&report);
    }
    std::fs::write(&out, report.render()).expect("write report");
    eprintln!("wrote {out}");
}

/// `--compare`: a per-shape table of the dispatched blocked kernel vs the
/// forced-scalar kernel vs bf16 weights, plus the embed e2e line.
fn print_compare(report: &TensorReport) {
    println!("kernel backend: {}", report.kernel);
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "shape", "blocked_us", "scalar_us", "bf16_us", "simd_x", "bf16_x"
    );
    for c in &report.gemm {
        println!(
            "{:>14} {:>12.1} {:>12.1} {:>12.1} {:>8.2} {:>8.2}",
            format!("{}x{}x{}", c.m, c.k, c.n),
            c.blocked_us,
            c.scalar_us,
            c.bf16_us,
            c.speedup_simd,
            c.speedup_bf16
        );
    }
    let e = &report.embed_graph;
    println!(
        "embed {} ({} nodes): f32 {:.0}us bf16 {:.0}us ({:.2}x)",
        e.model, e.nodes, e.batched_us, e.bf16_us, e.speedup_bf16
    );
}

/// Median wall-clock of `reps` calls after one warmup, in microseconds.
fn median_us(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn flag_value<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
