//! `pddl-schedbench` — the prediction-driven-scheduling benchmark.
//!
//! Writes `BENCH_sched.json`: two seeded, **bit-deterministic** scenarios
//! on the `pddl-sched` engine (no wall-clock measurement anywhere, so
//! re-running the binary reproduces the committed file exactly):
//!
//! 1. **burst** — bursty arrivals with deadline SLOs, every policy run on
//!    the identical job stream. The committed floor: the prediction-driven
//!    deadline-aware policy misses fewer deadlines than FIFO.
//! 2. **shift** — a mid-run 2.5× cost-model shift under FIFO. The live
//!    predictor detects the drift (exactly one Page–Hinkley fire),
//!    truncates its window, refits, and recovers; the frozen fit-once
//!    clone keeps predicting the old regime. Committed floors:
//!    `recovery_ratio ≤ 1.5`, `frozen_vs_online ≥ 3`.
//!
//! ```text
//! pddl-schedbench [--out BENCH_sched.json] [--jobs 100000] [--servers 64]
//!                 [--seed 91]
//! ```

use pddl_bench::report::{AccuracyPoint, PolicyRow, SchedReport, ShiftScenario};
use pddl_sched::{
    run_engine, ArrivalSpec, CostShift, EngineConfig, EngineMetrics, EngineTrace, PolicyKind,
};
use std::collections::HashMap;

fn burst_config(policy: PolicyKind, jobs: usize, servers: usize, seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::new(policy, jobs, seed);
    cfg.servers = servers;
    cfg.arrivals = ArrivalSpec::BurstLoad {
        rho_base: 0.5,
        rho_burst: 2.5,
        period_runtimes: 4.0,
        burst_fraction: 0.25,
    };
    cfg.deadline_fraction = 0.7;
    cfg
}

fn shift_config(jobs: usize, servers: usize, seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::new(PolicyKind::Fifo, jobs, seed);
    cfg.servers = servers;
    cfg.arrivals = ArrivalSpec::PoissonLoad { rho: 0.45 };
    cfg.shifts = vec![CostShift { at_fraction: 0.5, factor: 2.5 }];
    cfg.post_shift_skip = jobs / 40;
    cfg
}

fn policy_row(policy: PolicyKind, m: &EngineMetrics) -> PolicyRow {
    PolicyRow {
        policy: policy.name().to_string(),
        submitted: m.submitted,
        completed: m.completed,
        deadlines_total: m.deadlines_total,
        deadlines_missed: m.deadlines_missed,
        missed_pct: m.missed_pct(),
        utilization: m.utilization,
        mean_wait_secs: m.mean_wait,
        p99_wait_secs: m.p99_wait,
        peak_queue: m.peak_queue,
    }
}

fn shift_scenario(cfg: &EngineConfig, t: &EngineTrace) -> ShiftScenario {
    let a = &t.accuracy;
    ShiftScenario {
        policy: cfg.policy.name().to_string(),
        factor: cfg.shifts[0].factor,
        at_fraction: cfg.shifts[0].at_fraction,
        drift_events: t.metrics.drift_events,
        refits: t.metrics.refits,
        updates: t.metrics.updates,
        pre_shift_online: a.pre_shift_online,
        pre_shift_frozen: a.pre_shift_frozen,
        post_shift_online: a.post_shift_online,
        post_shift_frozen: a.post_shift_frozen,
        recovery_ratio: a.recovery_ratio,
        frozen_vs_online: a.frozen_vs_online,
        curve: a
            .curve
            .iter()
            .map(|b| AccuracyPoint {
                t_end_secs: b.t_end,
                online_err: b.online_err,
                frozen_err: b.frozen_err,
                jobs: b.jobs,
            })
            .collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);
    let out = flags.get("out").cloned().unwrap_or_else(|| "BENCH_sched.json".to_string());
    let jobs: usize = flags.get("jobs").map_or(Ok(100_000), |s| s.parse()).unwrap_or_else(|_| {
        eprintln!("error: --jobs must be an integer");
        std::process::exit(2);
    });
    let servers: usize =
        flags.get("servers").map_or(Ok(64), |s| s.parse()).unwrap_or_else(|_| {
            eprintln!("error: --servers must be an integer");
            std::process::exit(2);
        });
    let seed: u64 = flags.get("seed").map_or(Ok(91), |s| s.parse()).unwrap_or_else(|_| {
        eprintln!("error: --seed must be an integer");
        std::process::exit(2);
    });

    // Burst scenario: the same arrival stream (same seed) under every
    // policy, so the policy comparison is paired, not sampled.
    let policies = [
        PolicyKind::Fifo,
        PolicyKind::SjfPredicted,
        PolicyKind::DeadlineAware,
        PolicyKind::AutoscalePredicted,
    ];
    let mut burst = Vec::with_capacity(policies.len());
    for policy in policies {
        let t = run_engine(&burst_config(policy, jobs, servers, seed));
        eprintln!(
            "burst/{}: {} jobs, missed {:.2}% of {} deadlines, utilization {:.3}",
            policy.name(),
            t.metrics.completed,
            t.metrics.missed_pct(),
            t.metrics.deadlines_total,
            t.metrics.utilization,
        );
        burst.push(policy_row(policy, &t.metrics));
    }

    // Shift scenario: frozen-vs-online through a mid-run cost shift.
    let shift_cfg = shift_config(jobs, servers, seed);
    let t = run_engine(&shift_cfg);
    eprintln!(
        "shift/fifo: drift fires {}, refits {}, recovery {:.3}, frozen/online {:.1}",
        t.metrics.drift_events,
        t.metrics.refits,
        t.accuracy.recovery_ratio,
        t.accuracy.frozen_vs_online,
    );
    let shift = shift_scenario(&shift_cfg, &t);

    let snapshot = pddl_telemetry::snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    let report = SchedReport {
        jobs,
        servers,
        seed,
        burst,
        shift,
        telemetry: vec![
            ("sched.jobs_launched".to_string(), counter("sched.jobs_launched")),
            ("refit.updates".to_string(), counter("refit.updates")),
            ("refit.refits".to_string(), counter("refit.refits")),
            ("refit.drift_events".to_string(), counter("refit.drift_events")),
        ],
    };
    std::fs::write(&out, report.render()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}
