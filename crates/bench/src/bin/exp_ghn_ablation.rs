//! Extension experiment: ablating GHN-2's design choices (DESIGN.md §3).
//!
//! Toggles the two GHN-2 enhancements the paper describes — **virtual
//! edges** (Eq. 4) and **operation-dependent normalization** — and varies
//! the number of propagation rounds `T`, measuring (a) held-out decoder MSE
//! of the meta-trained GHN and (b) the full pipeline's prediction error.
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin exp_ghn_ablation
//! ```

use pddl_bench::*;
use pddl_ghn::train::TrainConfig;
use pddl_ghn::{Ghn, GhnConfig, GhnTrainer, SynthGenerator};
use pddl_tensor::Rng;
use pddl_zoo::CIFAR10;
use predictddl::OfflineTrainer;

struct Variant {
    label: &'static str,
    cfg: GhnConfig,
}

fn variants() -> Vec<Variant> {
    let base = GhnConfig::default();
    vec![
        Variant { label: "GHN-2 (full)", cfg: base },
        Variant {
            label: "no virtual edges",
            cfg: GhnConfig { s_max: 1, ..base },
        },
        Variant {
            label: "no normalization",
            cfg: GhnConfig { normalize: false, ..base },
        },
        Variant {
            label: "T = 2 rounds",
            cfg: GhnConfig { t_passes: 2, ..base },
        },
    ]
}

fn main() {
    println!("=== extension: GHN-2 design-choice ablation ===\n");

    // (a) Surrogate-objective generalization: held-out decoder MSE.
    println!("--- decoder generalization (held-out synthetic graphs) ---");
    print_header(&["variant", "train MSE", "held-out MSE"]);
    for v in variants() {
        let mut rng = Rng::new(0xAB1);
        let mut ghn = Ghn::new(v.cfg, &mut rng);
        let mut gen = SynthGenerator::new(CIFAR10, 0xAB1);
        let tcfg = TrainConfig { num_graphs: 120, epochs: 30, ..TrainConfig::default() };
        let trainer = GhnTrainer::new(tcfg);
        let report = trainer.train(&mut ghn, &mut gen);
        let heldout = gen.sample_many(40);
        let test_mse = trainer.evaluate(&ghn, &heldout);
        println!(
            "{:<28}{:>14.4}{:>14.4}",
            v.label, report.final_loss, test_mse
        );
    }

    // (b) End-to-end pipeline error on the CIFAR-10 trace.
    println!("\n--- full-pipeline held-out error (CIFAR-10 trace) ---");
    print_header(&["variant", "|ratio-1|"]);
    let records = dataset_trace("cifar10");
    let (train, test) = split_records(&records, 0.8, 0xAB2);
    for v in variants() {
        let trainer = OfflineTrainer {
            seed: 0xAB2,
            ghn_config: v.cfg,
            ..OfflineTrainer::default()
        };
        let system = trainer.train_from_records(&train);
        let mut ratios = Vec::new();
        for r in &test {
            if let Ok(p) = system.predict_workload(&r.workload, &r.cluster()) {
                ratios.push(p.seconds / r.time_secs);
            }
        }
        println!("{:<28}{:>13.1}%", v.label, 100.0 * mean_abs_err(&ratios));
    }
    println!("\n(virtual edges and normalization are GHN-2's additions over the");
    println!(" original GHN — the ablation quantifies what each buys here)");
}
