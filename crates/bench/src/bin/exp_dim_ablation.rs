//! Extension experiment (the paper's stated future work): "investigate the
//! impact of the embedding vector's dimensionality on prediction error"
//! (§VI).
//!
//! Sweeps the GHN hidden/embedding dimension over {4, 8, 16, 32, 64} and
//! reports the held-out mean relative error of the full pipeline on the
//! CIFAR-10 trace.
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin exp_dim_ablation
//! ```

use pddl_bench::*;

fn main() {
    let records = dataset_trace("cifar10");
    let (train, test) = split_records(&records, 0.8, 0xD1);

    println!("=== extension: embedding-dimensionality ablation (CIFAR-10) ===\n");
    print_header(&["embed dim", "GHN train (s)", "|ratio-1|"]);
    for dim in [4usize, 8, 16, 32, 64] {
        let mut trainer = standard_trainer(0xD1);
        trainer.ghn_config.hidden_dim = dim;
        trainer.ghn_config.mlp_hidden = dim.max(8);
        trainer.ghn_config.decoder_hidden = (dim + dim / 2).max(12);
        let system = trainer.train_from_records(&train);
        let mut ratios = Vec::new();
        for r in &test {
            if let Ok(p) = system.predict_workload(&r.workload, &r.cluster()) {
                ratios.push(p.seconds / r.time_secs);
            }
        }
        println!(
            "{:<28}{:>14.1}{:>13.1}%",
            dim,
            system.train_cost.ghn_secs,
            100.0 * mean_abs_err(&ratios)
        );
    }
    println!("\nExpected shape: error drops steeply up to a modest dimension and");
    println!("then flattens — the paper's choice of ~32 sits on the plateau.");
}
