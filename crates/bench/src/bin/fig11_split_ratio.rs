//! Fig. 11: sensitivity of the prediction error to the train/test split
//! ratio (50/50, 67/33, 80/20) on five CIFAR-10 workloads.
//!
//! The paper observes PredictDDL "performs well on all three split ratios,
//! but does not improve in accuracy when the size of the train split
//! increases."
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin fig11_split_ratio
//! ```

use pddl_bench::*;

const FIG11_WORKLOADS: [&str; 5] = [
    "efficientnet_b0",
    "vgg16",
    "resnet18",
    "mobilenet_v3_large",
    "alexnet",
];

fn main() {
    let records = dataset_trace("cifar10");
    println!("=== Fig. 11: train-split sensitivity (CIFAR-10, closer to 1 is better) ===\n");
    print_header(&["workload", "50/50", "67/33", "80/20"]);

    let splits = [(0.50, "50/50"), (0.67, "67/33"), (0.80, "80/20")];
    // Train one system per split ratio.
    let mut per_split = Vec::new();
    for &(frac, _) in &splits {
        let (train, test) = split_records(&records, frac, 0xF11);
        let system = train_system(&train, 0xF11);
        per_split.push((system, test));
    }

    let mut grand = vec![Vec::new(); splits.len()];
    for model in FIG11_WORKLOADS {
        let mut row = format!("{model:<28}");
        for (si, (system, test)) in per_split.iter().enumerate() {
            let ratios = workload_ratios(test, model, "cifar10", |r| {
                system
                    .predict_workload(&r.workload, &r.cluster())
                    .map(|p| p.seconds)
                    .unwrap_or(f64::NAN)
            });
            row += &format!("{:>14.3}", mean(&ratios));
            grand[si].push(mean_abs_err(&ratios));
        }
        println!("{row}");
    }
    println!();
    let mut summary = format!("{:<28}", "mean |ratio-1|");
    for g in &grand {
        summary += &format!("{:>13.1}%", 100.0 * mean(g));
    }
    println!("{summary}");
    println!("\n(paper: accuracy is stable across split ratios — more training data");
    println!(" does not automatically improve unseen-workload accuracy)");
}
