//! Figs. 1 & 2: RMSE of black-box vs gray-box linear regression when
//! predicting the training time of VGG-16 (Fig. 1) and MobileNet-V3
//! (Fig. 2).
//!
//! Setup per §II-A: the motivation dataset contains the two studied DNNs
//! trained on CIFAR-10 while "varying the number of servers"; 80/20 split.
//! (a) The **black box** uses {DNN name, #servers, FLOPS}. The DNN name is
//! a non-numeric label that linear regression cannot exploit — which is the
//! paper's point: "the black box approach cannot identify the
//! characteristics of the DNN and averages the measurements of the
//! collected training samples". (b) The **gray box** adds {#layers,
//! #params}, which do separate the architectures.
//!
//! The paper observes up to 99.5% (VGG-16) and 91.2% (MobileNet-V3) RMSE
//! improvement from the gray-box features.
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin fig01_02_blackbox_graybox
//! ```

use pddl_bench::*;
use pddl_ddlsim::TraceRecord;
use pddl_regress::{metrics::rmse, LinearRegression, Regressor, StandardScaler};
use pddl_tensor::Matrix;
use pddl_zoo::{build_model, dataset::dataset_by_name, ModelSpec};
use std::collections::HashMap;

const MOTIVATION_MODELS: [&str; 2] = ["vgg16", "mobilenet_v3_large"];

fn features(r: &TraceRecord, specs: &HashMap<String, ModelSpec>, gray: bool) -> Vec<f32> {
    // Black-box features: servers + FLOPS. (The DNN *name* is a string
    // label; a linear regressor has no numeric encoding for it, exactly as
    // in the paper's black-box definition.)
    let mut f = vec![
        r.num_servers as f32,
        (r.cluster().total_training_flops().log10()) as f32,
        (r.workload.batch_size as f32).log10(),
    ];
    if gray {
        let s = &specs[&r.workload.model];
        f.push(s.layers as f32);
        f.push((s.params as f64 / 1e6) as f32);
    }
    f
}

fn main() {
    // Motivation trace: the two studied models on CIFAR-10 across cluster
    // sizes (paper §II-A).
    let records: Vec<TraceRecord> = dataset_trace("cifar10")
        .into_iter()
        .filter(|r| MOTIVATION_MODELS.contains(&r.workload.model.as_str()))
        .collect();
    let (train, test) = split_records(&records, 0.8, 0xF162);

    let ds = dataset_by_name("cifar10").unwrap();
    let mut specs = HashMap::new();
    for name in MOTIVATION_MODELS {
        specs.insert(
            name.to_string(),
            ModelSpec::from_graph(&build_model(name, ds).unwrap()),
        );
    }

    let fit_and_eval = |gray: bool, target_model: &str| -> f32 {
        let d = features(&train[0], &specs, gray).len();
        let mut x = Matrix::zeros(train.len(), d);
        let mut y = Vec::new();
        for (i, r) in train.iter().enumerate() {
            x.set_row(i, &features(r, &specs, gray));
            y.push(r.time_secs as f32);
        }
        let scaler = StandardScaler::fit(&x);
        let mut lr = LinearRegression::new();
        lr.fit(&scaler.transform(&x), &y);

        let targets: Vec<&TraceRecord> = test
            .iter()
            .filter(|r| r.workload.model == target_model)
            .collect();
        let mut xt = Matrix::zeros(targets.len(), d);
        let mut yt = Vec::new();
        for (i, r) in targets.iter().enumerate() {
            xt.set_row(i, &features(r, &specs, gray));
            yt.push(r.time_secs as f32);
        }
        rmse(&lr.predict(&scaler.transform(&xt)), &yt)
    };

    println!("=== Figs. 1 & 2: black-box vs gray-box RMSE (linear regression) ===");
    println!(
        "motivation trace: {} runs of {:?} on CIFAR-10/GPU\n",
        records.len(),
        MOTIVATION_MODELS
    );
    print_header(&["target model", "black RMSE", "gray RMSE", "improvement"]);
    for (fig, model) in [(1, "vgg16"), (2, "mobilenet_v3_large")] {
        let black = fit_and_eval(false, model);
        let gray = fit_and_eval(true, model);
        println!(
            "Fig.{fig} {:<22}{:>13.1}s{:>13.1}s{:>13.1}%",
            model,
            black,
            gray,
            100.0 * (1.0 - gray / black)
        );
    }
    println!("\n(paper: 99.5% improvement on VGG-16, 91.2% on MobileNet-V3)");
}
