//! Extension experiment (toward the paper's §VI future work on "the impact
//! of different training sample sizes and their distributions"): how does
//! PredictDDL's accuracy degrade as the measurement noise of the collected
//! trace grows?
//!
//! The GHN is trained **once** and reused across noise levels (it never
//! sees measurements — §III-G), so this isolates the regression stage's
//! sensitivity to noisy targets.
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin exp_noise_sensitivity
//! ```

use pddl_bench::*;
use pddl_ddlsim::{generate_trace, SimConfig, TraceConfig};
use predictddl::registry::GhnRegistry;

fn main() {
    println!("=== extension: trace-noise sensitivity (CIFAR-10) ===\n");

    // Train the GHN once.
    let trainer = standard_trainer(0xA015);
    let mut registry = GhnRegistry::new(trainer.ghn_config, trainer.ghn_train, trainer.seed);
    eprintln!("[noise] training the GHN once ...");
    registry.train_for_dataset("cifar10").expect("GHN trains");

    print_header(&["noise σ (log-space)", "|ratio-1| vs noisy", "|ratio-1| vs true"]);
    for sigma in [0.01f32, 0.03, 0.10, 0.20] {
        let mut cfg = TraceConfig::default();
        cfg.dataset_clusters
            .retain(|(d, _)| d.eq_ignore_ascii_case("cifar10"));
        cfg.sim = SimConfig { noise_sigma: sigma, ..SimConfig::default() };
        let records = generate_trace(&cfg);
        let (train, test) = split_records(&records, 0.8, 0xA015);
        let system = trainer.train_from_records_reusing(&train, registry.clone());

        // Error against the noisy measurement (what a testbed would report)
        // and against the noise-free expectation (the "true" time).
        let mut vs_noisy = Vec::new();
        let mut vs_true = Vec::new();
        for r in &test {
            if let Ok(p) = system.predict_workload(&r.workload, &r.cluster()) {
                vs_noisy.push(p.seconds / r.time_secs);
                vs_true.push(p.seconds / r.expected_secs);
            }
        }
        println!(
            "{:<28}{:>13.1}%{:>13.1}%",
            format!("{sigma:.2}"),
            100.0 * mean_abs_err(&vs_noisy),
            100.0 * mean_abs_err(&vs_true)
        );
    }
    println!("\nExpected shape: error vs the noisy measurement is bounded below by");
    println!("the noise itself (≈ E|lognormal−1|), while error vs the true time");
    println!("grows more slowly — the regression averages noise out across the");
    println!("trace until σ dominates the architecture signal.");
}
