//! Fig. 6: impact of DNN-architecture features on prediction accuracy.
//!
//! Compares second-order polynomial regression with different DNN feature
//! sets: #params, #layers, layers+params, GHN embedding, and
//! GHN+layers+params (the paper finds GHN alone best: combining adds
//! duplicate internal representations). Reported as mean Predicted/Actual
//! ratio per dataset — closer to 1 is better.
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin fig06_feature_ablation
//! ```

use pddl_bench::*;
use pddl_ddlsim::TraceRecord;
use pddl_ghn::train::TrainConfig;
use pddl_ghn::{Ghn, GhnConfig, GhnTrainer, SynthGenerator};
use pddl_regress::{Regression, Regressor, StandardScaler};
use pddl_tensor::{Matrix, Rng};
use pddl_zoo::{build_model, dataset::dataset_by_name, ModelSpec};
use std::collections::HashMap;

#[derive(Clone, Copy, Debug, PartialEq)]
enum FeatSet {
    Params,
    Layers,
    LayersParams,
    Ghn,
    GhnPlusAll,
}

impl FeatSet {
    fn label(self) -> &'static str {
        match self {
            FeatSet::Params => "#params",
            FeatSet::Layers => "#layers",
            FeatSet::LayersParams => "layers+params",
            FeatSet::Ghn => "GHN",
            FeatSet::GhnPlusAll => "GHN+layers+params",
        }
    }
}

fn main() {
    println!("=== Fig. 6: DNN feature ablation (PR degree 2, closer to 1 is better) ===\n");

    for dataset in ["cifar10", "tiny-imagenet"] {
        let records = dataset_trace(dataset);
        let (train, test) = split_records(&records, 0.8, 0xF6);
        let ds = dataset_by_name(dataset).unwrap();

        // Per-model descriptors.
        let mut specs: HashMap<String, ModelSpec> = HashMap::new();
        for name in pddl_zoo::model_names() {
            specs.insert(
                name.to_string(),
                ModelSpec::from_graph(&build_model(name, ds).unwrap()),
            );
        }
        // One GHN per dataset, meta-trained on its synthetic distribution.
        eprintln!("[fig06] training GHN for {dataset} ...");
        let mut rng = Rng::new(0xF6);
        let mut ghn = Ghn::new(GhnConfig::default(), &mut rng);
        let mut gen = SynthGenerator::new(ds.clone(), 0xF6);
        GhnTrainer::new(TrainConfig::default()).train(&mut ghn, &mut gen);
        let mut embeds: HashMap<String, Vec<f32>> = HashMap::new();
        for name in pddl_zoo::model_names() {
            embeds.insert(
                name.to_string(),
                ghn.embed_graph(&build_model(name, ds).unwrap()),
            );
        }

        let features = |r: &TraceRecord, set: FeatSet| -> Vec<f32> {
            let s = &specs[&r.workload.model];
            let mut f: Vec<f32> = match set {
                FeatSet::Params => vec![((s.params as f64).log10()) as f32],
                FeatSet::Layers => vec![s.layers as f32 / 10.0],
                FeatSet::LayersParams => {
                    vec![s.layers as f32 / 10.0, ((s.params as f64).log10()) as f32]
                }
                FeatSet::Ghn => embeds[&r.workload.model].clone(),
                FeatSet::GhnPlusAll => {
                    let mut v = embeds[&r.workload.model].clone();
                    v.push(s.layers as f32 / 10.0);
                    v.push(((s.params as f64).log10()) as f32);
                    v
                }
            };
            let cf = r.cluster().feature_vector();
            f.extend(cf.iter().map(|&v| v as f32));
            f.push((r.workload.batch_size as f32).log10());
            f
        };

        println!("--- {dataset} ---");
        print_header(&["feature set", "mean ratio", "|ratio-1|"]);
        for set in [
            FeatSet::Params,
            FeatSet::Layers,
            FeatSet::LayersParams,
            FeatSet::Ghn,
            FeatSet::GhnPlusAll,
        ] {
            let d = features(&train[0], set).len();
            let mut x = Matrix::zeros(train.len(), d);
            let mut y = Vec::new();
            for (i, r) in train.iter().enumerate() {
                x.set_row(i, &features(r, set));
                y.push(r.time_secs.log10() as f32);
            }
            let scaler = StandardScaler::fit(&x);
            let mut model = Regression::polynomial(2, 1e-2);
            model.fit(&scaler.transform(&x), &y);
            let ratios: Vec<f64> = test
                .iter()
                .map(|r| {
                    let xr = Matrix::from_vec(1, d, features(r, set));
                    let p = 10f64.powf(model.predict(&scaler.transform(&xr))[0] as f64);
                    p / r.time_secs
                })
                .collect();
            println!(
                "{:<28}{:>14.3}{:>13.1}%",
                set.label(),
                mean(&ratios),
                100.0 * mean_abs_err(&ratios)
            );
        }
        println!();
    }
    println!("(paper: GHN 96.4% / 97.4% lower error than #layers / #params;");
    println!(" combining GHN with layers/params does not improve it)");
}
