//! Fig. 9 (a, b) + headline numbers: per-workload prediction-error ratios of
//! PredictDDL vs. Ernest vs. actual training time, for the Table II
//! workloads; plus the paper's aggregate claims (≈8% mean relative error,
//! 9.8× lower error than Ernest).
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin fig09_vs_ernest
//! ```

use pddl_bench::*;
use pddl_cluster::ClusterState;
use pddl_ddlsim::{SimConfig, Simulator};
use pddl_ernest::design::{default_candidates, greedy_a_optimal};
use pddl_ernest::model::{ErnestModel, ErnestSample};

/// Ernest in its *native* NSDI mode: per workload, probe a handful of
/// designed small-scale runs (simulated) and fit NNLS — the fairest version
/// of the baseline, at the cost of re-collecting for every workload.
fn per_workload_ernest(sim: &Simulator, model: &str, dataset: &str) -> ErnestModel {
    let w = pddl_ddlsim::Workload::new(model, dataset, 128, 1);
    let class = class_for_dataset(dataset);
    let candidates = default_candidates(8);
    let picks = greedy_a_optimal(&candidates, 7);
    let samples: Vec<ErnestSample> = picks
        .iter()
        .map(|&i| {
            let c = candidates[i];
            let cluster = ClusterState::homogeneous(class, c.machines);
            let secs = sim.expected_time(&w, &cluster).unwrap_or(f64::INFINITY) * c.scale;
            ErnestSample { scale: c.scale, machines: c.machines, time_secs: secs }
        })
        .collect();
    ErnestModel::fit(&samples)
}

fn main() {
    let records = standard_trace();
    println!("trace: {} records (31 models × 2 datasets × 1–20 servers)", records.len());
    let (train, test) = split_records(&records, 0.8, 0x916);

    let system = train_system(&train, 0x916);
    let ernest = pooled_ernest(&train);

    println!("\n=== Fig. 9: Predicted/Actual ratio per workload (closer to 1 is better) ===\n");
    print_header(&["workload", "PredictDDL", "Ernest", "Ernest/wk", "samples"]);

    let sim = Simulator::new(SimConfig::default());
    let mut pddl_errs = Vec::new();
    let mut ernest_errs = Vec::new();
    let mut ernest_pw_errs = Vec::new();
    for (model, dataset) in table2_workloads() {
        let pddl_ratios = workload_ratios(&test, model, dataset, |r| {
            system
                .predict_workload(&r.workload, &r.cluster())
                .map(|p| p.seconds)
                .unwrap_or(f64::NAN)
        });
        let ernest_ratios = workload_ratios(&test, model, dataset, |r| {
            ernest[&r.workload.dataset.to_ascii_lowercase()].predict(1.0, r.num_servers)
        });
        // Extension column: Ernest given its full NSDI workflow per
        // workload (designed probes, extrapolation), scaled by epochs.
        let pw_model = per_workload_ernest(&sim, model, dataset);
        let ernest_pw_ratios = workload_ratios(&test, model, dataset, |r| {
            pw_model.predict(1.0, r.num_servers) * r.workload.epochs as f64
        });
        if pddl_ratios.is_empty() {
            println!("{:<28} (no test samples at this split; skipped)", format!("{model}@{dataset}"));
            continue;
        }
        println!(
            "{:<28}{:>14.3}{:>14.3}{:>14.3}{:>14}",
            format!("{model}@{dataset}"),
            mean(&pddl_ratios),
            mean(&ernest_ratios),
            mean(&ernest_pw_ratios),
            pddl_ratios.len()
        );
        pddl_errs.push(mean_abs_err(&pddl_ratios));
        ernest_errs.push(mean_abs_err(&ernest_ratios));
        ernest_pw_errs.push(mean_abs_err(&ernest_pw_ratios));
    }

    let pddl_mean = mean(&pddl_errs);
    let ernest_mean = mean(&ernest_errs);
    let ernest_pw_mean = mean(&ernest_pw_errs);
    println!("\n=== headline aggregates over Table II workloads ===");
    println!("PredictDDL mean |ratio−1|          : {:6.1}%  (paper: ≈8%)", 100.0 * pddl_mean);
    println!("Ernest (pooled) mean |ratio−1|     : {:6.1}%", 100.0 * ernest_mean);
    println!("Ernest (per-workload) |ratio−1|    : {:6.1}%  (extension: full NSDI workflow,", 100.0 * ernest_pw_mean);
    println!("                                       re-collecting probes per workload)");
    println!(
        "error-reduction vs pooled Ernest   : {:6.1}×  (paper: 9.8×)",
        ernest_mean / pddl_mean
    );
    println!(
        "error-reduction vs per-wk Ernest   : {:6.1}×",
        ernest_pw_mean / pddl_mean
    );

    // Also report over the entire test split (not just Table II).
    let mut all_pddl = Vec::new();
    let mut all_ernest = Vec::new();
    for r in &test {
        if let Ok(p) = system.predict_workload(&r.workload, &r.cluster()) {
            all_pddl.push(p.seconds / r.time_secs);
            all_ernest.push(
                ernest[&r.workload.dataset.to_ascii_lowercase()].predict(1.0, r.num_servers)
                    / r.time_secs,
            );
        }
    }
    println!("\nfull test split ({} points):", all_pddl.len());
    println!("PredictDDL mean |ratio−1| : {:6.1}%", 100.0 * mean_abs_err(&all_pddl));
    println!("Ernest     mean |ratio−1| : {:6.1}%", 100.0 * mean_abs_err(&all_ernest));
}
