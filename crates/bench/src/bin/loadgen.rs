//! `pddl-loadgen` — serving-capacity benchmark for the bounded controller.
//!
//! Drives K concurrent clients against the serving core in two phases and
//! writes `BENCH_serve.json` (see `pddl_bench::report` for the schema):
//!
//! 1. **low_rate** — the fleet is paced to `--low-rps` with client
//!    start times staggered across one pacing interval; the queue never
//!    fills, so the report must show zero sheds;
//! 2. **saturate** — unpaced, with a 4× fleet (closed-loop clients
//!    self-regulate down to `workers + queue_depth` in flight, so the
//!    base fleet alone barely sheds); in-flight demand durably exceeds
//!    capacity and the report must show nonzero sheds.
//!
//! Two transports:
//!
//! * `--transport inproc` (default): clients call
//!   [`predictddl::ServePool`] directly. No sockets, no JSON, no serde at
//!   runtime — this is the mode the offline build container runs to
//!   produce the committed baseline, and it isolates the serving core's
//!   own overhead.
//! * `--transport tcp`: a full controller is served on an ephemeral port
//!   and clients use [`predictddl::ControllerClient::connect_resilient`],
//!   measuring the wire stack end-to-end (retries and overload replies
//!   included). Requires a network-enabled environment (CI).
//!
//! ```text
//! pddl-loadgen [--transport inproc|tcp] [--clients 8] [--requests 100]
//!              [--workers 2] [--queue-depth 4] [--deadline-ms 5000]
//!              [--low-rps 50] [--out BENCH_serve.json]
//! ```

use pddl_bench::report::{summarize, PhaseReport, ServeReport};
use pddl_cluster::retry::RetryPolicy;
use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::Workload;
use predictddl::serve::Latch;
use predictddl::{
    Controller, ControllerClient, JobOutcome, OfflineTrainer, PredictDdl, PredictionRequest,
    ServeConfig, ServePool, SubmitError,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);
    let transport = flags.get("transport").map_or("inproc", |s| s.as_str()).to_string();
    let clients: usize = flag(&flags, "clients", 8);
    let requests: usize = flag(&flags, "requests", 100);
    let workers: usize = flag(&flags, "workers", 2);
    let queue_depth: usize = flag(&flags, "queue-depth", 4);
    let deadline_ms: u64 = flag(&flags, "deadline-ms", 5000);
    let low_rps: f64 = flag(&flags, "low-rps", 50.0);
    let out = flags.get("out").map_or("BENCH_serve.json", |s| s.as_str()).to_string();

    let config = ServeConfig {
        workers,
        queue_depth,
        request_deadline: Duration::from_millis(deadline_ms),
        ..ServeConfig::default()
    };

    eprintln!("training tiny system for the benchmark workload ...");
    let system = OfflineTrainer::tiny().train_full();
    let req = bench_request();

    eprintln!(
        "loadgen: transport={transport} clients={clients} requests={requests} \
         workers={workers} queue_depth={queue_depth}"
    );
    let phases = match transport.as_str() {
        "inproc" => run_inproc(Arc::new(system), &req, config, clients, requests, low_rps),
        "tcp" => run_tcp(system, &req, config, clients, requests, low_rps),
        other => {
            eprintln!("error: unknown --transport '{other}' (inproc|tcp)");
            std::process::exit(2);
        }
    };

    let snapshot = pddl_telemetry::snapshot();
    let telemetry = vec![
        ("controller.requests_shed", counter(&snapshot, "controller.requests_shed")),
        ("controller.requests_expired", counter(&snapshot, "controller.requests_expired")),
        ("controller.queue_depth_peak", gauge(&snapshot, "controller.queue_depth_peak")),
        ("controller_client.retries", counter(&snapshot, "controller_client.retries")),
        ("controller_client.overloads", counter(&snapshot, "controller_client.overloads")),
    ];
    let report = ServeReport {
        transport,
        workers,
        queue_depth,
        clients,
        requests_per_client: requests,
        deadline_ms,
        retry_after_ms: config.retry_after_ms,
        phases,
        telemetry: telemetry.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    };
    for p in &report.phases {
        eprintln!(
            "phase {}: {} completed / {} requests, {} shed, {} expired, \
             {:.0} req/s, p50={}us p95={}us p99={}us",
            p.name, p.completed, p.requests, p.shed, p.expired, p.throughput_rps,
            p.latency.p50_us, p.latency.p95_us, p.latency.p99_us,
        );
    }
    std::fs::write(&out, report.render()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

/// The fixed benchmark workload: a mid-sized zoo model on the dataset the
/// tiny trainer covers.
fn bench_request() -> PredictionRequest {
    PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::homogeneous(ServerClass::GpuP100, 4),
    )
}

/// Per-phase accumulator shared by the client fleet.
#[derive(Default)]
struct Tally {
    completed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl Tally {
    fn record_latency(&self, t0: Instant) {
        let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).push(us);
    }

    fn into_phase(self, name: &str, target_rps: f64, duration: Duration) -> PhaseReport {
        let completed = self.completed.load(Ordering::Relaxed);
        let shed = self.shed.load(Ordering::Relaxed);
        let expired = self.expired.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let mut latencies =
            self.latencies_us.into_inner().unwrap_or_else(|e| e.into_inner());
        let secs = duration.as_secs_f64().max(1e-9);
        PhaseReport {
            name: name.to_string(),
            target_rps,
            duration_secs: secs,
            requests: completed + shed + expired + failed,
            completed,
            shed,
            expired,
            failed,
            retries: self.retries.load(Ordering::Relaxed),
            throughput_rps: completed as f64 / secs,
            latency: summarize(&mut latencies),
        }
    }
}

/// The two benchmark phases: `(name, rps, fleet multiplier)`. The
/// saturation fleet is widened because closed-loop clients that honor
/// the shed back-off settle at `workers + queue_depth` in flight — a
/// base-sized fleet would demonstrate convergence, not shedding.
const PHASES: [(&str, bool, usize); 2] = [("low_rate", true, 1), ("saturate", false, 4)];

fn phase_plan(low_rps: f64) -> [(&'static str, f64, usize); 2] {
    PHASES.map(|(name, paced, mult)| (name, if paced { low_rps } else { 0.0 }, mult))
}

/// Sleeps long enough to hold `per_client_interval` between request
/// starts (no-op when unpaced).
fn pace(t0: Instant, per_client_interval: Duration) {
    if per_client_interval.is_zero() {
        return;
    }
    let elapsed = t0.elapsed();
    if elapsed < per_client_interval {
        std::thread::sleep(per_client_interval - elapsed);
    }
}

/// Spreads client start times uniformly across one pacing interval so a
/// paced fleet doesn't submit in phase-aligned bursts (which would shed
/// even at a trivially low aggregate rate).
fn stagger(client: usize, fleet: usize, interval: Duration) {
    if !interval.is_zero() && fleet > 0 {
        std::thread::sleep(interval.mul_f64(client as f64 / fleet as f64));
    }
}

/// In-process phases: the fleet submits directly to a [`ServePool`], one
/// job per request, waiting on a per-request latch like the controller's
/// readers do. Sheds back off by the pool's own `retry_after_ms` hint —
/// the same contract resilient TCP clients follow.
fn run_inproc(
    system: Arc<PredictDdl>,
    req: &PredictionRequest,
    config: ServeConfig,
    clients: usize,
    requests: usize,
    low_rps: f64,
) -> Vec<PhaseReport> {
    let pool = Arc::new(ServePool::start(config));
    let mut phases = Vec::new();
    for (name, rps, mult) in phase_plan(low_rps) {
        let fleet = clients * mult;
        let tally = Arc::new(Tally::default());
        let interval = if rps > 0.0 {
            Duration::from_secs_f64(fleet as f64 / rps)
        } else {
            Duration::ZERO
        };
        let t_phase = Instant::now();
        std::thread::scope(|s| {
            for c in 0..fleet {
                let pool = Arc::clone(&pool);
                let tally = Arc::clone(&tally);
                let system = Arc::clone(&system);
                let req = req.clone();
                s.spawn(move || {
                    stagger(c, fleet, interval);
                    for _ in 0..requests {
                        let t0 = Instant::now();
                        let latch = Arc::new(Latch::new());
                        let outcome: Arc<Mutex<Option<JobOutcome>>> =
                            Arc::new(Mutex::new(None));
                        let submit = {
                            let latch = Arc::clone(&latch);
                            let outcome = Arc::clone(&outcome);
                            let system = Arc::clone(&system);
                            let req = req.clone();
                            pool.try_submit(move |o| {
                                if o == JobOutcome::Run {
                                    let _ = system.predict(&req);
                                }
                                *outcome.lock().unwrap_or_else(|e| e.into_inner()) =
                                    Some(o);
                                latch.open();
                            })
                        };
                        match submit {
                            Ok(()) => {
                                latch.wait();
                                let o = outcome
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .take();
                                match o {
                                    Some(JobOutcome::Run) => {
                                        tally.completed.fetch_add(1, Ordering::Relaxed);
                                        tally.record_latency(t0);
                                    }
                                    _ => {
                                        tally.expired.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Err(SubmitError::Full) => {
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                                tally.retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(
                                    config.retry_after_ms,
                                ));
                            }
                            Err(SubmitError::Closed) => {
                                tally.failed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                        pace(t0, interval);
                    }
                });
            }
        });
        let tally = Arc::try_unwrap(tally).unwrap_or_else(|_| unreachable!());
        phases.push(tally.into_phase(name, rps, t_phase.elapsed()));
    }
    pool.shutdown();
    phases
}

/// TCP phases: a real controller on an ephemeral port, resilient clients
/// with tight backoff. Plain (non-resilient) round trips are used so a
/// shed surfaces as one counted overload instead of being retried
/// invisibly; resilient convergence is covered by `tests/load.rs`.
fn run_tcp(
    system: PredictDdl,
    req: &PredictionRequest,
    config: ServeConfig,
    clients: usize,
    requests: usize,
    low_rps: f64,
) -> Vec<PhaseReport> {
    let controller =
        Controller::serve_with("127.0.0.1:0", system, config).expect("bind controller");
    let addr = controller.addr();
    let mut phases = Vec::new();
    for (name, rps, mult) in phase_plan(low_rps) {
        let fleet = clients * mult;
        let tally = Arc::new(Tally::default());
        let interval = if rps > 0.0 {
            Duration::from_secs_f64(fleet as f64 / rps)
        } else {
            Duration::ZERO
        };
        let t_phase = Instant::now();
        std::thread::scope(|s| {
            for c in 0..fleet {
                let tally = Arc::clone(&tally);
                let req = req.clone();
                s.spawn(move || {
                    stagger(c, fleet, interval);
                    let policy = RetryPolicy::fast(0xBEEF ^ c as u64);
                    let mut client = match ControllerClient::connect_with_timeout(
                        addr,
                        policy.attempt_timeout,
                    ) {
                        Ok(c) => c,
                        Err(_) => {
                            tally.failed.fetch_add(requests as u64, Ordering::Relaxed);
                            return;
                        }
                    };
                    for _ in 0..requests {
                        let t0 = Instant::now();
                        match client.predict(&req) {
                            Ok(_) => {
                                tally.completed.fetch_add(1, Ordering::Relaxed);
                                tally.record_latency(t0);
                            }
                            Err(e)
                                if pddl_cluster::retry::overload_retry_hint(&e)
                                    .is_some() =>
                            {
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                                tally.retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(
                                    config.retry_after_ms,
                                ));
                            }
                            Err(_) => {
                                tally.failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        pace(t0, interval);
                    }
                });
            }
        });
        let tally = Arc::try_unwrap(tally).unwrap_or_else(|_| unreachable!());
        phases.push(tally.into_phase(name, rps, t_phase.elapsed()));
    }
    drop(controller);
    phases
}

fn counter(snapshot: &pddl_telemetry::Snapshot, name: &str) -> u64 {
    snapshot.counter(name).unwrap_or(0)
}

fn gauge(snapshot: &pddl_telemetry::Snapshot, name: &str) -> u64 {
    snapshot.gauge(name).unwrap_or(0).max(0) as u64
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
