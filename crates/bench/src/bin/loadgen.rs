//! `pddl-loadgen` — serving-capacity benchmark for the bounded controller.
//!
//! Drives K concurrent clients against the serving core in two phases and
//! writes `BENCH_serve.json` (see `pddl_bench::report` for the schema).
//! Before the phases, two dedicated closed-loop bursts (one untraced, one
//! with a trace context on every request) measure the flight recorder's
//! throughput overhead — reported as `tracing.overhead_ratio` and gated
//! at ≤ 1.05 on the committed baseline by the bench schema tier. The
//! in-proc phases themselves run fully traced, so the report's `stages`
//! block carries real per-stage (queue wait, embed cache, regress)
//! percentiles from the `trace.stage.*` histograms, and every shed is
//! bucketed by typed reason in `shed_reasons`. The phases:
//!
//! 1. **low_rate** — the fleet is paced to `--low-rps` with client
//!    start times staggered across one pacing interval; the queue never
//!    fills, so the report must show zero sheds;
//! 2. **saturate** — unpaced, with a 4× fleet (closed-loop clients
//!    self-regulate down to `workers + queue_depth` in flight, so the
//!    base fleet alone barely sheds); in-flight demand durably exceeds
//!    capacity and the report must show nonzero sheds.
//!
//! Three transports:
//!
//! * `--transport inproc` (default): clients call
//!   [`predictddl::ServePool`] directly. No sockets, no JSON, no serde at
//!   runtime — this is the mode the offline build container runs to
//!   produce the committed baseline, and it isolates the serving core's
//!   own overhead.
//! * `--transport tcp`: a full controller is served on an ephemeral port
//!   and clients use [`predictddl::ControllerClient::connect_resilient`],
//!   measuring the wire stack end-to-end (retries and overload replies
//!   included). Requires a network-enabled environment (CI).
//! * `--transport fleet`: the sharded-serving benchmark — N in-process
//!   shard pools behind the router's real [`pddl_router::HashRing`] and
//!   [`pddl_router::routing_key`], writing `BENCH_shard.json` instead
//!   (scaling curve at 1/2/4 shards, ring-rebalance cost, and a
//!   shard-kill phase with exactly-once accounting). Each request pays a
//!   `--service-us` floor, modelling shards whose capacity is
//!   accelerator/IO-bound, so fleet scaling is measurable on the
//!   single-core offline runner. Like `inproc`, it needs no sockets and
//!   no serde — it is the mode that produces the committed
//!   `BENCH_shard.json` baseline.
//!
//! ```text
//! pddl-loadgen [--transport inproc|tcp] [--clients 8] [--requests 100]
//!              [--workers 2] [--queue-depth 4] [--deadline-ms 5000]
//!              [--low-rps 50] [--out BENCH_serve.json]
//! pddl-loadgen --transport fleet [--clients 4] [--requests 50]
//!              [--queue-depth 8] [--service-us 4000] [--vnodes 128]
//!              [--keyspace 256] [--out BENCH_shard.json]
//! ```

use pddl_bench::report::{
    summarize, KillSummary, PhaseReport, PrecisionSummary, RebalanceStep, ScalingPoint,
    ServeReport, ShardReport, ShedReasons, StageSummary, TracingSummary,
};
use pddl_ghn::Schedule;
use pddl_zoo::{build_model, dataset::dataset_by_name};
use pddl_router::{routing_key, HashRing};
use pddl_cluster::retry::{RetryPolicy, ShedReason};
use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::Workload;
use pddl_telemetry::trace::stages;
use pddl_telemetry::TraceContext;
use predictddl::serve::Latch;
use predictddl::{
    Controller, ControllerClient, JobOutcome, OfflineTrainer, PredictDdl, PredictionRequest,
    ServeConfig, ServePool, SubmitError,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);
    let transport = flags.get("transport").map_or("inproc", |s| s.as_str()).to_string();
    if transport == "fleet" {
        run_fleet(&flags);
        return;
    }
    let clients: usize = flag(&flags, "clients", 8);
    let requests: usize = flag(&flags, "requests", 100);
    let workers: usize = flag(&flags, "workers", 2);
    let queue_depth: usize = flag(&flags, "queue-depth", 4);
    let deadline_ms: u64 = flag(&flags, "deadline-ms", 5000);
    let low_rps: f64 = flag(&flags, "low-rps", 50.0);
    let out = flags.get("out").map_or("BENCH_serve.json", |s| s.as_str()).to_string();

    let config = ServeConfig {
        workers,
        queue_depth,
        request_deadline: Duration::from_millis(deadline_ms),
        ..ServeConfig::default()
    };

    eprintln!("training tiny system for the benchmark workload ...");
    let mut system = OfflineTrainer::tiny().train_full();
    let req = bench_request();
    // bf16-vs-f32 embed-path measurement runs on the freshly trained
    // system before the load phases, restoring f32 for them.
    let precision = measure_precision(&mut system, &req);
    eprintln!(
        "precision: f32 embed {:.0}us bf16 embed {:.0}us (ratio {:.3}, \
         rel prediction delta {:.2e})",
        precision.f32_embed_us,
        precision.bf16_embed_us,
        precision.latency_ratio,
        precision.max_rel_prediction_err
    );
    let system = Arc::new(system);

    eprintln!(
        "loadgen: transport={transport} clients={clients} requests={requests} \
         workers={workers} queue_depth={queue_depth}"
    );
    // Tracing-overhead bursts run first, on a dedicated pool, so the two
    // measurements see identical cache state regardless of transport.
    let tracing = measure_tracing_overhead(Arc::clone(&system), &req, config, requests);
    eprintln!(
        "tracing overhead: {:.0} rps untraced vs {:.0} rps traced (ratio {:.3})",
        tracing.untraced_rps, tracing.traced_rps, tracing.overhead_ratio
    );
    let phases = match transport.as_str() {
        "inproc" => run_inproc(system, &req, config, clients, requests, low_rps),
        "tcp" => {
            let system = Arc::try_unwrap(system).unwrap_or_else(|_| {
                eprintln!("error: serving core still referenced after overhead bursts");
                std::process::exit(1);
            });
            run_tcp(system, &req, config, clients, requests, low_rps)
        }
        other => {
            eprintln!("error: unknown --transport '{other}' (inproc|tcp|fleet)");
            std::process::exit(2);
        }
    };

    let snapshot = pddl_telemetry::snapshot();
    let telemetry = vec![
        ("controller.requests_shed", counter(&snapshot, "controller.requests_shed")),
        ("controller.requests_expired", counter(&snapshot, "controller.requests_expired")),
        ("controller.traced_requests", counter(&snapshot, "controller.traced_requests")),
        ("controller.queue_depth_peak", gauge(&snapshot, "controller.queue_depth_peak")),
        ("controller_client.retries", counter(&snapshot, "controller_client.retries")),
        ("controller_client.overloads", counter(&snapshot, "controller_client.overloads")),
    ];
    // The serving pipeline as the flight recorder saw it: per-stage
    // percentiles out of the `trace.stage.*` histograms (ns → µs).
    let stage_summaries = [
        stages::QUEUE_WAIT,
        stages::EMBED_CACHE,
        stages::GHN_EMBED,
        stages::REGRESS,
        stages::SERIALIZE,
    ]
    .iter()
    .map(|name| {
        let s = snapshot
            .histogram(&format!("trace.stage.{name}"))
            .map(|h| StageSummary {
                count: h.count,
                p50_us: h.p50 / 1000,
                p95_us: h.p95 / 1000,
                p99_us: h.p99 / 1000,
            })
            .unwrap_or_default();
        (name.to_string(), s)
    })
    .collect();
    let report = ServeReport {
        transport,
        workers,
        queue_depth,
        clients,
        requests_per_client: requests,
        deadline_ms,
        retry_after_ms: config.retry_after_ms,
        phases,
        stages: stage_summaries,
        tracing,
        precision,
        telemetry: telemetry.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    };
    for p in &report.phases {
        eprintln!(
            "phase {}: {} completed / {} requests, {} shed, {} expired, \
             {:.0} req/s, p50={}us p95={}us p99={}us",
            p.name, p.completed, p.requests, p.shed, p.expired, p.throughput_rps,
            p.latency.p50_us, p.latency.p95_us, p.latency.p99_us,
        );
    }
    std::fs::write(&out, report.render()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

/// The bf16-vs-f32 measurement: median embed latency on the benchmark
/// graph at both precisions via the live registry's GHN, plus the
/// relative shift of the full prediction when the system is flipped to
/// bf16 (the embedding cache is invalidated on every flip, so both
/// predictions are real computes). Leaves the system at f32 for the load
/// phases.
fn measure_precision(system: &mut PredictDdl, req: &PredictionRequest) -> PrecisionSummary {
    const REPS: usize = 5;
    let ds = dataset_by_name(&req.dataset).expect("benchmark dataset registered");
    let graph = build_model("resnet18", ds).expect("resnet18 in the zoo");
    let embed_us = |system: &PredictDdl| {
        let ghn = system
            .registry
            .get(&req.dataset)
            .expect("benchmark dataset trained");
        let sched = Schedule::new(&graph, ghn.cfg.s_max);
        std::hint::black_box(ghn.embed_with_schedule(&graph, &sched)); // warmup
        let mut samples: Vec<f64> = (0..REPS)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(ghn.embed_with_schedule(&graph, &sched));
                start.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        median(&mut samples)
    };

    let f32_secs = system.predict(req).expect("f32 predict").seconds;
    let f32_embed_us = embed_us(system);
    system.set_precision(pddl_tensor::Precision::Bf16);
    let bf16_secs = system.predict(req).expect("bf16 predict").seconds;
    let bf16_embed_us = embed_us(system);
    system.set_precision(pddl_tensor::Precision::F32);

    PrecisionSummary {
        f32_embed_us,
        bf16_embed_us,
        latency_ratio: f32_embed_us / bf16_embed_us,
        max_rel_prediction_err: (bf16_secs - f32_secs).abs() / f32_secs.abs().max(1.0),
    }
}

/// The fixed benchmark workload: a mid-sized zoo model on the dataset the
/// tiny trainer covers.
fn bench_request() -> PredictionRequest {
    PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::homogeneous(ServerClass::GpuP100, 4),
    )
}

/// Per-phase accumulator shared by the client fleet.
#[derive(Default)]
struct Tally {
    completed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    rq_queue_full: AtomicU64,
    rq_deadline: AtomicU64,
    rq_connection_limit: AtomicU64,
    rq_draining: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl Tally {
    fn record_latency(&self, t0: Instant) {
        let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).push(us);
    }

    /// Buckets a typed rejection reason (unknown reasons go uncounted —
    /// they still show up in the coarse shed/failed totals).
    fn record_reason(&self, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => &self.rq_queue_full,
            ShedReason::Deadline => &self.rq_deadline,
            ShedReason::ConnectionLimit => &self.rq_connection_limit,
            ShedReason::Draining => &self.rq_draining,
            ShedReason::Unknown => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn into_phase(self, name: &str, target_rps: f64, duration: Duration) -> PhaseReport {
        let completed = self.completed.load(Ordering::Relaxed);
        let shed = self.shed.load(Ordering::Relaxed);
        let expired = self.expired.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let mut latencies =
            self.latencies_us.into_inner().unwrap_or_else(|e| e.into_inner());
        let secs = duration.as_secs_f64().max(1e-9);
        PhaseReport {
            name: name.to_string(),
            target_rps,
            duration_secs: secs,
            requests: completed + shed + expired + failed,
            completed,
            shed,
            shed_reasons: ShedReasons {
                queue_full: self.rq_queue_full.load(Ordering::Relaxed),
                deadline: self.rq_deadline.load(Ordering::Relaxed),
                connection_limit: self.rq_connection_limit.load(Ordering::Relaxed),
                draining: self.rq_draining.load(Ordering::Relaxed),
            },
            expired,
            failed,
            retries: self.retries.load(Ordering::Relaxed),
            throughput_rps: completed as f64 / secs,
            latency: summarize(&mut latencies),
        }
    }
}

/// The two benchmark phases: `(name, rps, fleet multiplier)`. The
/// saturation fleet is widened because closed-loop clients that honor
/// the shed back-off settle at `workers + queue_depth` in flight — a
/// base-sized fleet would demonstrate convergence, not shedding.
const PHASES: [(&str, bool, usize); 2] = [("low_rate", true, 1), ("saturate", false, 4)];

fn phase_plan(low_rps: f64) -> [(&'static str, f64, usize); 2] {
    PHASES.map(|(name, paced, mult)| (name, if paced { low_rps } else { 0.0 }, mult))
}

/// Sleeps long enough to hold `per_client_interval` between request
/// starts (no-op when unpaced).
fn pace(t0: Instant, per_client_interval: Duration) {
    if per_client_interval.is_zero() {
        return;
    }
    let elapsed = t0.elapsed();
    if elapsed < per_client_interval {
        std::thread::sleep(per_client_interval - elapsed);
    }
}

/// Spreads client start times uniformly across one pacing interval so a
/// paced fleet doesn't submit in phase-aligned bursts (which would shed
/// even at a trivially low aggregate rate).
fn stagger(client: usize, fleet: usize, interval: Duration) {
    if !interval.is_zero() && fleet > 0 {
        std::thread::sleep(interval.mul_f64(client as f64 / fleet as f64));
    }
}

/// In-process phases: the fleet submits directly to a [`ServePool`], one
/// job per request, waiting on a per-request latch like the controller's
/// readers do. Sheds back off by the pool's own `retry_after_ms` hint —
/// the same contract resilient TCP clients follow.
fn run_inproc(
    system: Arc<PredictDdl>,
    req: &PredictionRequest,
    config: ServeConfig,
    clients: usize,
    requests: usize,
    low_rps: f64,
) -> Vec<PhaseReport> {
    let pool = Arc::new(ServePool::start(config));
    let mut phases = Vec::new();
    for (name, rps, mult) in phase_plan(low_rps) {
        let fleet = clients * mult;
        let tally = Arc::new(Tally::default());
        let interval = if rps > 0.0 {
            Duration::from_secs_f64(fleet as f64 / rps)
        } else {
            Duration::ZERO
        };
        let t_phase = Instant::now();
        std::thread::scope(|s| {
            for c in 0..fleet {
                let pool = Arc::clone(&pool);
                let tally = Arc::clone(&tally);
                let system = Arc::clone(&system);
                let req = req.clone();
                s.spawn(move || {
                    stagger(c, fleet, interval);
                    for _ in 0..requests {
                        let t0 = Instant::now();
                        let latch = Arc::new(Latch::new());
                        let outcome: Arc<Mutex<Option<JobOutcome>>> =
                            Arc::new(Mutex::new(None));
                        // Every in-proc request carries a trace context,
                        // exactly like a header-carrying wire client — the
                        // committed baseline measures the traced hot path.
                        let ctx = TraceContext::root(next_trace_id());
                        let submit = {
                            let latch = Arc::clone(&latch);
                            let outcome = Arc::clone(&outcome);
                            let system = Arc::clone(&system);
                            let req = req.clone();
                            pool.try_submit_traced(Some(ctx), move |o| {
                                if o == JobOutcome::Run {
                                    let _ = system.predict_traced(&req, Some(ctx));
                                }
                                *outcome.lock().unwrap_or_else(|e| e.into_inner()) =
                                    Some(o);
                                latch.open();
                            })
                        };
                        match submit {
                            Ok(()) => {
                                latch.wait();
                                let o = outcome
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .take();
                                match o {
                                    Some(JobOutcome::Run) => {
                                        tally.completed.fetch_add(1, Ordering::Relaxed);
                                        tally.record_latency(t0);
                                    }
                                    _ => {
                                        tally.expired.fetch_add(1, Ordering::Relaxed);
                                        tally.record_reason(ShedReason::Deadline);
                                    }
                                }
                            }
                            Err(SubmitError::Full) => {
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                                tally.retries.fetch_add(1, Ordering::Relaxed);
                                tally.record_reason(ShedReason::QueueFull);
                                std::thread::sleep(Duration::from_millis(
                                    config.retry_after_ms,
                                ));
                            }
                            Err(SubmitError::Closed) => {
                                tally.failed.fetch_add(1, Ordering::Relaxed);
                                tally.record_reason(ShedReason::Draining);
                                break;
                            }
                        }
                        pace(t0, interval);
                    }
                });
            }
        });
        let tally = Arc::try_unwrap(tally).unwrap_or_else(|_| unreachable!());
        phases.push(tally.into_phase(name, rps, t_phase.elapsed()));
    }
    pool.shutdown();
    phases
}

/// Unique per-request trace ids for the in-proc fleet.
fn next_trace_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// One closed-loop burst against the pool: `fleet` clients each complete
/// `requests` predictions (sheds are retried without being counted), with
/// or without per-request trace contexts. Returns completed requests per
/// second of burst wall-clock.
fn run_burst(
    pool: &Arc<ServePool>,
    system: &Arc<PredictDdl>,
    req: &PredictionRequest,
    fleet: usize,
    requests: usize,
    traced: bool,
) -> f64 {
    let completed = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..fleet {
            let completed = &completed;
            let pool = Arc::clone(pool);
            let system = Arc::clone(system);
            let req = req.clone();
            s.spawn(move || {
                for _ in 0..requests {
                    let ctx = if traced {
                        Some(TraceContext::root(next_trace_id()))
                    } else {
                        None
                    };
                    loop {
                        let latch = Arc::new(Latch::new());
                        let ran = Arc::new(AtomicU64::new(0));
                        let submit = {
                            let latch = Arc::clone(&latch);
                            let ran = Arc::clone(&ran);
                            let system = Arc::clone(&system);
                            let req = req.clone();
                            pool.try_submit_traced(ctx, move |o| {
                                if o == JobOutcome::Run {
                                    let _ = system.predict_traced(&req, ctx);
                                    ran.store(1, Ordering::Relaxed);
                                }
                                latch.open();
                            })
                        };
                        match submit {
                            Ok(()) => {
                                latch.wait();
                                if ran.load(Ordering::Relaxed) == 1 {
                                    completed.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            Err(SubmitError::Full) => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(SubmitError::Closed) => return,
                        }
                    }
                }
            });
        }
    });
    completed.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Median of a throughput sample (sorts in place; 0 when empty).
fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[xs.len() / 2]
}

/// The tracing-overhead measurement: a dedicated pool, a warmup pass to
/// populate the embedding cache, then five interleaved rounds of an
/// untraced and a traced burst of identical shape, reduced by median.
/// Interleaving cancels slow environment drift (CPU-quota throttling,
/// thermal decay) that would otherwise bias whichever mode ran second;
/// the median rejects one-off scheduler stalls. The fleet is sized to
/// `workers + queue_depth` so the closed loop sits exactly at capacity —
/// the comparison stresses the recorder's hot path (span recording on
/// every queue wait, cache probe, and regression) rather than admission
/// churn.
fn measure_tracing_overhead(
    system: Arc<PredictDdl>,
    req: &PredictionRequest,
    config: ServeConfig,
    requests: usize,
) -> TracingSummary {
    const ROUNDS: usize = 5;
    let pool = Arc::new(ServePool::start(config));
    let fleet = (config.workers.max(1) + config.queue_depth).max(1);
    let per_client = requests.max(250);
    run_burst(&pool, &system, req, 1, 8, false);
    let mut untraced = Vec::with_capacity(ROUNDS);
    let mut traced = Vec::with_capacity(ROUNDS);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        // Alternate which mode goes first so a monotone slowdown across
        // the measurement biases neither mode.
        let (u, t) = if round % 2 == 0 {
            let u = run_burst(&pool, &system, req, fleet, per_client, false);
            (u, run_burst(&pool, &system, req, fleet, per_client, true))
        } else {
            let t = run_burst(&pool, &system, req, fleet, per_client, true);
            (run_burst(&pool, &system, req, fleet, per_client, false), t)
        };
        untraced.push(u);
        traced.push(t);
        if t > 0.0 {
            // Each round's two bursts are adjacent in time, so their
            // ratio is immune to drift that spans rounds.
            ratios.push(u / t);
        }
    }
    pool.shutdown();
    TracingSummary {
        traced_rps: median(&mut traced),
        untraced_rps: median(&mut untraced),
        overhead_ratio: median(&mut ratios),
    }
}

/// TCP phases: a real controller on an ephemeral port, resilient clients
/// with tight backoff. Plain (non-resilient) round trips are used so a
/// shed surfaces as one counted overload instead of being retried
/// invisibly; resilient convergence is covered by `tests/load.rs`.
fn run_tcp(
    system: PredictDdl,
    req: &PredictionRequest,
    config: ServeConfig,
    clients: usize,
    requests: usize,
    low_rps: f64,
) -> Vec<PhaseReport> {
    let controller =
        Controller::serve_with("127.0.0.1:0", system, config).expect("bind controller");
    let addr = controller.addr();
    let mut phases = Vec::new();
    for (name, rps, mult) in phase_plan(low_rps) {
        let fleet = clients * mult;
        let tally = Arc::new(Tally::default());
        let interval = if rps > 0.0 {
            Duration::from_secs_f64(fleet as f64 / rps)
        } else {
            Duration::ZERO
        };
        let t_phase = Instant::now();
        std::thread::scope(|s| {
            for c in 0..fleet {
                let tally = Arc::clone(&tally);
                let req = req.clone();
                s.spawn(move || {
                    stagger(c, fleet, interval);
                    let policy = RetryPolicy::fast(0xBEEF ^ c as u64);
                    let mut client = match ControllerClient::connect_with_timeout(
                        addr,
                        policy.attempt_timeout,
                    ) {
                        Ok(c) => c,
                        Err(_) => {
                            tally.failed.fetch_add(requests as u64, Ordering::Relaxed);
                            return;
                        }
                    };
                    for _ in 0..requests {
                        let t0 = Instant::now();
                        match client.predict(&req) {
                            Ok(_) => {
                                tally.completed.fetch_add(1, Ordering::Relaxed);
                                tally.record_latency(t0);
                            }
                            Err(e)
                                if pddl_cluster::retry::overload_retry_hint(&e)
                                    .is_some() =>
                            {
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                                tally.retries.fetch_add(1, Ordering::Relaxed);
                                if let Some(r) = pddl_cluster::retry::overload_reason(&e) {
                                    tally.record_reason(r);
                                }
                                std::thread::sleep(Duration::from_millis(
                                    config.retry_after_ms,
                                ));
                            }
                            Err(_) => {
                                tally.failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        pace(t0, interval);
                    }
                });
            }
        });
        let tally = Arc::try_unwrap(tally).unwrap_or_else(|_| unreachable!());
        phases.push(tally.into_phase(name, rps, t_phase.elapsed()));
    }
    drop(controller);
    phases
}

/// Live membership for the in-proc fleet: the router's real ring plus a
/// dead-set, behind one lock with an epoch that bumps on every change —
/// the same discipline `pddl_router::Router` applies to TCP shards.
struct Fleet {
    pools: Vec<Arc<ServePool>>,
    state: Mutex<FleetState>,
}

struct FleetState {
    epoch: u64,
    ring: HashRing,
    dead: Vec<bool>,
}

impl Fleet {
    fn new(shards: usize, vnodes: u32, config: ServeConfig) -> Self {
        let ids: Vec<u64> = (0..shards as u64).collect();
        Self {
            pools: (0..shards).map(|_| Arc::new(ServePool::start(config))).collect(),
            state: Mutex::new(FleetState {
                epoch: 1,
                ring: HashRing::with_shards(vnodes, &ids),
                dead: vec![false; shards],
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FleetState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The shard owning `key` under the current membership.
    fn route(&self, key: u64) -> Option<usize> {
        self.lock().ring.lookup(key).map(|id| id as usize)
    }

    /// Removes a discovered-dead shard from the ring (idempotent; only
    /// the first discovery bumps the epoch).
    fn mark_dead(&self, sid: usize) {
        let mut state = self.lock();
        if state.dead[sid] {
            return;
        }
        state.dead[sid] = true;
        state.ring.remove_shard(sid as u64);
        state.epoch += 1;
    }

    fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    fn shutdown(&self) {
        for pool in &self.pools {
            pool.shutdown();
        }
    }
}

/// Shared accounting for one fleet phase. `completions[id]` counts how
/// many times request `id` was answered — exactly-once means every slot
/// ends at exactly 1.
struct FleetTally {
    shed: AtomicU64,
    rerouted: AtomicU64,
    progress: AtomicU64,
    completions: Vec<AtomicU64>,
}

impl FleetTally {
    fn new(total_requests: usize) -> Self {
        Self {
            shed: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            progress: AtomicU64::new(0),
            completions: (0..total_requests).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn duplicates(&self) -> u64 {
        self.completions
            .iter()
            .map(|c| c.load(Ordering::Relaxed).saturating_sub(1))
            .sum()
    }

    fn unanswered(&self) -> u64 {
        self.completions
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) == 0)
            .count() as u64
    }

    fn completed(&self) -> u64 {
        self.completions
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) > 0)
            .count() as u64
    }
}

/// Drives `clients` closed-loop clients through the ring until every
/// request is answered exactly once (requests whose shard dies are
/// re-routed onto the survivor ring). Returns phase wall-clock.
#[allow(clippy::too_many_arguments)]
fn drive_fleet(
    fleet: &Fleet,
    system: &Arc<PredictDdl>,
    mix: &[(PredictionRequest, u64)],
    clients: usize,
    requests: usize,
    service_us: u64,
    retry_after_ms: u64,
    tally: &Arc<FleetTally>,
) -> Duration {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let tally = Arc::clone(tally);
            s.spawn(move || {
                for i in 0..requests {
                    let id = c * requests + i;
                    // Stride the keyspace so every shard sees work from
                    // every client throughout the phase.
                    let (req, key) = &mix[(c * 7 + i) % mix.len()];
                    loop {
                        let Some(sid) = fleet.route(*key) else {
                            return; // whole fleet dead: id stays unanswered
                        };
                        let latch = Arc::new(Latch::new());
                        let ran = Arc::new(AtomicU64::new(0));
                        let submit = {
                            let latch = Arc::clone(&latch);
                            let ran = Arc::clone(&ran);
                            let system = Arc::clone(system);
                            let req = req.clone();
                            let tally = Arc::clone(&tally);
                            fleet.pools[sid].try_submit(move |o| {
                                if o == JobOutcome::Run {
                                    let t_job = Instant::now();
                                    let _ = system.predict(&req);
                                    // Pad to the service-time floor: the
                                    // shard's capacity bound, not the
                                    // host CPU, is what the fleet scales.
                                    let floor = Duration::from_micros(service_us);
                                    let spent = t_job.elapsed();
                                    if spent < floor {
                                        std::thread::sleep(floor - spent);
                                    }
                                    tally.completions[id]
                                        .fetch_add(1, Ordering::Relaxed);
                                    tally.progress.fetch_add(1, Ordering::Relaxed);
                                    ran.store(1, Ordering::Relaxed);
                                }
                                latch.open();
                            })
                        };
                        match submit {
                            Ok(()) => {
                                latch.wait();
                                if ran.load(Ordering::Relaxed) == 1 {
                                    break;
                                }
                                // Expired in queue: provably never ran,
                                // safe to resubmit.
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(SubmitError::Full) => {
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(retry_after_ms));
                            }
                            Err(SubmitError::Closed) => {
                                // The shard died under us; the submit was
                                // rejected, so the request never executed
                                // — re-route on the survivor ring.
                                tally.rerouted.fetch_add(1, Ordering::Relaxed);
                                fleet.mark_dead(sid);
                            }
                        }
                    }
                }
            });
        }
    });
    t0.elapsed()
}

/// The sharded-fleet benchmark: scaling at 1/2/4 shards, ring-rebalance
/// cost, and a shard-kill phase — writes `BENCH_shard.json`.
fn run_fleet(flags: &Flags) {
    let clients_per_shard: usize = flag(flags, "clients", 4);
    let requests: usize = flag(flags, "requests", 50);
    let queue_depth: usize = flag(flags, "queue-depth", 8);
    let service_us: u64 = flag(flags, "service-us", 4000);
    let vnodes: u32 = flag(flags, "vnodes", 128);
    let keyspace: usize = flag(flags, "keyspace", 256).max(1);
    let out = flags.get("out").map_or("BENCH_shard.json", |s| s.as_str()).to_string();

    // One worker per shard: each shard is a serialized capacity of
    // 1e6/service_us rps, so the scaling curve isolates the routing
    // plane's aggregation rather than host parallelism.
    let config = ServeConfig {
        workers: 1,
        queue_depth,
        request_deadline: Duration::from_secs(30),
        retry_after_ms: 2,
        ..ServeConfig::default()
    };

    eprintln!("training tiny system for the fleet workload ...");
    let system = Arc::new(OfflineTrainer::tiny().train_full());
    // Distinct workloads = distinct ring keys: the request mix spans the
    // keyspace so load spreads the way a real reusable-workload mix does.
    let mix: Vec<(PredictionRequest, u64)> = (0..keyspace)
        .map(|i| {
            let req = PredictionRequest::zoo(
                Workload::new("resnet18", "cifar10", 16 + i, 2),
                ClusterState::homogeneous(ServerClass::GpuP100, 4),
            );
            let key = routing_key(&req);
            (req, key)
        })
        .collect();

    // Phase 1: the scaling curve.
    let mut scaling: Vec<ScalingPoint> = Vec::new();
    let mut base_rps = 0.0;
    for &shards in &[1usize, 2, 4] {
        let clients = clients_per_shard * shards;
        let total = clients * requests;
        let fleet = Fleet::new(shards, vnodes, config);
        let tally = Arc::new(FleetTally::new(total));
        let elapsed = drive_fleet(
            &fleet,
            &system,
            &mix,
            clients,
            requests,
            service_us,
            config.retry_after_ms,
            &tally,
        );
        fleet.shutdown();
        let completed = tally.completed();
        let secs = elapsed.as_secs_f64().max(1e-9);
        let rps = completed as f64 / secs;
        if shards == 1 {
            base_rps = rps;
        }
        let speedup = if base_rps > 0.0 { rps / base_rps } else { 0.0 };
        eprintln!(
            "scaling {shards} shard(s): {completed}/{total} completed in {secs:.2}s, \
             {rps:.0} rps, speedup {speedup:.2}x"
        );
        scaling.push(ScalingPoint {
            shards,
            clients,
            requests: total as u64,
            completed,
            shed: tally.shed.load(Ordering::Relaxed),
            duration_secs: secs,
            throughput_rps: rps,
            speedup_vs_1: speedup,
        });
    }

    // Phase 2: rebalance cost, pure ring math over a synthetic keyspace.
    const REBALANCE_KEYS: u64 = 10_000;
    let rebalance: Vec<RebalanceStep> = [(1usize, 2usize), (3, 4)]
        .iter()
        .map(|&(from, to)| {
            let ids: Vec<u64> = (0..from as u64).collect();
            let before = HashRing::with_shards(vnodes, &ids);
            let mut after = before.clone();
            after.add_shard(from as u64);
            let moved = before.moved_keys(&after, 0..REBALANCE_KEYS) as u64;
            RebalanceStep {
                from_shards: from,
                to_shards: to,
                keys: REBALANCE_KEYS,
                moved,
                moved_fraction: moved as f64 / REBALANCE_KEYS as f64,
                // 1/to_shards plus 50% slack for vnode variance — far
                // below the 1 - 1/to a modulo router would pay.
                bound_fraction: 1.5 / to as f64,
            }
        })
        .collect();
    for r in &rebalance {
        eprintln!(
            "rebalance {}->{} shards: {}/{} keys moved ({:.3}, bound {:.3})",
            r.from_shards, r.to_shards, r.moved, r.keys, r.moved_fraction, r.bound_fraction
        );
    }

    // Phase 3: kill a shard mid-load; every request must still be
    // answered exactly once, on the survivor ring.
    let kill_shards = 4usize;
    let clients = clients_per_shard * kill_shards;
    let total = clients * requests;
    let fleet = Arc::new(Fleet::new(kill_shards, vnodes, config));
    let tally = Arc::new(FleetTally::new(total));
    let epoch_before = fleet.epoch();
    let victim = 1u64;
    let killer = {
        let fleet = Arc::clone(&fleet);
        let tally = Arc::clone(&tally);
        std::thread::spawn(move || {
            // Crash the victim once a quarter of the load has completed
            // — a mid-load death, not an edge case at either end.
            while tally.progress.load(Ordering::Relaxed) < total as u64 / 4 {
                std::thread::sleep(Duration::from_millis(2));
            }
            fleet.pools[victim as usize].shutdown();
        })
    };
    let elapsed = drive_fleet(
        &fleet,
        &system,
        &mix,
        clients,
        requests,
        service_us,
        config.retry_after_ms,
        &tally,
    );
    killer.join().expect("killer thread");
    fleet.shutdown();
    let kill = KillSummary {
        shards: kill_shards,
        killed_shard: victim,
        requests: total as u64,
        completed: tally.completed(),
        rerouted: tally.rerouted.load(Ordering::Relaxed),
        shed: tally.shed.load(Ordering::Relaxed),
        duplicates: tally.duplicates(),
        unanswered: tally.unanswered(),
        epoch_before,
        epoch_after: fleet.epoch(),
    };
    eprintln!(
        "kill phase: {}/{} completed ({} rerouted, {} dup, {} unanswered) in {:.2}s; \
         epoch {} -> {}",
        kill.completed,
        kill.requests,
        kill.rerouted,
        kill.duplicates,
        kill.unanswered,
        elapsed.as_secs_f64(),
        kill.epoch_before,
        kill.epoch_after,
    );

    let snapshot = pddl_telemetry::snapshot();
    let report = ShardReport {
        workers_per_shard: 1,
        queue_depth,
        clients_per_shard,
        requests_per_client: requests,
        vnodes,
        service_us,
        keyspace,
        scaling,
        rebalance,
        kill,
        telemetry: vec![
            ("controller.requests_shed".to_string(), counter(&snapshot, "controller.requests_shed")),
            ("controller.requests_expired".to_string(), counter(&snapshot, "controller.requests_expired")),
            ("controller.queue_depth_peak".to_string(), gauge(&snapshot, "controller.queue_depth_peak")),
        ],
    };
    std::fs::write(&out, report.render()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}

fn counter(snapshot: &pddl_telemetry::Snapshot, name: &str) -> u64 {
    snapshot.counter(name).unwrap_or(0)
}

fn gauge(snapshot: &pddl_telemetry::Snapshot, name: &str) -> u64 {
    snapshot.gauge(name).unwrap_or(0).max(0) as u64
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn flag<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
