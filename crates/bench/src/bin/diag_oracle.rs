//! Diagnostic (not a paper figure): upper-bounds achievable accuracy by
//! replacing the GHN embedding with *oracle* architecture descriptors
//! (log-FLOPs, log-params, arithmetic intensity, grouped fraction,
//! branching). If the oracle matches the GHN system's error, the regression
//! family is the bottleneck; if it is far better, the embedding is.

use pddl_bench::*;
use pddl_regress::{Regression, Regressor, StandardScaler};
use pddl_tensor::Matrix;
use pddl_zoo::ModelSpec;
use std::collections::HashMap;

fn main() {
    let records = standard_trace();
    let (train, test) = split_records(&records, 0.8, 0x916);

    // Oracle per-model features.
    let mut specs: HashMap<String, ModelSpec> = HashMap::new();
    for r in records.iter() {
        let key = format!("{}@{}", r.workload.model, r.workload.dataset);
        specs.entry(key).or_insert_with(|| {
            ModelSpec::from_graph(&r.workload.build_graph().unwrap())
        });
    }
    let feat = |r: &pddl_ddlsim::TraceRecord| -> Vec<f32> {
        let s = &specs[&format!("{}@{}", r.workload.model, r.workload.dataset)];
        let c = r.cluster();
        let cf = c.feature_vector();
        let mut f = vec![
            (s.flops_per_example.log10() - 7.0) as f32,
            ((s.params as f64).log10() - 6.5) as f32,
            (s.arithmetic_intensity().log10()) as f32,
            s.grouped_flop_fraction as f32,
            s.branching_fraction as f32,
            (s.activation_elems as f64).log10() as f32 - 5.0,
            s.depth as f32 / 100.0,
        ];
        f.extend(cf.iter().map(|&v| v as f32));
        f.push((r.workload.batch_size as f32).log10());
        f.push(r.workload.epochs as f32 / 10.0);
        f
    };

    for (name, mut model) in [
        ("PR-squares", Regression::polynomial_squares(2, 1e-3)),
        ("PR-full", Regression::polynomial(2, 1e-3)),
        ("LR", Regression::linear()),
    ] {
        let d = feat(&train[0]).len();
        let mut x = Matrix::zeros(train.len(), d);
        let mut y = Vec::new();
        for (i, r) in train.iter().enumerate() {
            x.set_row(i, &feat(r));
            y.push(r.time_secs.log10() as f32);
        }
        let scaler = StandardScaler::fit(&x);
        model.fit(&scaler.transform(&x), &y);
        let mut ratios = Vec::new();
        for r in &test {
            let xr = Matrix::from_vec(1, d, feat(r));
            let p = 10f64.powf(model.predict(&scaler.transform(&xr))[0] as f64);
            ratios.push(p / r.time_secs);
        }
        println!("oracle {name:<12} mean |ratio-1| = {:.1}%", 100.0 * mean_abs_err(&ratios));
    }
}
