//! Fig. 10: impact of the regression-model choice (PR / SVR / MLP / LR) on
//! PredictDDL's prediction accuracy, per dataset.
//!
//! SVR and MLP are tuned exactly as §IV-B2 describes: SVR grid-searched over
//! radial/linear kernels with C ∈ [1, 10³], γ ∈ [0.05, 0.5], ε ∈ [0.05, 0.2];
//! MLP over a single hidden layer of 1–5 neurons.
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin fig10_regressors
//! ```

use pddl_bench::*;
use pddl_ddlsim::TraceRecord;
use pddl_ghn::train::TrainConfig;
use pddl_ghn::{Ghn, GhnConfig, GhnTrainer, SynthGenerator};
use pddl_regress::gridsearch::{grid_search_mlp, grid_search_svr};
use pddl_regress::knn::{Distance, KnnRegressor};
use pddl_regress::{Regression, Regressor, StandardScaler};
use pddl_tensor::{Matrix, Rng};
use pddl_zoo::{build_model, dataset::dataset_by_name};
use std::collections::HashMap;

fn main() {
    println!("=== Fig. 10: regression-model comparison (closer to 1 is better) ===\n");

    for dataset in ["cifar10", "tiny-imagenet"] {
        let records = dataset_trace(dataset);
        let (train, test) = split_records(&records, 0.8, 0xF10);
        let ds = dataset_by_name(dataset).unwrap();

        eprintln!("[fig10] training GHN for {dataset} ...");
        let mut rng = Rng::new(0xF10);
        let mut ghn = Ghn::new(GhnConfig::default(), &mut rng);
        let mut gen = SynthGenerator::new(ds.clone(), 0xF10);
        GhnTrainer::new(TrainConfig::default()).train(&mut ghn, &mut gen);
        let mut embeds: HashMap<String, Vec<f32>> = HashMap::new();
        for name in pddl_zoo::model_names() {
            embeds.insert(
                name.to_string(),
                ghn.embed_graph(&build_model(name, ds).unwrap()),
            );
        }
        let features = |r: &TraceRecord| -> Vec<f32> {
            let mut f = embeds[&r.workload.model].clone();
            let cf = r.cluster().feature_vector();
            f.extend(cf.iter().map(|&v| v as f32));
            f.push((r.workload.batch_size as f32).log10());
            f
        };

        let d = features(&train[0]).len();
        let mut x = Matrix::zeros(train.len(), d);
        let mut y = Vec::new();
        for (i, r) in train.iter().enumerate() {
            x.set_row(i, &features(r));
            y.push(r.time_secs.log10() as f32);
        }
        let scaler = StandardScaler::fit(&x);
        let xs = scaler.transform(&x);

        // Hyperparameter tuning per §IV-B2.
        eprintln!("[fig10] grid-searching SVR ({} candidates) ...", pddl_regress::gridsearch::svr_grid().len());
        let (svr_params, svr_cv) = grid_search_svr(&xs, &y, 3, 0xF10);
        eprintln!("[fig10]   best SVR {svr_params:?} (cv rmse {svr_cv:.3})");
        eprintln!("[fig10] grid-searching MLP hidden width 1..=5 ...");
        let (mlp_hidden, mlp_cv) = grid_search_mlp(&xs, &y, 3, 0xF10, 400, 0.02);
        eprintln!("[fig10]   best MLP hidden={mlp_hidden} (cv rmse {mlp_cv:.3})");

        let candidates: Vec<Regression> = vec![
            Regression::polynomial(2, 1e-2),
            Regression::svr(svr_params.kernel, svr_params.c, svr_params.epsilon),
            Regression::mlp(mlp_hidden, 2000, 0.02, 0xF10),
            Regression::linear(),
        ];

        println!("--- {dataset} ---");
        print_header(&["regressor", "mean ratio", "|ratio-1|"]);
        for mut model in candidates {
            model.fit(&xs, &y);
            let ratios: Vec<f64> = test
                .iter()
                .map(|r| {
                    let xr = Matrix::from_vec(1, d, features(r));
                    let p = 10f64.powf(model.predict(&scaler.transform(&xr))[0] as f64);
                    p / r.time_secs
                })
                .collect();
            println!(
                "{:<28}{:>14.3}{:>13.1}%",
                model.name(),
                mean(&ratios),
                100.0 * mean_abs_err(&ratios)
            );
        }
        // Extension row: the literal Fig. 5 mechanism — distance-weighted
        // k-NN over the unified feature space.
        let mut knn = KnnRegressor::new(5, Distance::Euclidean, true);
        knn.fit(&xs, &y);
        let ratios: Vec<f64> = test
            .iter()
            .map(|r| {
                let xr = Matrix::from_vec(1, d, features(r));
                let p = 10f64.powf(knn.predict(&scaler.transform(&xr))[0] as f64);
                p / r.time_secs
            })
            .collect();
        println!(
            "{:<28}{:>14.3}{:>13.1}%   (extension)",
            "kNN(5, weighted)",
            mean(&ratios),
            100.0 * mean_abs_err(&ratios)
        );
        println!();
    }
    println!("(paper: PR and LR strong on both datasets; SVR/MLP good on CIFAR-10");
    println!(" but weaker on Tiny-ImageNet; PR selected as the default)");
}
