//! Fig. 13: scalability on batch performance-prediction jobs — total
//! (training + inference) duration of PredictDDL vs Ernest for batches of
//! 2, 4, 6 and 8 DL models.
//!
//! PredictDDL pays its (GHN + regressor) training once and then only
//! embeds and regresses per model; Ernest re-collects designed training
//! runs and refits per model. The paper reports total-time reductions of
//! 2.6×, 5.1×, 7.7× and 10.3× for batches of 2/4/6/8.
//!
//! Cost accounting (see DESIGN.md): Ernest's data collection and
//! PredictDDL's (hypothetical) trace collection are *simulated testbed
//! seconds*; fitting/embedding/inference are measured wall-clock.
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin fig13_batch_scalability
//! ```

use pddl_bench::*;
use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{SimConfig, Simulator, Workload};
use predictddl::batch::{compare_batch, BatchJob};

const BATCH_MODELS: [&str; 8] = [
    "efficientnet_b0",
    "resnext50_32x4d",
    "vgg16",
    "alexnet",
    "resnet18",
    "densenet161",
    "mobilenet_v3_large",
    "squeezenet1_0",
];

fn main() {
    let records = standard_trace();
    let (train, _) = split_records(&records, 0.8, 0xF13);
    let system = train_system(&train, 0xF13);
    let sim = Simulator::new(SimConfig::default());

    println!("\n=== Fig. 13: batch-job total duration, PredictDDL vs Ernest ===\n");
    print_header(&[
        "batch",
        "PDDL train",
        "PDDL infer",
        "Ernest collect",
        "speedup A",
        "speedup B",
    ]);

    for &b in &[2usize, 4, 6, 8] {
        let job = BatchJob {
            workloads: BATCH_MODELS[..b]
                .iter()
                .map(|m| Workload::new(m, "cifar10", 128, 10))
                .collect(),
            cluster: ClusterState::homogeneous(ServerClass::GpuP100, 8),
        };
        let cmp = compare_batch(&system, &sim, &job).expect("batch comparison");
        println!(
            "{:<28}{:>13.1}s{:>13.3}s{:>13.0}s{:>13.1}×{:>13.0}×",
            format!("{b} models"),
            cmp.pddl_train_secs,
            cmp.pddl_infer_secs,
            cmp.ernest_collect_secs,
            cmp.speedup(),
            cmp.speedup_amortized()
        );
    }
    println!("\nspeedup A charges PredictDDL for GHN meta-training on every batch;");
    println!("speedup B treats the per-dataset GHN as a preexisting offline asset");
    println!("(the paper's framing — it is 'trained only once for a particular");
    println!("dataset'). The paper's 2.6×/5.1×/7.7×/10.3× lie between the two");
    println!("accountings; the reproduced claim is the *growth* with batch size.");
}
