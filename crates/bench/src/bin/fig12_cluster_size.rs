//! Fig. 12: impact of the training-cluster size (4, 8, 16 servers) on
//! PredictDDL's prediction error across the Table II workloads.
//!
//! The paper reports errors from 0.1% up to 23.5% across workloads and
//! sizes, concluding PredictDDL "remains effective irrespective of the
//! scale of the execution environment."
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin fig12_cluster_size
//! ```

use pddl_bench::*;
use pddl_cluster::ClusterState;
use pddl_ddlsim::{SimConfig, Simulator, Workload};

fn main() {
    let records = standard_trace();
    let (train, _) = split_records(&records, 0.8, 0xF12);
    let system = train_system(&train, 0xF12);
    let sim = Simulator::new(SimConfig::default());

    println!("\n=== Fig. 12: prediction ratio vs cluster size (closer to 1 is better) ===\n");
    print_header(&["workload", "4 servers", "8 servers", "16 servers"]);

    let sizes = [4usize, 8, 16];
    let mut all_errs = Vec::new();
    for (model, dataset) in table2_workloads() {
        let class = class_for_dataset(dataset);
        let mut row = format!("{:<28}", format!("{model}@{dataset}"));
        for &n in &sizes {
            let w = Workload::new(model, dataset, 128, 10);
            let cluster = ClusterState::homogeneous(class, n);
            let actual = sim.measure(&w, &cluster, 1).expect("simulate");
            let pred = system
                .predict_workload(&w, &cluster)
                .expect("predict")
                .seconds;
            let ratio = pred / actual;
            all_errs.push((ratio - 1.0).abs());
            row += &format!("{ratio:>14.3}");
        }
        println!("{row}");
    }
    let min = all_errs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = all_errs.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nerror range across workloads and sizes: {:.1}% .. {:.1}% (paper: 0.1% .. 23.5%)",
        100.0 * min,
        100.0 * max
    );
    println!("mean error: {:.1}%", 100.0 * mean(&all_errs));
}
