//! Extension experiment: configuration search with CherryPick vs PredictDDL
//! (the paper's §V-A discussion: CherryPick finds good cloud configs with a
//! smaller search cost than Ernest but "is sensitive to workload changes
//! and requires retraining" — i.e. re-probing — for every new workload).
//!
//! Task: for each Table II CIFAR-10 workload, find the cluster size
//! minimizing runtime. CherryPick pays real probe runs per workload;
//! PredictDDL answers every candidate from one trained model, paying only
//! milliseconds of inference.
//!
//! ```sh
//! cargo run --release -p pddl-bench --bin exp_config_search
//! ```

use pddl_bench::*;
use pddl_cherrypick::search::candidate_grid;
use pddl_cherrypick::CherryPick;
use pddl_cluster::ServerClass;
use pddl_ddlsim::{SimConfig, Simulator, Workload};

fn main() {
    let records = dataset_trace("cifar10");
    let (train, _) = split_records(&records, 0.8, 0xCC);
    let system = train_system(&train, 0xCC);
    let sim = Simulator::new(SimConfig::default());
    let candidates = candidate_grid(ServerClass::GpuP100, 20);
    let cp = CherryPick::default();

    println!("\n=== extension: cluster-size search, CherryPick vs PredictDDL ===\n");
    print_header(&[
        "workload",
        "optimum",
        "CherryPick",
        "probes",
        "probe cost",
        "PredictDDL",
    ]);

    let mut cp_regret = 0.0f64;
    let mut pd_regret = 0.0f64;
    let mut total_probe_cost = 0.0f64;
    let mut count = 0usize;
    for (model, dataset) in table2_workloads() {
        if dataset != "cifar10" {
            continue;
        }
        let w = Workload::new(model, "cifar10", 128, 10);
        // Ground-truth optimum.
        let times: Vec<f64> = candidates
            .iter()
            .map(|c| sim.expected_time(&w, &c.cluster()).unwrap())
            .collect();
        let (opt_idx, &opt_time) = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();

        // CherryPick: probes real runs for THIS workload.
        let out = cp.search(&sim, &w, &candidates, |secs, _| secs);
        let cp_actual = sim.expected_time(&w, &out.best.cluster()).unwrap();

        // PredictDDL: evaluate every candidate from the trained model.
        let pd_best = candidates
            .iter()
            .min_by(|a, b| {
                let ta = system
                    .predict_workload(&w, &a.cluster())
                    .map(|p| p.seconds)
                    .unwrap_or(f64::INFINITY);
                let tb = system
                    .predict_workload(&w, &b.cluster())
                    .map(|p| p.seconds)
                    .unwrap_or(f64::INFINITY);
                ta.partial_cmp(&tb).unwrap()
            })
            .unwrap();
        let pd_actual = sim.expected_time(&w, &pd_best.cluster()).unwrap();

        println!(
            "{:<28}{:>11}srv{:>11}srv{:>14}{:>13.0}s{:>11}srv",
            model,
            candidates[opt_idx].servers,
            out.best.servers,
            out.probes,
            out.probe_cost_secs,
            pd_best.servers,
        );
        cp_regret += cp_actual / opt_time - 1.0;
        pd_regret += pd_actual / opt_time - 1.0;
        total_probe_cost += out.probe_cost_secs;
        count += 1;
    }
    println!(
        "\nmean regret vs optimum:  CherryPick {:.1}%   PredictDDL {:.1}%",
        100.0 * cp_regret / count as f64,
        100.0 * pd_regret / count as f64
    );
    println!(
        "search cost for {count} workloads: CherryPick {total_probe_cost:.0} simulated seconds of probe runs; PredictDDL ~{:.0} ms of inference (model trained once).",
        count as f64 * 20.0 * 0.2
    );
    println!("\nCherryPick is sample-efficient per workload but restarts for every");
    println!("new DNN; PredictDDL amortizes one model across all of them (§V-A).");
}
