//! Shared experiment harness for the figure-reproduction binaries.
//!
//! Each `src/bin/figNN_*.rs` binary regenerates one figure of the paper's
//! evaluation (Section IV). This library holds the common plumbing: the
//! standard trace, the Table II workload list, pooled-Ernest fitting, and
//! ratio bookkeeping.

pub mod report;

use pddl_cluster::ServerClass;
use pddl_ddlsim::{generate_trace, TraceConfig, TraceRecord};
use pddl_ernest::model::{ErnestModel, ErnestSample};
use pddl_regress::split::train_test_split;
use predictddl::{OfflineTrainer, PredictDdl};
use std::collections::HashMap;

/// Table II of the paper: the eleven evaluation workloads.
/// (`MobileNet-V3` → the large variant; `SqueezeNet-1` → 1_0.)
pub fn table2_workloads() -> Vec<(&'static str, &'static str)> {
    vec![
        ("efficientnet_b0", "cifar10"),
        ("resnext50_32x4d", "cifar10"),
        ("vgg16", "cifar10"),
        ("alexnet", "cifar10"),
        ("resnet18", "cifar10"),
        ("densenet161", "cifar10"),
        ("mobilenet_v3_large", "cifar10"),
        ("squeezenet1_0", "cifar10"),
        ("alexnet", "tiny-imagenet"),
        ("resnet18", "tiny-imagenet"),
        ("squeezenet1_0", "tiny-imagenet"),
    ]
}

/// The standard experiment corpus: the full 31-model × {CIFAR-10 on GPUs,
/// Tiny-ImageNet on CPUs} × 1–20 servers trace (paper §IV-A2's 2,000-point
/// collection).
pub fn standard_trace() -> Vec<TraceRecord> {
    generate_trace(&TraceConfig::default())
}

/// A trace restricted to one dataset.
pub fn dataset_trace(dataset: &str) -> Vec<TraceRecord> {
    let mut cfg = TraceConfig::default();
    cfg.dataset_clusters
        .retain(|(d, _)| d.eq_ignore_ascii_case(dataset));
    generate_trace(&cfg)
}

/// Splits a trace into train/test record sets by the given train fraction.
pub fn split_records(
    records: &[TraceRecord],
    train_fraction: f64,
    seed: u64,
) -> (Vec<TraceRecord>, Vec<TraceRecord>) {
    let (tr, te) = train_test_split(records.len(), train_fraction, seed);
    (
        tr.iter().map(|&i| records[i].clone()).collect(),
        te.iter().map(|&i| records[i].clone()).collect(),
    )
}

/// The standard PredictDDL training configuration used by the figure
/// harness (full-size GHN, paper-default polynomial regression).
pub fn standard_trainer(seed: u64) -> OfflineTrainer {
    OfflineTrainer { seed, ..OfflineTrainer::default() }
}

/// Trains the standard system on the given records, logging progress.
pub fn train_system(records: &[TraceRecord], seed: u64) -> PredictDdl {
    eprintln!(
        "[harness] offline-training PredictDDL on {} records ...",
        records.len()
    );
    let system = standard_trainer(seed).train_from_records(records);
    eprintln!(
        "[harness]   GHN {:.1}s | embeddings {:.1}s | regressor {:.2}s",
        system.train_cost.ghn_secs, system.train_cost.embed_secs, system.train_cost.fit_secs
    );
    system
}

/// Fits one pooled Ernest model per dataset over the training records —
/// the black-box baseline of Fig. 9 ("the black box approach ... averages
/// the measurements of the collected training samples").
pub fn pooled_ernest(train: &[TraceRecord]) -> HashMap<String, ErnestModel> {
    let mut per_dataset: HashMap<String, Vec<ErnestSample>> = HashMap::new();
    for r in train {
        per_dataset
            .entry(r.workload.dataset.to_ascii_lowercase())
            .or_default()
            .push(ErnestSample {
                scale: 1.0,
                machines: r.num_servers,
                time_secs: r.time_secs,
            });
    }
    per_dataset
        .into_iter()
        .map(|(ds, samples)| (ds.clone(), ErnestModel::fit(&samples)))
        .collect()
}

/// Prediction ratios (pred/actual) for the test records of one workload.
pub fn workload_ratios(
    test: &[TraceRecord],
    model: &str,
    dataset: &str,
    mut predict: impl FnMut(&TraceRecord) -> f64,
) -> Vec<f64> {
    test.iter()
        .filter(|r| {
            r.workload.model == model && r.workload.dataset.eq_ignore_ascii_case(dataset)
        })
        .map(|r| predict(r) / r.time_secs)
        .collect()
}

/// Mean of |ratio − 1| over a slice of ratios.
pub fn mean_abs_err(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return f64::NAN;
    }
    ratios.iter().map(|r| (r - 1.0).abs()).sum::<f64>() / ratios.len() as f64
}

pub fn mean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return f64::NAN;
    }
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

/// Formats the standard figure table header.
pub fn print_header(cols: &[&str]) {
    let mut line = format!("{:<28}", cols[0]);
    for c in &cols[1..] {
        line += &format!("{c:>14}");
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().min(100)));
}

/// Server class used for a dataset in the standard trace.
pub fn class_for_dataset(dataset: &str) -> ServerClass {
    if dataset.eq_ignore_ascii_case("cifar10") {
        ServerClass::GpuP100
    } else {
        ServerClass::CpuE5_2630
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eleven_workloads() {
        let t = table2_workloads();
        assert_eq!(t.len(), 11);
        assert_eq!(t.iter().filter(|(_, d)| *d == "cifar10").count(), 8);
        assert_eq!(t.iter().filter(|(_, d)| *d == "tiny-imagenet").count(), 3);
    }

    #[test]
    fn split_preserves_counts() {
        let records = dataset_trace("cifar10");
        let (tr, te) = split_records(&records, 0.8, 1);
        assert_eq!(tr.len() + te.len(), records.len());
    }

    #[test]
    fn mean_abs_err_of_perfect_ratios_is_zero() {
        assert_eq!(mean_abs_err(&[1.0, 1.0]), 0.0);
        assert!((mean_abs_err(&[1.2, 0.8]) - 0.2).abs() < 1e-12);
    }
}
