//! Criterion micro-benchmarks for the performance-critical components:
//! GHN embedding generation (the per-request cost PredictDDL adds over a
//! black box, §IV-B5), end-to-end inference, the simulator, GEMM, and the
//! regression fits.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::{SimConfig, Simulator, Workload};
use pddl_ernest::model::{ErnestModel, ErnestSample};
use pddl_ghn::train::TrainConfig;
use pddl_ghn::{Ghn, GhnConfig, GhnTrainer, SynthGenerator};
use pddl_regress::{Regression, Regressor};
use pddl_tensor::{Matrix, Rng};
use pddl_zoo::{build_model, CIFAR10};
use predictddl::{OfflineTrainer, PredictionRequest};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let a = Matrix::rand_normal(128, 128, 1.0, &mut rng);
    let b = Matrix::rand_normal(128, 128, 1.0, &mut rng);
    c.bench_function("gemm_128x128", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
}

fn bench_ghn_embedding(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let ghn = Ghn::new(GhnConfig::default(), &mut rng);
    let mut group = c.benchmark_group("ghn_embed");
    for name in ["squeezenet1_1", "resnet18", "resnet50", "densenet121"] {
        let g = build_model(name, &CIFAR10).unwrap();
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(ghn.embed_graph(&g)))
        });
    }
    group.finish();
}

fn bench_ghn_sync_vs_sequential(c: &mut Criterion) {
    // Gauss-Seidel (paper-faithful) vs Jacobi (parallelizable) schedules.
    let mut rng = Rng::new(9);
    let ghn = Ghn::new(GhnConfig::default(), &mut rng);
    let g = build_model("resnet50", &CIFAR10).unwrap();
    let mut group = c.benchmark_group("ghn_schedule");
    group.bench_function("sequential_T1", |bench| {
        bench.iter(|| black_box(ghn.embed_graph(&g)))
    });
    group.bench_function("synchronous_4sweeps", |bench| {
        bench.iter(|| black_box(ghn.embed_graph_sync(&g, 4)))
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    // Small but real system: the per-request path of Fig. 7.
    let system = OfflineTrainer::tiny().train_full();
    let req = PredictionRequest::zoo(
        Workload::new("resnet18", "cifar10", 128, 2),
        ClusterState::homogeneous(ServerClass::GpuP100, 4),
    );
    c.bench_function("predict_end_to_end", |bench| {
        bench.iter(|| black_box(system.predict(&req).unwrap().seconds))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let sim = Simulator::new(SimConfig::default());
    let w = Workload::standard("resnet50", "cifar10");
    let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 8);
    c.bench_function("simulator_expected_time", |bench| {
        bench.iter(|| black_box(sim.expected_time(&w, &cluster).unwrap()))
    });
}

fn bench_regressors(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let n = 400;
    let d = 20;
    let x = Matrix::rand_normal(n, d, 1.0, &mut rng);
    let y: Vec<f32> = (0..n)
        .map(|i| x.row(i).iter().sum::<f32>() + 0.1 * rng.normal())
        .collect();
    let mut group = c.benchmark_group("regressor_fit");
    group.sample_size(20);
    group.bench_function("PR_degree2", |bench| {
        bench.iter_batched(
            || Regression::polynomial(2, 1e-3),
            |mut m| {
                m.fit(&x, &y);
                black_box(m.predict(&x)[0])
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("LR", |bench| {
        bench.iter_batched(
            Regression::linear,
            |mut m| {
                m.fit(&x, &y);
                black_box(m.predict(&x)[0])
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_ernest_fit(c: &mut Criterion) {
    let samples: Vec<ErnestSample> = (1..=16)
        .map(|m| ErnestSample {
            scale: 1.0,
            machines: m,
            time_secs: 100.0 / m as f64 + 2.0 * m as f64,
        })
        .collect();
    c.bench_function("ernest_nnls_fit", |bench| {
        bench.iter(|| black_box(ErnestModel::fit(&samples).theta[0]))
    });
}

fn bench_telemetry(c: &mut Criterion) {
    // Overhead of the observability layer on hot paths: everything here is
    // plain atomics on cached `&'static` handles — no locks, no allocation.
    let counter = pddl_telemetry::counter("bench.telemetry_counter");
    let hist = pddl_telemetry::histogram("bench.telemetry_hist");
    let mut group = c.benchmark_group("telemetry");
    group.bench_function("counter_inc", |bench| {
        bench.iter(|| {
            counter.inc();
            black_box(counter)
        })
    });
    group.bench_function("histogram_record", |bench| {
        let mut v = 0u64;
        bench.iter(|| {
            v = v.wrapping_add(1097);
            hist.record(black_box(v & 0xffff));
            black_box(hist)
        })
    });
    group.bench_function("span_enter_exit", |bench| {
        bench.iter(|| {
            let span = pddl_telemetry::Span::on(hist, "bench.span");
            black_box(span).exit()
        })
    });
    group.finish();
}

fn bench_ghn_training_step(c: &mut Criterion) {
    // One meta-training epoch over a small synthetic set (the dominant cost
    // of PredictDDL's one-time offline phase).
    let mut group = c.benchmark_group("ghn_meta_training");
    group.sample_size(10);
    group.bench_function("epoch_16graphs_d8", |bench| {
        bench.iter_batched(
            || {
                let mut rng = Rng::new(4);
                let ghn = Ghn::new(GhnConfig::tiny(), &mut rng);
                let mut gen = SynthGenerator::new(CIFAR10, 5);
                let graphs = gen.sample_many(16);
                (ghn, graphs)
            },
            |(mut ghn, graphs)| {
                let cfg = TrainConfig { num_graphs: 16, epochs: 1, ..TrainConfig::tiny() };
                black_box(GhnTrainer::new(cfg).train_on(&mut ghn, &graphs).final_loss)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_ghn_embedding,
    bench_ghn_sync_vs_sequential,
    bench_inference,
    bench_simulator,
    bench_regressors,
    bench_ernest_fit,
    bench_telemetry,
    bench_ghn_training_step
);
criterion_main!(benches);
