//! Criterion benchmarks for the `pddl-par` work pool and the parallel hot
//! paths built on it: pooled vs serial batch prediction (the PR's ≥2×
//! acceptance target on a 4+-core runner), cold vs warm embedding-cache
//! lookups, and trace-generation / grid-search scaling across pool sizes.
//!
//! On a single-core runner the pool degrades to inline serial execution,
//! so the serial/pooled pairs collapse to the same cost — the speedup
//! numbers are only meaningful with `pddl_par::num_threads() >= 2`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pddl_cluster::{ClusterState, ServerClass};
use pddl_ddlsim::trace::{generate_trace, TraceConfig};
use pddl_ddlsim::{SimConfig, Simulator, Workload};
use pddl_par::WorkPool;
use pddl_tensor::Matrix;
use pddl_zoo::{build_model, CIFAR10};
use predictddl::batch::{compare_batch, compare_batch_serial, BatchJob};
use predictddl::{EmbeddingCache, OfflineTrainer, PredictionRequest};
use std::hint::black_box;

/// A 32-workload batch with repeated architectures (8 models × 4 configs),
/// the shape the acceptance criterion names: repeats make the embedding
/// cache earn its keep while the pool fans the regressions out.
fn batch32() -> Vec<Workload> {
    let models = [
        "resnet18",
        "vgg16",
        "squeezenet1_1",
        "alexnet",
        "mobilenet_v3_small",
        "efficientnet_b0",
        "densenet121",
        "resnext50_32x4d",
    ];
    let mut out = Vec::with_capacity(32);
    for &(b, e) in &[(64usize, 2usize), (128, 2), (64, 4), (128, 4)] {
        for m in models {
            out.push(Workload::new(m, "cifar10", b, e));
        }
    }
    out
}

fn bench_batch_prediction(c: &mut Criterion) {
    let system = OfflineTrainer::tiny().train_full();
    let cluster = ClusterState::homogeneous(ServerClass::GpuP100, 4);
    let reqs: Vec<PredictionRequest> = batch32()
        .into_iter()
        .map(|w| PredictionRequest::zoo(w, cluster.clone()))
        .collect();
    let mut group = c.benchmark_group("batch_predict_32");
    group.sample_size(20);
    group.bench_function("serial_loop", |bench| {
        bench.iter(|| {
            let out: Vec<_> = reqs.iter().map(|r| system.predict(r)).collect();
            black_box(out.len())
        })
    });
    group.bench_function("pooled_predict_many", |bench| {
        bench.iter(|| black_box(system.predict_many(&reqs).len()))
    });
    group.finish();
}

fn bench_compare_batch(c: &mut Criterion) {
    let system = OfflineTrainer::tiny().train_full();
    let sim = Simulator::new(SimConfig::default());
    let job = BatchJob {
        workloads: batch32(),
        cluster: ClusterState::homogeneous(ServerClass::GpuP100, 4),
    };
    let mut group = c.benchmark_group("compare_batch_32");
    group.sample_size(10);
    group.bench_function("serial", |bench| {
        bench.iter(|| black_box(compare_batch_serial(&system, &sim, &job).unwrap().batch_size))
    });
    group.bench_function("pooled", |bench| {
        bench.iter(|| black_box(compare_batch(&system, &sim, &job).unwrap().batch_size))
    });
    group.finish();
}

fn bench_embed_cache(c: &mut Criterion) {
    let system = OfflineTrainer::tiny().train_full();
    let graph = build_model("resnet50", &CIFAR10).unwrap();
    let mut group = c.benchmark_group("embed_cache");
    group.bench_function("cold_miss", |bench| {
        // Fresh cache per iteration: every lookup pays the GHN forward pass.
        bench.iter_batched(
            EmbeddingCache::default,
            |cache| {
                black_box(cache.get_or_embed(&system.registry, "cifar10", &graph))
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("warm_hit", |bench| {
        let cache = EmbeddingCache::default();
        cache.get_or_embed(&system.registry, "cifar10", &graph);
        bench.iter(|| black_box(cache.get_or_embed(&system.registry, "cifar10", &graph)))
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    // Pool scaling on the embarrassingly parallel sweep. generate_trace
    // uses the global pool; the serial baseline is approximated by a
    // single-threaded map over the same WorkPool API.
    let cfg = TraceConfig::small();
    let mut group = c.benchmark_group("trace_generation_small");
    group.sample_size(20);
    group.bench_function("global_pool", |bench| {
        bench.iter(|| black_box(generate_trace(&cfg).len()))
    });
    group.finish();
}

fn bench_pool_overhead(c: &mut Criterion) {
    // Raw pool dispatch cost vs inline execution on a CPU-bound kernel.
    let mats: Vec<Matrix> = {
        let mut rng = pddl_tensor::Rng::new(7);
        (0..16).map(|_| Matrix::rand_normal(48, 48, 1.0, &mut rng)).collect()
    };
    let work = |m: &Matrix| m.matmul(m).as_slice().iter().sum::<f32>();
    let mut group = c.benchmark_group("pool_matmul_16x48");
    group.bench_function("serial_pool1", |bench| {
        let pool = WorkPool::new(1);
        bench.iter(|| black_box(pool.map(&mats, work).len()))
    });
    group.bench_function("global_pool", |bench| {
        let pool = WorkPool::global();
        bench.iter(|| black_box(pool.map(&mats, work).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_prediction,
    bench_compare_batch,
    bench_embed_cache,
    bench_trace_generation,
    bench_pool_overhead
);
criterion_main!(benches);
