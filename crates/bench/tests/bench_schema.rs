//! Golden schema fixture for `BENCH_serve.json`.
//!
//! The serving benchmark report is the first point on the repository's
//! perf trajectory, so its *shape* — field names, nesting, units encoded
//! in the names, the telemetry block — is pinned here the same way the
//! simulator curves are pinned in `tests/golden_traces.rs`. Values are
//! free to change run over run; a renamed or dropped field fails this
//! test.
//!
//! Two documents are checked against `tests/fixtures/bench_serve_schema
//! .json`:
//!
//! 1. a freshly rendered sample [`ServeReport`] — catches code-side
//!    drift in `render()` even when no benchmark has been re-run, and
//! 2. the committed `BENCH_serve.json` baseline at the repository root
//!    (when present) — catches a stale baseline after an intentional
//!    schema change.
//!
//! On an intentional schema change, regenerate with
//! `PDDL_REGEN_GOLDEN=1 cargo test -p pddl-bench --test bench_schema`
//! and review the fixture diff like any other code change. Fixtures are
//! parsed with `pddl_telemetry::JsonValue`, so this test runs even where
//! serde_json is stubbed out.

use pddl_bench::report::{
    schema_paths, EmbedE2e, GemmCase, LatencySummary, PhaseReport, PrecisionSummary, ServeReport,
    ShedReasons, StageSummary, TensorReport, TracingSummary, TrainE2e,
};
use pddl_telemetry::JsonValue;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_path() -> PathBuf {
    repo_root().join("tests/fixtures/bench_serve_schema.json")
}

fn tensor_fixture_path() -> PathBuf {
    repo_root().join("tests/fixtures/bench_tensor_schema.json")
}

/// A fully populated tensor report exercising every field the renderer
/// can emit (two gemm cases so array visiting is covered).
fn sample_tensor_report() -> TensorReport {
    TensorReport {
        threads: 1,
        reps: 7,
        kernel: "avx2+fma".into(),
        gemm: vec![
            GemmCase {
                m: 1,
                k: 32,
                n: 32,
                reference_us: 2.0,
                blocked_us: 0.4,
                pooled_us: 0.4,
                scalar_us: 0.9,
                bf16_us: 0.38,
                speedup_blocked: 5.0,
                speedup_pooled: 5.0,
                speedup_simd: 2.25,
                speedup_bf16: 1.05,
                gflops_blocked: 5.1,
            },
            GemmCase {
                m: 128,
                k: 128,
                n: 128,
                reference_us: 1200.0,
                blocked_us: 320.0,
                pooled_us: 300.0,
                scalar_us: 780.0,
                bf16_us: 310.0,
                speedup_blocked: 3.8,
                speedup_pooled: 4.0,
                speedup_simd: 2.44,
                speedup_bf16: 1.03,
                gflops_blocked: 13.1,
            },
        ],
        embed_graph: EmbedE2e {
            model: "resnet18".into(),
            nodes: 71,
            reference_us: 1300.0,
            batched_us: 1050.0,
            bf16_us: 1020.0,
            speedup: 1.24,
            speedup_bf16: 1.03,
        },
        train_epoch: TrainE2e {
            num_graphs: 16,
            epochs: 2,
            total_us: 55_000.0,
            us_per_epoch: 27_500.0,
        },
        telemetry: vec![
            ("tensor.gemm_calls".into(), 140_000),
            ("tensor.gemm_flops".into(), 126_000_000),
        ],
    }
}

/// A fully populated report: both phase names, nonzero sheds/expiries,
/// and a telemetry block — exercising every field `render()` can emit.
fn sample_report() -> ServeReport {
    ServeReport {
        transport: "inproc".into(),
        workers: 2,
        queue_depth: 4,
        clients: 8,
        requests_per_client: 100,
        deadline_ms: 5000,
        retry_after_ms: 25,
        phases: vec![
            PhaseReport {
                name: "low_rate".into(),
                target_rps: 50.0,
                duration_secs: 2.0,
                requests: 800,
                completed: 800,
                shed: 0,
                shed_reasons: ShedReasons::default(),
                expired: 0,
                failed: 0,
                retries: 0,
                throughput_rps: 400.0,
                latency: LatencySummary {
                    p50_us: 120,
                    p95_us: 340,
                    p99_us: 510,
                    max_us: 900,
                    mean_us: 150,
                },
            },
            PhaseReport {
                name: "saturate".into(),
                target_rps: 0.0,
                duration_secs: 0.7,
                requests: 800,
                completed: 640,
                shed: 150,
                shed_reasons: ShedReasons {
                    queue_full: 140,
                    deadline: 8,
                    connection_limit: 10,
                    draining: 0,
                },
                expired: 8,
                failed: 2,
                retries: 150,
                throughput_rps: 914.3,
                latency: LatencySummary {
                    p50_us: 800,
                    p95_us: 2400,
                    p99_us: 3100,
                    max_us: 4800,
                    mean_us: 1000,
                },
            },
        ],
        stages: ["queue_wait", "embed_cache", "ghn_embed", "regress", "serialize"]
            .iter()
            .map(|name| {
                (
                    name.to_string(),
                    StageSummary { count: 640, p50_us: 30, p95_us: 80, p99_us: 110 },
                )
            })
            .collect(),
        tracing: TracingSummary {
            traced_rps: 970.0,
            untraced_rps: 1000.0,
            overhead_ratio: 1.031,
        },
        precision: PrecisionSummary {
            f32_embed_us: 4100.0,
            bf16_embed_us: 3950.0,
            latency_ratio: 1.038,
            max_rel_prediction_err: 0.0009,
        },
        telemetry: vec![
            ("controller.requests_shed".into(), 150),
            ("controller.requests_expired".into(), 8),
            ("controller.traced_requests".into(), 640),
            ("controller.queue_depth_peak".into(), 4),
            ("controller_client.retries".into(), 150),
            ("controller_client.overloads".into(), 150),
        ],
    }
}

fn render_fixture(paths: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"serve\",\n  \"schema_version\": 1,\n");
    out.push_str("  \"paths\": [\n");
    for (i, p) in paths.iter().enumerate() {
        out.push_str(&format!(
            "    \"{p}\"{}\n",
            if i + 1 < paths.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn stored_paths(doc: &JsonValue) -> Vec<String> {
    match doc.get("paths") {
        Some(JsonValue::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .unwrap_or_else(|| panic!("non-string schema path: {v:?}"))
                    .to_string()
            })
            .collect(),
        other => panic!("fixture 'paths' is not an array: {other:?}"),
    }
}

#[test]
fn bench_serve_schema_matches_golden_fixture() {
    let rendered = sample_report().render();
    let doc = JsonValue::parse(&rendered).expect("rendered report parses");
    let live = schema_paths(&doc);
    let path = fixture_path();

    if std::env::var("PDDL_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).unwrap();
        std::fs::write(&path, render_fixture(&live)).unwrap();
        eprintln!("bench schema fixture regenerated — commit the fixture diff");
        return;
    }

    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with PDDL_REGEN_GOLDEN=1",
            path.display()
        )
    });
    let fixture = JsonValue::parse(&stored)
        .unwrap_or_else(|e| panic!("{}: unparseable fixture: {e}", path.display()));
    assert_eq!(
        stored_paths(&fixture),
        live,
        "BENCH_serve.json schema drifted from golden fixture \
         (intentional? regenerate with PDDL_REGEN_GOLDEN=1)"
    );
}

/// The committed baseline at the repository root must match the pinned
/// schema too — a schema change without a regenerated baseline (or vice
/// versa) fails here, not in a downstream trajectory diff.
#[test]
fn committed_baseline_matches_pinned_schema() {
    let baseline = repo_root().join("BENCH_serve.json");
    let Ok(contents) = std::fs::read_to_string(&baseline) else {
        // The baseline is produced by `pddl-loadgen`; a fresh checkout
        // mid-regeneration may not have one yet. The fixture test above
        // still pins the renderer.
        eprintln!("no committed BENCH_serve.json — skipping baseline check");
        return;
    };
    let doc = JsonValue::parse(&contents)
        .unwrap_or_else(|e| panic!("{}: unparseable baseline: {e}", baseline.display()));
    let live = schema_paths(&doc);

    let stored = std::fs::read_to_string(fixture_path())
        .expect("schema fixture exists (PDDL_REGEN_GOLDEN=1 to create)");
    let fixture = JsonValue::parse(&stored).expect("fixture parses");
    assert_eq!(
        stored_paths(&fixture),
        live,
        "committed BENCH_serve.json does not match the pinned schema — \
         re-run pddl-loadgen after a schema change"
    );

    // Sanity-pin the invariants the baseline is committed to demonstrate:
    // zero sheds at low rate, nonzero sheds at saturation, and full
    // accounting of every request in both phases.
    let phases = match doc.get("phases") {
        Some(JsonValue::Array(ps)) => ps,
        other => panic!("baseline 'phases' is not an array: {other:?}"),
    };
    assert_eq!(phases.len(), 2, "baseline must have low_rate + saturate phases");
    for p in phases {
        let name = p.get("name").and_then(|v| v.as_str()).expect("phase name");
        let get = |k: &str| p.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        let (requests, completed) = (get("requests"), get("completed"));
        assert_eq!(
            requests,
            completed + get("shed") + get("expired") + get("failed"),
            "phase {name}: request accounting does not balance"
        );
        let reasons = p.get("shed_reasons").expect("phase shed_reasons");
        let reason = |k: &str| reasons.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        match name {
            "low_rate" => assert_eq!(get("shed"), 0, "low_rate phase must not shed"),
            "saturate" => {
                assert!(get("shed") > 0, "saturate phase must shed");
                assert!(
                    reason("queue_full") > 0,
                    "saturation sheds must be typed queue_full"
                );
            }
            other => panic!("unexpected phase name {other:?}"),
        }
    }
}

/// Tracing must stay cheap: the committed baseline's dedicated overhead
/// bursts may show at most a 5% throughput regression with per-request
/// trace contexts on (`tracing.overhead_ratio <= 1.05`), and the traced
/// phases must actually have produced per-stage data. Reads the committed
/// file only — deterministic, no benchmark runs in the test.
#[test]
fn committed_serve_baseline_meets_tracing_overhead_floor() {
    let baseline = repo_root().join("BENCH_serve.json");
    let Ok(contents) = std::fs::read_to_string(&baseline) else {
        eprintln!("no committed BENCH_serve.json — skipping tracing overhead check");
        return;
    };
    let doc = JsonValue::parse(&contents)
        .unwrap_or_else(|e| panic!("{}: unparseable baseline: {e}", baseline.display()));
    let tracing = doc.get("tracing").expect("baseline has a tracing block");
    let rps = |k: &str| tracing.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
    assert!(rps("traced_rps") > 0.0, "tracing bursts must have run");
    assert!(rps("untraced_rps") > 0.0, "tracing bursts must have run");
    let ratio = tracing
        .get("overhead_ratio")
        .and_then(|v| v.as_f64())
        .expect("tracing.overhead_ratio");
    assert!(
        ratio > 0.0 && ratio <= 1.05,
        "tracing may cost at most 5% throughput (committed ratio: {ratio})"
    );

    let qw = doc
        .get("stages")
        .and_then(|s| s.get("queue_wait"))
        .expect("baseline stages.queue_wait");
    assert!(
        qw.get("count").and_then(|v| v.as_u64()).unwrap_or(0) > 0,
        "traced phases must record queue_wait spans"
    );
}

/// bf16 frozen-weight inference must hold the serving hot path: on the
/// committed baseline the bf16 embed may cost at most ~33% over f32
/// (`precision.latency_ratio >= 0.75`) and the benchmark prediction may
/// shift by at most 1% relative (`max_rel_prediction_err <= 1e-2` — the
/// same gate cross-precision hot reloads enforce on checkpoint probes).
/// Reads the committed file only — deterministic, no benchmark runs.
#[test]
fn committed_serve_baseline_meets_precision_floor() {
    let baseline = repo_root().join("BENCH_serve.json");
    let Ok(contents) = std::fs::read_to_string(&baseline) else {
        eprintln!("no committed BENCH_serve.json — skipping precision check");
        return;
    };
    let doc = JsonValue::parse(&contents)
        .unwrap_or_else(|e| panic!("{}: unparseable baseline: {e}", baseline.display()));
    let precision = doc.get("precision").expect("baseline has a precision block");
    let f = |k: &str| precision.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
    assert!(f("f32_embed_us") > 0.0, "precision bursts must have run");
    assert!(f("bf16_embed_us") > 0.0, "precision bursts must have run");
    let ratio = f("latency_ratio");
    assert!(
        ratio >= 0.75,
        "bf16 embed may cost at most ~33% over f32 (committed ratio: {ratio})"
    );
    let err = f("max_rel_prediction_err");
    assert!(
        (0.0..=1e-2).contains(&err),
        "bf16 predictions must stay within 1% of f32 (committed: {err})"
    );
}

#[test]
fn bench_tensor_schema_matches_golden_fixture() {
    let rendered = sample_tensor_report().render();
    let doc = JsonValue::parse(&rendered).expect("rendered tensor report parses");
    let live = schema_paths(&doc);
    let path = tensor_fixture_path();

    if std::env::var("PDDL_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).unwrap();
        std::fs::write(&path, render_tensor_fixture(&live)).unwrap();
        eprintln!("tensor schema fixture regenerated — commit the fixture diff");
        return;
    }

    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with PDDL_REGEN_GOLDEN=1",
            path.display()
        )
    });
    let fixture = JsonValue::parse(&stored)
        .unwrap_or_else(|e| panic!("{}: unparseable fixture: {e}", path.display()));
    assert_eq!(
        stored_paths(&fixture),
        live,
        "BENCH_tensor.json schema drifted from golden fixture \
         (intentional? regenerate with PDDL_REGEN_GOLDEN=1)"
    );
}

fn render_tensor_fixture(paths: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"tensor\",\n  \"schema_version\": 1,\n");
    out.push_str("  \"paths\": [\n");
    for (i, p) in paths.iter().enumerate() {
        out.push_str(&format!(
            "    \"{p}\"{}\n",
            if i + 1 < paths.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The committed `BENCH_tensor.json` must match the pinned schema, carry
/// the 128×128·128×128 anchor shape, and demonstrate the blocked kernel's
/// headline win: ≥2× over the reference at that shape, plus a measured
/// end-to-end embedding improvement. These assertions read the committed
/// file, so they are deterministic — no benchmark runs in the test.
#[test]
fn committed_tensor_baseline_meets_speedup_floor() {
    let baseline = repo_root().join("BENCH_tensor.json");
    let Ok(contents) = std::fs::read_to_string(&baseline) else {
        eprintln!("no committed BENCH_tensor.json — skipping baseline check");
        return;
    };
    let doc = JsonValue::parse(&contents)
        .unwrap_or_else(|e| panic!("{}: unparseable baseline: {e}", baseline.display()));
    let live = schema_paths(&doc);

    let stored = std::fs::read_to_string(tensor_fixture_path())
        .expect("tensor schema fixture exists (PDDL_REGEN_GOLDEN=1 to create)");
    let fixture = JsonValue::parse(&stored).expect("fixture parses");
    assert_eq!(
        stored_paths(&fixture),
        live,
        "committed BENCH_tensor.json does not match the pinned schema — \
         re-run pddl-tensorbench after a schema change"
    );

    let cases = match doc.get("gemm") {
        Some(JsonValue::Array(cs)) => cs,
        other => panic!("baseline 'gemm' is not an array: {other:?}"),
    };
    let dim = |c: &JsonValue, k: &str| c.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let anchor = cases
        .iter()
        .find(|c| dim(c, "m") == 128 && dim(c, "k") == 128 && dim(c, "n") == 128)
        .expect("baseline must include the 128x128·128x128 anchor shape");
    let speedup = anchor
        .get("speedup_blocked")
        .and_then(|v| v.as_f64())
        .expect("anchor speedup_blocked");
    assert!(
        speedup >= 2.0,
        "blocked GEMM must be >=2x reference at 128^3 (committed: {speedup})"
    );

    let embed_speedup = doc
        .get("embed_graph")
        .and_then(|e| e.get("speedup"))
        .and_then(|v| v.as_f64())
        .expect("embed_graph.speedup");
    assert!(
        embed_speedup > 1.0,
        "batched embed_graph must beat the scalar reference (committed: {embed_speedup})"
    );

    // SIMD floor: on hosts where a vector microkernel was dispatched, the
    // committed baseline must show >=1.5x over the forced-scalar kernel on
    // the embed-path shapes (the large cases the GHN hot path actually
    // runs). A scalar-only host trivially reports speedup_simd ~1.0, so
    // the floor only applies when config.kernel is a real SIMD backend.
    let kernel = doc
        .get("config")
        .and_then(|c| c.get("kernel"))
        .and_then(|v| v.as_str())
        .expect("config.kernel");
    if kernel != "scalar" {
        let mut checked = 0;
        for c in cases {
            let (m, k, n) = (dim(c, "m"), dim(c, "k"), dim(c, "n"));
            // Embed-path shapes: the square panels >=64 wide that dominate
            // `embed_with_schedule` (node MLP + message passing GEMMs).
            if m < 64 || k < 64 || n < 64 {
                continue;
            }
            let simd = c
                .get("speedup_simd")
                .and_then(|v| v.as_f64())
                .expect("gemm case speedup_simd");
            assert!(
                simd >= 1.5,
                "{kernel} microkernel must be >=1.5x forced-scalar at \
                 {m}x{k}·{k}x{n} (committed: {simd})"
            );
            checked += 1;
        }
        assert!(checked >= 2, "baseline must include >=2 embed-path shapes");
    }

    // bf16 sanity: frozen-weight inference must not regress the embed
    // path by more than a third (it should be roughly at parity or
    // better — the win is weight-footprint, not raw arithmetic).
    let embed_bf16 = doc
        .get("embed_graph")
        .and_then(|e| e.get("speedup_bf16"))
        .and_then(|v| v.as_f64())
        .expect("embed_graph.speedup_bf16");
    assert!(
        embed_bf16 >= 0.75,
        "bf16 embed path may cost at most ~33% over f32 (committed ratio: {embed_bf16})"
    );
}

// ---------------------------------------------------------------------------
// BENCH_sched.json: the prediction-driven-scheduling benchmark.
// ---------------------------------------------------------------------------

use pddl_bench::report::{AccuracyPoint, PolicyRow, SchedReport, ShiftScenario};

fn sched_fixture_path() -> PathBuf {
    repo_root().join("tests/fixtures/bench_sched_schema.json")
}

/// A fully populated sched report: two policy rows and a two-point
/// accuracy curve — every field `render()` can emit.
fn sample_sched_report() -> SchedReport {
    let row = |policy: &str, missed: u64| PolicyRow {
        policy: policy.into(),
        submitted: 100_000,
        completed: 100_000,
        deadlines_total: 70_000,
        deadlines_missed: missed,
        missed_pct: 100.0 * missed as f64 / 70_000.0,
        utilization: 0.62,
        mean_wait_secs: 18.0,
        p99_wait_secs: 300.0,
        peak_queue: 2_000,
    };
    SchedReport {
        jobs: 100_000,
        servers: 64,
        seed: 91,
        burst: vec![row("fifo", 7_000), row("deadline_aware", 2_400)],
        shift: ShiftScenario {
            policy: "fifo".into(),
            factor: 2.5,
            at_fraction: 0.5,
            drift_events: 1,
            refits: 1,
            updates: 100_000,
            pre_shift_online: 0.04,
            pre_shift_frozen: 0.04,
            post_shift_online: 0.05,
            post_shift_frozen: 1.4,
            recovery_ratio: 1.2,
            frozen_vs_online: 28.0,
            curve: vec![
                AccuracyPoint { t_end_secs: 500.0, online_err: 0.04, frozen_err: 0.04, jobs: 4_000 },
                AccuracyPoint { t_end_secs: 1000.0, online_err: 0.05, frozen_err: 1.4, jobs: 4_100 },
            ],
        },
        telemetry: vec![
            ("sched.jobs_launched".into(), 500_000),
            ("refit.updates".into(), 500_000),
            ("refit.refits".into(), 5),
            ("refit.drift_events".into(), 1),
        ],
    }
}

fn render_sched_fixture(paths: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"sched\",\n  \"schema_version\": 1,\n");
    out.push_str("  \"paths\": [\n");
    for (i, p) in paths.iter().enumerate() {
        out.push_str(&format!(
            "    \"{p}\"{}\n",
            if i + 1 < paths.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
fn bench_sched_schema_matches_golden_fixture() {
    let rendered = sample_sched_report().render();
    let doc = JsonValue::parse(&rendered).expect("rendered sched report parses");
    let live = schema_paths(&doc);
    let path = sched_fixture_path();

    if std::env::var("PDDL_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).unwrap();
        std::fs::write(&path, render_sched_fixture(&live)).unwrap();
        eprintln!("sched schema fixture regenerated — commit the fixture diff");
        return;
    }

    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with PDDL_REGEN_GOLDEN=1",
            path.display()
        )
    });
    let fixture = JsonValue::parse(&stored)
        .unwrap_or_else(|e| panic!("{}: unparseable fixture: {e}", path.display()));
    assert_eq!(
        stored_paths(&fixture),
        live,
        "BENCH_sched.json schema drifted from golden fixture \
         (intentional? regenerate with PDDL_REGEN_GOLDEN=1)"
    );
}

/// The committed `BENCH_sched.json` must match the pinned schema and
/// demonstrate the continual-refit headline claims: through a mid-run
/// cost-model shift the online predictor's post-shift error stays within
/// 1.5× its pre-shift error while the frozen fit-once baseline is ≥3×
/// worse than online, with exactly one drift fire; and in the burst
/// scenario at least one prediction-driven policy misses fewer deadlines
/// than FIFO. Reads the committed file only — deterministic, no engine
/// runs in the test.
#[test]
fn committed_sched_baseline_meets_refit_floors() {
    let baseline = repo_root().join("BENCH_sched.json");
    let Ok(contents) = std::fs::read_to_string(&baseline) else {
        eprintln!("no committed BENCH_sched.json — skipping baseline check");
        return;
    };
    let doc = JsonValue::parse(&contents)
        .unwrap_or_else(|e| panic!("{}: unparseable baseline: {e}", baseline.display()));
    let live = schema_paths(&doc);

    let stored = std::fs::read_to_string(sched_fixture_path())
        .expect("sched schema fixture exists (PDDL_REGEN_GOLDEN=1 to create)");
    let fixture = JsonValue::parse(&stored).expect("fixture parses");
    assert_eq!(
        stored_paths(&fixture),
        live,
        "committed BENCH_sched.json does not match the pinned schema — \
         re-run pddl-schedbench after a schema change"
    );

    // Shift floors: online recovers, frozen rots, drift fires once.
    let shift = doc.get("shift").expect("baseline has a shift block");
    let f = |k: &str| shift.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
    let recovery = f("recovery_ratio");
    assert!(
        recovery > 0.0 && recovery <= 1.5,
        "online post-shift error must stay within 1.5x pre-shift (committed: {recovery})"
    );
    let frozen_ratio = f("frozen_vs_online");
    assert!(
        frozen_ratio >= 3.0,
        "frozen baseline must be >=3x worse than online post-shift (committed: {frozen_ratio})"
    );
    assert_eq!(
        shift.get("drift_events").and_then(|v| v.as_u64()),
        Some(1),
        "one shift must fire exactly one drift event"
    );
    assert!(
        shift.get("refits").and_then(|v| v.as_u64()).unwrap_or(0) >= 1,
        "the drift fire must trigger at least one window refit"
    );

    // Burst floor: prediction-driven scheduling beats FIFO on missed
    // deadlines, on a fully drained run (no lost jobs).
    let burst = match doc.get("burst") {
        Some(JsonValue::Array(rows)) => rows,
        other => panic!("baseline 'burst' is not an array: {other:?}"),
    };
    let find = |name: &str| {
        burst
            .iter()
            .find(|r| r.get("policy").and_then(|v| v.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("baseline burst scenario missing policy {name:?}"))
    };
    let missed = |r: &JsonValue| {
        r.get("missed_pct")
            .and_then(|v| v.as_f64())
            .expect("policy row missed_pct")
    };
    let fifo = missed(find("fifo"));
    let aware = missed(find("deadline_aware"));
    assert!(
        aware < fifo,
        "deadline-aware must miss fewer deadlines than FIFO \
         (committed: {aware:.3}% vs {fifo:.3}%)"
    );
    for r in burst {
        let get = |k: &str| r.get(k).and_then(|v| v.as_u64()).unwrap_or(u64::MAX);
        assert_eq!(
            get("submitted"),
            get("completed"),
            "burst run must drain every submitted job"
        );
    }
}

// ---------------------------------------------------------------------------
// BENCH_shard.json: the sharded-fleet benchmark.
// ---------------------------------------------------------------------------

use pddl_bench::report::{KillSummary, RebalanceStep, ScalingPoint, ShardReport};

fn shard_fixture_path() -> PathBuf {
    repo_root().join("tests/fixtures/bench_shard_schema.json")
}

/// A fully populated shard report: a three-point scaling curve, two
/// rebalance steps, and a kill phase — every field `render()` can emit.
fn sample_shard_report() -> ShardReport {
    let point = |shards: usize, rps: f64, speedup: f64| ScalingPoint {
        shards,
        clients: 4 * shards,
        requests: 200 * shards as u64,
        completed: 200 * shards as u64,
        shed: 12,
        duration_secs: 0.9,
        throughput_rps: rps,
        speedup_vs_1: speedup,
    };
    ShardReport {
        workers_per_shard: 1,
        queue_depth: 8,
        clients_per_shard: 4,
        requests_per_client: 50,
        vnodes: 128,
        service_us: 4000,
        keyspace: 256,
        scaling: vec![
            point(1, 240.0, 1.0),
            point(2, 410.0, 1.71),
            point(4, 790.0, 3.29),
        ],
        rebalance: vec![
            RebalanceStep {
                from_shards: 1,
                to_shards: 2,
                keys: 10_000,
                moved: 4_960,
                moved_fraction: 0.496,
                bound_fraction: 0.75,
            },
            RebalanceStep {
                from_shards: 3,
                to_shards: 4,
                keys: 10_000,
                moved: 2_580,
                moved_fraction: 0.258,
                bound_fraction: 0.375,
            },
        ],
        kill: KillSummary {
            shards: 4,
            killed_shard: 1,
            requests: 800,
            completed: 800,
            rerouted: 1,
            shed: 40,
            duplicates: 0,
            unanswered: 0,
            epoch_before: 1,
            epoch_after: 2,
        },
        telemetry: vec![
            ("controller.requests_shed".into(), 52),
            ("controller.requests_expired".into(), 0),
            ("controller.queue_depth_peak".into(), 8),
        ],
    }
}

fn render_shard_fixture(paths: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"shard\",\n  \"schema_version\": 1,\n");
    out.push_str("  \"paths\": [\n");
    for (i, p) in paths.iter().enumerate() {
        out.push_str(&format!(
            "    \"{p}\"{}\n",
            if i + 1 < paths.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
fn bench_shard_schema_matches_golden_fixture() {
    let rendered = sample_shard_report().render();
    let doc = JsonValue::parse(&rendered).expect("rendered shard report parses");
    let live = schema_paths(&doc);
    let path = shard_fixture_path();

    if std::env::var("PDDL_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).unwrap();
        std::fs::write(&path, render_shard_fixture(&live)).unwrap();
        eprintln!("shard schema fixture regenerated — commit the fixture diff");
        return;
    }

    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with PDDL_REGEN_GOLDEN=1",
            path.display()
        )
    });
    let fixture = JsonValue::parse(&stored)
        .unwrap_or_else(|e| panic!("{}: unparseable fixture: {e}", path.display()));
    assert_eq!(
        stored_paths(&fixture),
        live,
        "BENCH_shard.json schema drifted from golden fixture \
         (intentional? regenerate with PDDL_REGEN_GOLDEN=1)"
    );
}

/// The committed `BENCH_shard.json` must match the pinned schema and
/// demonstrate the serving fleet's headline claims: ≥2.5× throughput at
/// 4 shards, consistent-hash movement within its theoretical bound on
/// every resize, and a mid-load shard kill with zero duplicated and zero
/// lost requests. Reads the committed file only — deterministic, no
/// benchmark runs in the test.
#[test]
fn committed_shard_baseline_meets_fleet_floors() {
    let baseline = repo_root().join("BENCH_shard.json");
    let Ok(contents) = std::fs::read_to_string(&baseline) else {
        eprintln!("no committed BENCH_shard.json — skipping baseline check");
        return;
    };
    let doc = JsonValue::parse(&contents)
        .unwrap_or_else(|e| panic!("{}: unparseable baseline: {e}", baseline.display()));
    let live = schema_paths(&doc);

    let stored = std::fs::read_to_string(shard_fixture_path())
        .expect("shard schema fixture exists (PDDL_REGEN_GOLDEN=1 to create)");
    let fixture = JsonValue::parse(&stored).expect("fixture parses");
    assert_eq!(
        stored_paths(&fixture),
        live,
        "committed BENCH_shard.json does not match the pinned schema — \
         re-run `pddl-loadgen --transport fleet` after a schema change"
    );

    // Scaling floor: the curve must start at 1 shard (speedup 1.0 by
    // construction) and reach >=2.5x at the 4-shard point.
    let scaling = match doc.get("scaling") {
        Some(JsonValue::Array(points)) => points,
        other => panic!("baseline 'scaling' is not an array: {other:?}"),
    };
    let shards_of = |p: &JsonValue| p.get("shards").and_then(|v| v.as_u64()).unwrap_or(0);
    assert_eq!(shards_of(&scaling[0]), 1, "first scaling point must be the 1-shard baseline");
    let four = scaling
        .iter()
        .find(|p| shards_of(p) == 4)
        .expect("baseline must include a 4-shard scaling point");
    let speedup = four
        .get("speedup_vs_1")
        .and_then(|v| v.as_f64())
        .expect("4-shard speedup_vs_1");
    assert!(
        speedup >= 2.5,
        "4-shard fleet must reach >=2.5x single-shard throughput (committed: {speedup})"
    );
    for p in scaling {
        let get = |k: &str| p.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        assert_eq!(
            get("requests"),
            get("completed"),
            "scaling point at {} shards lost requests (sheds must be retried to completion)",
            shards_of(p)
        );
    }

    // Rebalance bound: every resize stays within its committed bound —
    // the consistent-hashing guarantee (a modulo rehash moves ~1-1/N and
    // blows straight through it).
    let rebalance = match doc.get("rebalance") {
        Some(JsonValue::Array(steps)) => steps,
        other => panic!("baseline 'rebalance' is not an array: {other:?}"),
    };
    assert!(!rebalance.is_empty(), "baseline must measure at least one resize");
    for step in rebalance {
        let frac = |k: &str| step.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
        let (moved, bound) = (frac("moved_fraction"), frac("bound_fraction"));
        assert!(
            moved <= bound,
            "resize {}->{} moved {moved} of the keyspace, over its bound {bound}",
            step.get("from_shards").and_then(|v| v.as_u64()).unwrap_or(0),
            step.get("to_shards").and_then(|v| v.as_u64()).unwrap_or(0),
        );
    }

    // Kill phase: exactly-once accounting and epoch convergence.
    let kill = doc.get("kill").expect("baseline has a kill block");
    let get = |k: &str| kill.get(k).and_then(|v| v.as_u64()).unwrap_or(u64::MAX);
    assert_eq!(get("duplicates"), 0, "a killed shard must not duplicate predictions");
    assert_eq!(get("unanswered"), 0, "every request must be answered or shed typed");
    assert_eq!(
        get("requests"),
        get("completed"),
        "kill phase lost requests (survivors must absorb the dead shard's load)"
    );
    assert!(get("rerouted") >= 1, "the kill must actually have been observed mid-load");
    assert!(
        get("epoch_after") > get("epoch_before"),
        "the shard death must bump the membership epoch"
    );
}
